"""Compact multi-version archives from alignments (the paper's Section 6).

The paper closes by asking whether the constructed alignments can drive a
compact representation of *all* versions of an evolving RDF database, by
decorating triples with the version intervals in which they were present —
and observes that "triples tend to enter and leave with their subject".

This script builds such an archive for two dataset families, reports the
compression and cohesion numbers, and demonstrates exact reconstruction —
including across the GtoPdb-style prefix renames where *no URIs are shared
between versions* and only the alignment can chain entities.

Run with::

    python examples/version_archive.py [scale]
"""

import sys

from repro.archive import VersionArchive
from repro.datasets import EFOGenerator, GtoPdbGenerator
from repro.evaluation import render_table
from repro.model.graph import isomorphic_by_labels


def archive_report(name: str, graphs) -> list:
    archive = VersionArchive.build(graphs)
    stats = archive.stats(graphs)
    # Exact reconstruction check for every version.
    exact = all(
        isomorphic_by_labels(original, archive.reconstruct(index + 1))
        for index, original in enumerate(graphs)
    )
    return [
        name,
        stats.versions,
        stats.naive_triples,
        stats.archived_triples,
        f"{stats.compression_ratio:.2f}x",
        f"{stats.contiguous_fraction:.2f}",
        f"{stats.subject_cohesion:.2f}",
        "yes" if exact else "NO",
    ]


def main(scale: float = 0.4) -> None:
    rows = []
    print(
        "building archives (hybrid + predicate-aware alignment chains the "
        "entities)...\n"
    )
    rows.append(archive_report("EFO-like", EFOGenerator(scale=scale, versions=8).graphs()))
    rows.append(
        archive_report(
            "GtoPdb-like (renamed prefixes)",
            GtoPdbGenerator(scale=scale * 0.6, versions=6).graphs(),
        )
    )
    print(render_table(
        [
            "dataset",
            "versions",
            "naive triples",
            "archived",
            "compression",
            "contiguous",
            "subject cohesion",
            "exact round-trip",
        ],
        rows,
    ))
    print(
        "\n'subject cohesion' is the fraction of triples whose lifetime\n"
        "interval equals their subject's — the paper's closing observation\n"
        "('triples tend to enter and leave with their subject'), which\n"
        "justifies moving the interval decoration onto subject nodes."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.4)
