"""Scalability: alignment running time against input size (Figure 16 scenario).

Generates growing DBpedia-category-like graphs and times the three main
methods on each consecutive pair, then prints the time-per-triple so the
roughly-linear trend is visible.  Pass a larger scale to stress it.

Run with::

    python examples/scalability.py [scale] [engine] [jobs]

where *engine* is ``reference`` (default) or ``dense`` — the flat-array
refinement engine documented in docs/performance.md — and *jobs* shards
the version pairs over that many worker processes (``0`` = one per CPU).
With ``jobs > 1`` the whole run finishes faster while the per-pair times
are still measured inside their worker; under CPU contention they can
read slightly high, so keep ``jobs = 1`` for clean per-pair numbers.
"""

import sys
import time

from repro.core import hybrid_partition, trivial_partition
from repro.evaluation import StopwatchSeries, render_table
from repro.experiments.parallel import run_sharded
from repro.experiments.store import VersionStore
from repro.partition import ColorInterner
from repro.similarity import overlap_partition


def main(scale: float = 1.0, engine: str = "reference", jobs: int = 1) -> None:
    store = VersionStore.shared("dbpedia", scale=scale, seed=30, versions=6)
    store.prepare(csr=engine == "dense")
    graphs = store.graphs()
    print(f"{len(graphs)} versions, "
          f"{graphs[0].num_nodes} → {graphs[-1].num_nodes} nodes\n")

    def time_pair(index: int) -> list:
        union = store.union(index, index + 1)
        triples = union.num_edges
        stopwatch = StopwatchSeries()
        interner = ColorInterner()
        stopwatch.measure(
            "trivial",
            index,
            lambda: trivial_partition(union, interner, engine=engine),
        )
        hybrid_interner = ColorInterner()
        hybrid = stopwatch.measure(
            "hybrid",
            index,
            lambda: hybrid_partition(union, hybrid_interner, engine=engine),
        )
        stopwatch.measure(
            "overlap",
            index,
            lambda: overlap_partition(
                union, interner=hybrid_interner, base=hybrid, engine=engine
            ),
        )
        overlap_seconds = stopwatch.get("overlap", index)
        return [
            f"v{index + 1}->v{index + 2}",
            triples,
            round(stopwatch.get("trivial", index), 4),
            round(stopwatch.get("hybrid", index), 4),
            round(overlap_seconds, 4),
            round(1e6 * overlap_seconds / triples, 2),
        ]

    started = time.perf_counter()
    rows = run_sharded(time_pair, range(len(graphs) - 1), jobs=jobs)
    elapsed = time.perf_counter() - started
    print(render_table(
        ["pair", "triples", "trivial (s)", "hybrid (s)", "overlap (s)", "overlap µs/triple"],
        rows,
    ))
    print(f"\nwall-clock for all pairs: {elapsed:.2f}s (jobs={jobs})")
    print("The µs/triple column staying roughly flat is the paper's "
          "Figure 16 claim: time grows proportionally to input size.")


if __name__ == "__main__":
    main(
        float(sys.argv[1]) if len(sys.argv) > 1 else 1.0,
        sys.argv[2] if len(sys.argv) > 2 else "reference",
        int(sys.argv[3]) if len(sys.argv) > 3 else 1,
    )
