"""Scalability: alignment running time against input size (Figure 16 scenario).

Generates growing DBpedia-category-like graphs and times the three main
methods on each consecutive pair, then prints the time-per-triple so the
roughly-linear trend is visible.  Pass a larger scale to stress it.

Run with::

    python examples/scalability.py [scale] [engine]

where *engine* is ``reference`` (default) or ``dense`` — the flat-array
refinement engine documented in docs/performance.md.
"""

import sys

from repro.core import hybrid_partition, trivial_partition
from repro.datasets import DBpediaCategoryGenerator
from repro.evaluation import StopwatchSeries, render_table
from repro.model import combine
from repro.partition import ColorInterner
from repro.similarity import overlap_partition


def main(scale: float = 1.0, engine: str = "reference") -> None:
    generator = DBpediaCategoryGenerator(scale=scale)
    graphs = generator.graphs()
    print(f"{len(graphs)} versions, "
          f"{graphs[0].num_nodes} → {graphs[-1].num_nodes} nodes\n")
    stopwatch = StopwatchSeries()
    rows = []
    for index in range(len(graphs) - 1):
        union = combine(graphs[index], graphs[index + 1])
        triples = union.num_edges
        interner = ColorInterner()
        stopwatch.measure(
            "trivial",
            index,
            lambda: trivial_partition(union, interner, engine=engine),
        )
        hybrid_interner = ColorInterner()
        hybrid = stopwatch.measure(
            "hybrid",
            index,
            lambda: hybrid_partition(union, hybrid_interner, engine=engine),
        )
        stopwatch.measure(
            "overlap",
            index,
            lambda: overlap_partition(
                union, interner=hybrid_interner, base=hybrid, engine=engine
            ),
        )
        overlap_seconds = stopwatch.get("overlap", index)
        rows.append(
            [
                f"v{index + 1}->v{index + 2}",
                triples,
                round(stopwatch.get("trivial", index), 4),
                round(stopwatch.get("hybrid", index), 4),
                round(overlap_seconds, 4),
                round(1e6 * overlap_seconds / triples, 2),
            ]
        )
    print(render_table(
        ["pair", "triples", "trivial (s)", "hybrid (s)", "overlap (s)", "overlap µs/triple"],
        rows,
    ))
    print("\nThe µs/triple column staying roughly flat is the paper's "
          "Figure 16 claim: time grows proportionally to input size.")


if __name__ == "__main__":
    main(
        float(sys.argv[1]) if len(sys.argv) > 1 else 1.0,
        sys.argv[2] if len(sys.argv) > 2 else "reference",
    )
