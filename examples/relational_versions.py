"""Align RDF exports of an evolving relational database (GtoPdb scenario).

The paper's Section 5.2 setup end to end:

1. build a pharmacology-shaped relational database and evolve it through
   several releases (persistent primary keys, curation-style changes);
2. export every release with the W3C Direct Mapping under a *different*
   URI prefix — no URIs are shared between versions;
3. align consecutive exports with Hybrid and Overlap;
4. score both against the exact ground truth the persistent keys provide.

Run with::

    python examples/relational_versions.py [scale]
"""

import sys

from repro.core import hybrid_partition
from repro.datasets import GtoPdbGenerator
from repro.evaluation import precision_counts, render_stacked_fractions, render_table
from repro.partition import ColorInterner
from repro.similarity import overlap_partition

CATEGORIES = ("exact", "inclusive", "false", "missing")


def main(scale: float = 0.4) -> None:
    generator = GtoPdbGenerator(scale=scale, versions=6)
    databases = generator.databases()
    print("relational releases:",
          ", ".join(f"v{i + 1}={db.total_rows()} rows" for i, db in enumerate(databases)))
    print("export prefixes:", generator.base_prefix(0), "…", generator.base_prefix(5))

    size_rows = []
    for index in range(len(databases)):
        stats = generator.graph(index).stats()
        size_rows.append([f"v{index + 1}", stats.num_edges, stats.num_uris, stats.num_literals])
    print()
    print(render_table(["version", "triples", "uris", "literals"], size_rows))

    print("\nprecision against the key-based ground truth:")
    bars = []
    for index in range(len(databases) - 1):
        union, truth = generator.combined(index, index + 1)
        interner = ColorInterner()
        hybrid = hybrid_partition(union, interner)
        overlap = overlap_partition(union, interner=interner, base=hybrid)
        for name, partition in (("hybrid", hybrid), ("overlap", overlap.partition)):
            counts = precision_counts(union, partition, truth)
            bars.append(
                (f"v{index + 1}->v{index + 2} {name:<7}", counts.as_dict())
            )
    print(render_stacked_fractions(bars, CATEGORIES))
    print(
        "\nThe deduplicated entity counts and the θ sweep of the overlap\n"
        "threshold are reproduced by `rdf-align experiment figure13 figure15`."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.4)
