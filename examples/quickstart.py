"""Quickstart: align two versions of an evolving RDF graph.

Rebuilds the paper's opening example (Figure 1): two versions of a tiny
personal-information graph where a first name is corrected, a middle name
is removed and the University of Edinburgh's URI changes from ``ed-uni``
to ``uoe``.  One :class:`repro.Aligner` session runs the whole method
ladder (its caches are shared across the sweep) and we show what each
method adds.

Run with::

    python examples/quickstart.py
"""

from repro import AlignConfig, Aligner
from repro.model import RDFGraph, blank, lit, uri
from repro.similarity.edit_distance import EditDistance


def build_version_1() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("ss"), uri("address"), blank("b1"))
    g.add(uri("ss"), uri("employer"), uri("ed-uni"))
    g.add(uri("ss"), uri("name"), blank("b2"))
    g.add(blank("b1"), uri("zip"), lit("EH8"))
    g.add(blank("b1"), uri("city"), lit("Edinburgh"))
    g.add(uri("ed-uni"), uri("name"), lit("University of Edinburgh"))
    g.add(uri("ed-uni"), uri("city"), lit("Edinburgh"))
    g.add(blank("b2"), uri("first"), lit("Sławek"))
    g.add(blank("b2"), uri("middle"), lit("Paweł"))
    g.add(blank("b2"), uri("last"), lit("Staworko"))
    return g


def build_version_2() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("ss"), uri("address"), blank("b3"))
    g.add(uri("ss"), uri("employer"), uri("uoe"))
    g.add(uri("ss"), uri("name"), blank("b4"))
    g.add(blank("b3"), uri("zip"), lit("EH8"))
    g.add(blank("b3"), uri("city"), lit("Edinburgh"))
    g.add(uri("uoe"), uri("name"), lit("University of Edinburgh"))
    g.add(uri("uoe"), uri("city"), lit("Edinburgh"))
    g.add(blank("b4"), uri("first"), lit("Sławomir"))
    g.add(blank("b4"), uri("last"), lit("Staworko"))
    return g


def describe(result) -> None:
    graph = result.graph
    unaligned_source, unaligned_target = result.unaligned_counts()
    print(f"\n== {result.method} ==")
    print(
        f"matched entities: {result.matched_entities()}, "
        f"unaligned: {unaligned_source} source / {unaligned_target} target"
    )
    interesting = [
        ("b1 (address record)", blank("b1"), blank("b3")),
        ("ed-uni (renamed URI)", uri("ed-uni"), uri("uoe")),
        ("b2 (name record)", blank("b2"), blank("b4")),
    ]
    for label, source_term, target_term in interesting:
        aligned = result.alignment.aligned(
            graph.from_source(source_term), graph.from_target(target_term)
        )
        print(f"  {label:24} aligned: {aligned}")


def main() -> None:
    version_1 = build_version_1()
    version_2 = build_version_2()

    # One session, many configs: evolve() shares the session caches.
    aligner = Aligner(AlignConfig(method="trivial"))
    for method in ("trivial", "deblank", "hybrid"):
        describe(aligner.evolve(method=method).align(version_1, version_2))

    # The name record b2/b4 is beyond bisimulation: "Sławek" became
    # "Sławomir" and "Paweł" was dropped.  The edit-distance similarity
    # measure σEdit (paper Section 4.2) catches it.
    hybrid = aligner.evolve(method="hybrid").align(version_1, version_2)
    edit = EditDistance(hybrid.graph, base=hybrid.partition, interner=hybrid.interner)
    b2 = hybrid.graph.from_source(blank("b2"))
    b4 = hybrid.graph.from_target(blank("b4"))
    print("\n== similarity measure (σEdit) ==")
    print(f"  σEdit(b2, b4) = {edit.distance(b2, b4):.3f}")
    print(f"  aligned at θ = 0.5: {edit.distance(b2, b4) <= 0.5}")
    print(
        "  σEdit('Sławek', 'Sławomir') =",
        round(
            edit.distance(
                hybrid.graph.from_source(lit("Sławek")),
                hybrid.graph.from_target(lit("Sławomir")),
            ),
            3,
        ),
    )


if __name__ == "__main__":
    main()
