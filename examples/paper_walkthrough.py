"""Walk through the paper's worked examples (Figures 2–8) with real output.

* Figure 2/4 — bisimulation and the fixpoint color computation, with the
  derivation trees the colors stand for;
* Figure 3/5/6 — progressive alignment (Trivial → Deblank → Hybrid) of two
  versions with merged blanks and a renamed URI;
* Figure 7 — the edit-distance node metric σEdit;
* Figure 8 — the overlap weighted partition approximating σEdit.

Run with::

    python examples/paper_walkthrough.py
"""

from repro.core import deblank_partition, hybrid_partition, refinement_trace
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition import ColorInterner, align, label_partition, render_color
from repro.similarity import EditDistance, OverlapTrace, overlap_partition
from repro.similarity.string_distance import character_set


def figure2_graph() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("w"), uri("p"), blank("b1"))
    g.add(uri("w"), uri("q"), uri("u"))
    g.add(blank("b1"), uri("q"), blank("b2"))
    g.add(blank("b1"), uri("r"), blank("b3"))
    g.add(blank("b2"), uri("r"), uri("u"))
    g.add(blank("b2"), uri("q"), lit("a"))
    g.add(blank("b3"), uri("r"), uri("u"))
    g.add(blank("b3"), uri("q"), lit("a"))
    return g


def show_figure_2_and_4() -> None:
    print("=" * 66)
    print("Figures 2 & 4: bisimulation by fixpoint color computation")
    print("=" * 66)
    graph = figure2_graph()
    interner = ColorInterner()
    trace = refinement_trace(graph, label_partition(graph, interner), None, interner)
    print(f"fixpoint after {len(trace) - 1} productive round(s) (paper: λ1 = λ2)")
    final = trace[-1]
    print(f"b2 and b3 bisimilar: {final.same_class(blank('b2'), blank('b3'))}")
    print(f"b1 and b2 bisimilar: {final.same_class(blank('b1'), blank('b2'))}")
    print("\nderivation tree of b2's final color (cf. Figure 4):")
    print(render_color(interner, final[blank("b2")], max_depth=4))


def figure3_graphs() -> tuple[RDFGraph, RDFGraph]:
    g1 = RDFGraph()
    g1.add(uri("w"), uri("p"), blank("b1"))
    g1.add(uri("w"), uri("p"), blank("b2"))
    g1.add(uri("w"), uri("p"), blank("b3"))
    g1.add(uri("w"), uri("q"), uri("u"))
    g1.add(blank("b1"), uri("q"), lit("a"))
    g1.add(blank("b1"), uri("r"), uri("u"))
    g1.add(blank("b2"), uri("q"), lit("b"))
    g1.add(blank("b3"), uri("q"), lit("b"))
    g2 = RDFGraph()
    g2.add(uri("w"), uri("p"), blank("b5"))
    g2.add(uri("w"), uri("p"), blank("b4"))
    g2.add(uri("w"), uri("q"), uri("v"))
    g2.add(blank("b5"), uri("q"), lit("a"))
    g2.add(blank("b5"), uri("r"), uri("v"))
    g2.add(blank("b4"), uri("q"), lit("b"))
    return g1, g2


def show_figure_3_5_6() -> None:
    print()
    print("=" * 66)
    print("Figures 3, 5 & 6: progressive alignment of two versions")
    print("=" * 66)
    union = combine(*figure3_graphs())
    interner = ColorInterner()
    deblank = deblank_partition(union, interner)
    alignment = align(union, deblank)
    b4 = union.from_target(blank("b4"))
    print("Deblank: b2 and b3 both align to b4:",
          alignment.partners(union.from_source(blank("b2"))) == {b4}
          and alignment.partners(union.from_source(blank("b3"))) == {b4})
    print("Deblank: b1 aligned:",
          bool(alignment.partners(union.from_source(blank("b1")))))
    print("\nderivation tree of b4's deblank color (cf. Figure 5):")
    print(render_color(interner, deblank[b4], max_depth=3))

    hybrid = hybrid_partition(union, interner, base=deblank)
    alignment = align(union, hybrid)
    print("\nHybrid: u aligned to v:",
          alignment.aligned(union.from_source(uri("u")), union.from_target(uri("v"))))
    print("Hybrid: b1 aligned to b5:",
          alignment.aligned(union.from_source(blank("b1")), union.from_target(blank("b5"))))
    print("\nderivation tree of u's hybrid color (cf. Figure 6 — a blanked sink):")
    print(render_color(interner, hybrid[union.from_source(uri("u"))], max_depth=3))
    print("\nderivation tree of b1's hybrid color (unfolds through the ⊥-reset u):")
    print(render_color(interner, hybrid[union.from_source(blank("b1"))], max_depth=3))


def figure7_graphs() -> tuple[RDFGraph, RDFGraph]:
    g1 = RDFGraph()
    g1.add(uri("w"), uri("r"), uri("u"))
    g1.add(uri("w"), uri("q"), uri("v"))
    g1.add(uri("u"), uri("p"), lit("a"))
    g1.add(uri("u"), uri("p"), lit("b"))
    g1.add(uri("u"), uri("q"), lit("c"))
    g1.add(uri("v"), uri("p"), lit("abc"))
    g1.add(uri("v"), uri("q"), lit("c"))
    g2 = RDFGraph()
    g2.add(uri("w2"), uri("r"), uri("u2"))
    g2.add(uri("w2"), uri("q"), uri("v2"))
    g2.add(uri("u2"), uri("p"), lit("a"))
    g2.add(uri("u2"), uri("q"), lit("c"))
    g2.add(uri("v2"), uri("p"), lit("ac"))
    g2.add(uri("v2"), uri("q"), lit("c"))
    return g1, g2


def show_figure_7_and_8() -> None:
    print()
    print("=" * 66)
    print("Figures 7 & 8: σEdit and its overlap approximation")
    print("=" * 66)
    union = combine(*figure7_graphs())
    interner = ColorInterner()
    edit = EditDistance(union, interner=interner)

    def s(term):
        return union.from_source(term)

    def t(term):
        return union.from_target(term)

    print("σEdit values (paper Figure 7):")
    for label, source, target, expected in [
        ('("abc", "ac")', s(lit("abc")), t(lit("ac")), "1/3"),
        ("(u, u′)", s(uri("u")), t(uri("u2")), "1/3"),
        ("(v, v′)", s(uri("v")), t(uri("v2")), "1/6"),
        ("(w, w′)", s(uri("w")), t(uri("w2")), "1/4"),
        ('("a", "ac")', s(lit("a")), t(lit("ac")), "1 (aligned node involved)"),
    ]:
        print(f"  σEdit{label:14} = {edit.distance(source, target):.4f}   paper: {expected}")

    trace = OverlapTrace()
    weighted = overlap_partition(
        union, theta=0.65, splitter=character_set, trace=trace
    )
    print(f"\nOverlap ran {trace.total_rounds} non-literal rounds, "
          f"{trace.literal_matches} literal match(es)")
    print("σξ values of the weighted partition (paper Figure 8):")
    for label, source, target in [
        ('("abc", "ac")', s(lit("abc")), t(lit("ac"))),
        ("(u, u′)", s(uri("u")), t(uri("u2"))),
        ("(v, v′)", s(uri("v")), t(uri("v2"))),
        ("(w, w′)", s(uri("w")), t(uri("w2"))),
        ("(u, v′) — different clusters", s(uri("u")), t(uri("v2"))),
    ]:
        print(f"  σξ{label:30} = {weighted.distance(source, target):.4f}")
    print("\nTheorem 1 spot check: σEdit ≤ ω ⊕ ω on every same-cluster pair:")
    violations = 0
    for source, target in align(union, weighted.partition).pairs():
        bound = min(weighted.weight(source) + weighted.weight(target), 1.0)
        if edit.distance(source, target) > bound + 1e-9:
            violations += 1
    print(f"  violations: {violations}")


if __name__ == "__main__":
    show_figure_2_and_4()
    show_figure_3_5_6()
    show_figure_7_and_8()
