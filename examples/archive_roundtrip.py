"""Archive and re-align graph versions through N-Triples files.

Demonstrates the I/O layer: every version of an evolving dataset is
serialized to a deterministic (sorted) ``.nt`` file — a diffable archive —
then two archived versions are parsed back and aligned, matching the CLI
pipeline (``rdf-align generate`` + ``rdf-align align``).

Run with::

    python examples/archive_roundtrip.py [directory]
"""

import pathlib
import sys

from repro import AlignConfig, Aligner
from repro.datasets import EFOGenerator
from repro.io import ntriples, turtle


def main(directory: str = "archive") -> None:
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(exist_ok=True)

    generator = EFOGenerator(scale=0.2, versions=4)
    paths = []
    for index, graph in enumerate(generator.graphs()):
        path = target_dir / f"efo-v{index + 1}.nt"
        ntriples.dump_path(graph, path)
        paths.append(path)
        print(f"archived {path} ({graph.num_edges} triples)")

    # A Turtle rendering of the smallest version, for human eyes.
    preview = turtle.dumps(
        generator.graph(0),
        {
            "efo": "http://www.ebi.ac.uk/efo/",
            "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
            "owl": "http://www.w3.org/2002/07/owl#",
            "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
            "obo": "http://purl.org/obo/owl/",
        },
    )
    print("\nTurtle preview of version 1 (first 12 lines):")
    print("\n".join(preview.splitlines()[:12]))

    # Align two archived versions straight from their paths (the session
    # sniffs the format and caches the parsed graphs) and persist the
    # serializable report next to the archive.
    aligner = Aligner(AlignConfig(method="hybrid"))
    result = aligner.align(paths[0], paths[-1])
    unaligned_source, unaligned_target = result.unaligned_counts()
    print(
        f"\nre-aligned {paths[0].name} against {paths[-1].name}: "
        f"{result.matched_entities()} matched entities, "
        f"{unaligned_source}/{unaligned_target} unaligned"
    )
    report_path = target_dir / "alignment-report.json"
    result.report(aligner.config).save(report_path)
    print(f"saved {report_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "archive")
