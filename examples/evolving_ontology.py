"""Align consecutive versions of an evolving ontology (EFO-like scenario).

This is the paper's Section 5.1 workload: an ontology whose classes carry
literal annotations and blank-node citation records, where URI prefixes
migrate over time.  The script generates ten versions, aligns each
consecutive pair with the full method ladder and reports how much each
method adds — plus what happened across the v7→v8 bulk prefix rename.

Run with::

    python examples/evolving_ontology.py [scale]
"""

import sys

from repro.core import deblank_partition, hybrid_partition
from repro.datasets import EFOGenerator
from repro.evaluation import (
    aligned_edge_count,
    aligned_edge_ratio,
    recall_against_truth,
    render_table,
)
from repro.model import combine
from repro.partition import ColorInterner
from repro.similarity import overlap_partition


def main(scale: float = 0.5) -> None:
    generator = EFOGenerator(scale=scale)
    graphs = generator.graphs()
    print(f"generated {len(graphs)} ontology versions "
          f"({graphs[0].num_edges} → {graphs[-1].num_edges} triples)\n")

    rows = []
    for index in range(len(graphs) - 1):
        union = combine(graphs[index], graphs[index + 1])
        truth = generator.ground_truth(index, index + 1)
        interner = ColorInterner()
        deblank = deblank_partition(union, interner)
        hybrid = hybrid_partition(union, interner, base=deblank)
        overlap = overlap_partition(union, interner=interner, base=hybrid)
        rows.append(
            [
                f"v{index + 1}->v{index + 2}",
                round(aligned_edge_ratio(union, deblank), 3),
                aligned_edge_count(union, hybrid) - aligned_edge_count(union, deblank),
                aligned_edge_count(union, overlap.partition)
                - aligned_edge_count(union, hybrid),
                round(recall_against_truth(union, hybrid, truth), 3),
                round(recall_against_truth(union, overlap.partition, truth), 3),
            ]
        )
    print(render_table(
        ["pair", "deblank ratio", "hybrid +edges", "overlap +edges",
         "hybrid recall", "overlap recall"],
        rows,
    ))
    print(
        "\nNote the spike of extra aligned edges at v7->v8: the bulk\n"
        "URI-prefix rename that only Hybrid/Overlap can see through\n"
        "(paper Figure 11)."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
