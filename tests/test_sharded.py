"""Tests for BSP-style sharded refinement (repro.core.sharded)."""

from __future__ import annotations

import random

import pytest

from repro.core.refinement import bisim_refine_fixpoint
from repro.core.sharded import shard_of, sharded_refine_fixpoint
from repro.model import combine
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


class TestSharding:
    def test_shard_assignment_in_range(self):
        for node in ("a", ("x", 1), 42):
            assert 0 <= shard_of(node, 7) < 7

    @pytest.mark.parametrize("shards", [1, 2, 4, 9])
    def test_equivalent_to_batch(self, shards):
        rng = random.Random(shards)
        graph = random_rdf_graph(rng, num_edges=30)
        interner_a = ColorInterner()
        batch = bisim_refine_fixpoint(
            graph, label_partition(graph, interner_a), None, interner_a
        )
        interner_b = ColorInterner()
        sharded, supersteps = sharded_refine_fixpoint(
            graph,
            label_partition(graph, interner_b),
            None,
            interner_b,
            shards=shards,
        )
        assert sharded.equivalent_to(batch)
        assert supersteps >= 1

    def test_superstep_count_matches_batch_rounds(self, figure2_graph):
        """Sharding does not add rounds — it is the same Jacobi iteration."""
        interner_a = ColorInterner()
        __, one_shard_steps = sharded_refine_fixpoint(
            figure2_graph,
            label_partition(figure2_graph, interner_a),
            None,
            interner_a,
            shards=1,
        )
        interner_b = ColorInterner()
        __, many_shard_steps = sharded_refine_fixpoint(
            figure2_graph,
            label_partition(figure2_graph, interner_b),
            None,
            interner_b,
            shards=8,
        )
        assert one_shard_steps == many_shard_steps

    def test_subset_refinement(self, figure3_graphs):
        union = combine(*figure3_graphs)
        interner_a = ColorInterner()
        batch = bisim_refine_fixpoint(
            union, label_partition(union, interner_a), union.blanks(), interner_a
        )
        interner_b = ColorInterner()
        sharded, __ = sharded_refine_fixpoint(
            union,
            label_partition(union, interner_b),
            union.blanks(),
            interner_b,
            shards=3,
        )
        assert sharded.equivalent_to(batch)

    def test_max_supersteps(self, figure2_graph):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        bounded, steps = sharded_refine_fixpoint(
            figure2_graph, initial, None, interner, max_supersteps=0
        )
        assert steps == 0 and bounded.equivalent_to(initial)

    def test_foreign_interner_reseeded(self, figure2_graph):
        from repro.partition.coloring import Partition

        part = Partition({node: 999 for node in figure2_graph.nodes()})
        refined, __ = sharded_refine_fixpoint(figure2_graph, part, None, None)
        assert refined.num_classes >= 1
