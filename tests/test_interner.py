"""Unit tests for the color interner (repro.partition.interner)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.model.labels import URI
from repro.partition.interner import BLANK_KEY, ColorInterner


class TestInterner:
    def test_same_key_same_color(self):
        interner = ColorInterner()
        assert interner.intern(("a", 1)) == interner.intern(("a", 1))

    def test_distinct_keys_distinct_colors(self):
        interner = ColorInterner()
        assert interner.intern(("a",)) != interner.intern(("b",))

    def test_colors_are_dense_ints(self):
        interner = ColorInterner()
        colors = [interner.intern(("k", i)) for i in range(5)]
        assert colors == list(range(5))

    def test_key_roundtrip(self):
        interner = ColorInterner()
        color = interner.intern(("recolor", 0, ((1, 2),)))
        assert interner.key(color) == ("recolor", 0, ((1, 2),))

    def test_contains_and_len(self):
        interner = ColorInterner()
        interner.intern("x")
        assert "x" in interner and "y" not in interner
        assert len(interner) == 1
        assert list(interner) == ["x"]

    def test_convenience_constructors(self):
        interner = ColorInterner()
        assert interner.blank_color() == interner.intern(BLANK_KEY)
        assert interner.label_color(URI("a")) == interner.intern(("label", URI("a")))
        assert interner.node_color("n") == interner.intern(("node", "n"))
        first = interner.recolor(0, ((1, 2),))
        assert first == interner.recolor(0, ((1, 2),))
        assert interner.component_color(1, 0) != interner.component_color(2, 0)

    def test_repr(self):
        interner = ColorInterner()
        interner.intern("x")
        assert "colors=1" in repr(interner)


@given(st.lists(st.tuples(st.integers(), st.integers()), max_size=50))
def test_interner_is_injective_on_distinct_keys(keys):
    interner = ColorInterner()
    colors = {key: interner.intern(key) for key in keys}
    # Same key -> same color; distinct keys -> distinct colors.
    for key, color in colors.items():
        assert interner.intern(key) == color
        assert interner.key(color) == key
    assert len(set(colors.values())) == len(set(keys))
