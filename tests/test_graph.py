"""Unit tests for TripleGraph (repro.model.graph)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.model.graph import TripleGraph, isomorphic_by_labels
from repro.model.labels import BLANK, Literal, URI


def small_graph() -> TripleGraph:
    g = TripleGraph()
    g.add_node("s", URI("s"))
    g.add_node("p", URI("p"))
    g.add_node("o", Literal("o"))
    g.add_node("b", BLANK)
    g.add_edge("s", "p", "o")
    g.add_edge("s", "p", "b")
    return g


class TestConstruction:
    def test_add_node_idempotent(self):
        g = TripleGraph()
        g.add_node(1, URI("a"))
        g.add_node(1, URI("a"))
        assert g.num_nodes == 1

    def test_relabel_rejected(self):
        g = TripleGraph()
        g.add_node(1, URI("a"))
        with pytest.raises(GraphError):
            g.add_node(1, URI("b"))

    def test_edge_requires_existing_nodes(self):
        g = TripleGraph()
        g.add_node(1, URI("a"))
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 1)

    def test_duplicate_edges_collapse(self):
        g = small_graph()
        before = g.num_edges
        g.add_edge("s", "p", "o")
        assert g.num_edges == before

    def test_add_edges_bulk(self):
        g = TripleGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, URI(n))
        g.add_edges([("a", "b", "c"), ("c", "b", "a")])
        assert g.num_edges == 2


class TestInspection:
    def test_out_neighborhood(self):
        g = small_graph()
        assert g.out("s") == {("p", "o"), ("p", "b")}
        assert g.out("o") == frozenset()
        assert g.out_degree("s") == 2

    def test_out_unknown_node(self):
        with pytest.raises(GraphError):
            small_graph().out("zzz")

    def test_label_unknown_node(self):
        with pytest.raises(GraphError):
            small_graph().label("zzz")

    def test_contains_and_len(self):
        g = small_graph()
        assert "s" in g and "zzz" not in g
        assert len(g) == 4

    def test_kind_sets(self):
        g = small_graph()
        assert g.uris() == {"s", "p"}
        assert g.literals() == {"o"}
        assert g.blanks() == {"b"}
        assert g.is_blank_node("b") and not g.is_blank_node("s")
        assert g.is_literal_node("o") and g.is_uri_node("p")

    def test_stats(self):
        stats = small_graph().stats()
        assert stats.num_nodes == 4
        assert stats.num_edges == 2
        assert stats.num_uris == 2
        assert stats.num_literals == 1
        assert stats.num_blanks == 1
        assert stats.as_dict()["edges"] == 2

    def test_has_edge(self):
        g = small_graph()
        assert g.has_edge("s", "p", "o")
        assert not g.has_edge("o", "p", "s")


class TestOccurrences:
    def test_occurrence_index(self):
        g = small_graph()
        assert g.occurrences("o") == {"s"}
        assert g.occurrences("p") == {"s"}
        assert g.occurrences("s") == frozenset()

    def test_occurrences_invalidated_by_new_edge(self):
        g = small_graph()
        assert g.occurrences("b") == {"s"}
        g.add_node("x", URI("x"))
        g.add_edge("b", "p", "x")
        assert g.occurrences("x") == {"b"}


class TestCopyAndIsomorphism:
    def test_copy_is_independent(self):
        g = small_graph()
        clone = g.copy()
        clone.add_node("extra", URI("extra"))
        assert "extra" not in g

    def test_isomorphic_by_labels_positive(self):
        g = small_graph()
        assert isomorphic_by_labels(g, g.copy())

    def test_isomorphic_by_labels_negative(self):
        g = small_graph()
        h = small_graph()
        h.add_node("x", URI("x"))
        assert not isomorphic_by_labels(g, h)

    def test_repr(self):
        assert "nodes=4" in repr(small_graph())
