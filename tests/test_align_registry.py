"""The method registry: built-ins, derived orders, third-party methods."""

from __future__ import annotations

import pytest

from repro.align import (
    AlignConfig,
    Aligner,
    MethodSpec,
    get_method,
    method_names,
    method_order,
    refines,
    register_method,
    unregister_method,
)
from repro.align.results import BaselineResult, PairAlignment
from repro.api import METHOD_ORDER
from repro.exceptions import ConfigError, UnknownMethodError


class TestBuiltins:
    def test_core_order_matches_paper_hierarchy(self):
        assert method_order() == (
            "trivial", "deblank", "hybrid", "overlap",
            "bisim", "kbisim", "kbisim_deblank",
        )

    def test_method_order_derives_legacy_constant(self):
        assert METHOD_ORDER == method_order()

    def test_baselines_registered(self):
        names = method_names()
        assert "similarity_flooding" in names
        assert "label_invention" in names
        # Baselines are offered but never enter the refinement order.
        assert "similarity_flooding" not in method_order()

    def test_finer_than_chain(self):
        assert get_method("deblank").finer_than == "trivial"
        assert get_method("overlap").finer_than == "hybrid"
        assert refines("overlap", "trivial")
        assert refines("hybrid", "deblank")
        assert not refines("trivial", "hybrid")

    def test_trivial_and_baselines_skip_csr(self):
        assert not get_method("trivial").uses_csr
        assert get_method("hybrid").uses_csr
        assert not get_method("similarity_flooding").uses_csr

    def test_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            get_method("bogus")


class TestRegistration:
    @pytest.fixture
    def custom_method(self):
        """Register a toy method for the duration of one test."""

        def runner(graph, config, context):
            pairs = {
                (s, t)
                for s in graph.source_nodes
                for t in graph.target_nodes
                if graph.label(s) == graph.label(t)
                and graph.is_uri_node(s)
            }
            return BaselineResult(
                method="uri_equality",
                graph=graph,
                alignment=PairAlignment(graph, pairs),
                engine=config.engine,
            )

        spec = register_method(
            MethodSpec("uri_equality", runner, baseline=True, uses_csr=False)
        )
        yield spec
        unregister_method("uri_equality")

    def test_third_party_method_is_one_call_away(self, custom_method, figure3_graphs):
        assert "uri_equality" in method_names()
        result = Aligner(AlignConfig(method="uri_equality")).align(*figure3_graphs)
        assert result.method == "uri_equality"
        assert result.matched_entities() > 0
        report = result.report()
        assert report.method == "uri_equality"

    def test_duplicate_rejected_without_replace(self, custom_method):
        with pytest.raises(ConfigError):
            register_method(MethodSpec("uri_equality", custom_method.runner))
        register_method(
            MethodSpec("uri_equality", custom_method.runner, baseline=True),
            replace=True,
        )

    def test_bad_names_rejected(self):
        with pytest.raises(ConfigError):
            register_method(MethodSpec("", lambda *a: None))
        with pytest.raises(ConfigError):
            register_method(MethodSpec("has space", lambda *a: None))

    def test_uncallable_runner_rejected(self):
        with pytest.raises(ConfigError):
            register_method(MethodSpec("broken", None))  # type: ignore[arg-type]

    def test_dangling_finer_than_rejected(self):
        with pytest.raises(ConfigError):
            register_method(
                MethodSpec("orphan", lambda *a: None, finer_than="ghost")
            )

    def test_unregistered_method_fails_config_validation(self, custom_method):
        unregister_method("uri_equality")
        with pytest.raises(UnknownMethodError):
            AlignConfig(method="uri_equality")
        # Re-register so the fixture teardown stays a no-op.
        register_method(custom_method)
