"""Unit tests for relational schemas (repro.relational.schema)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Table,
    make_schema,
)


def people_table() -> Table:
    return Table(
        name="person",
        columns=(
            Column("person_id", ColumnType.INTEGER),
            Column("name", ColumnType.TEXT),
            Column("mentor_id", ColumnType.INTEGER, nullable=True),
        ),
        primary_key=("person_id",),
        foreign_keys=(ForeignKey(("mentor_id",), "person"),),
    )


class TestTable:
    def test_valid_table(self):
        table = people_table()
        assert table.column("name").type is ColumnType.TEXT
        assert table.column_names == ("person_id", "name", "mentor_id")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                name="t",
                columns=(Column("a"), Column("a")),
                primary_key=("a",),
            )

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=(Column("a"),), primary_key=("zzz",))

    def test_pk_required(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=(Column("a"),), primary_key=())

    def test_fk_columns_must_exist(self):
        with pytest.raises(SchemaError):
            Table(
                name="t",
                columns=(Column("a"),),
                primary_key=("a",),
                foreign_keys=(ForeignKey(("zzz",), "t"),),
            )

    def test_fk_needs_columns(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "t")

    def test_unknown_column_lookup(self):
        with pytest.raises(SchemaError):
            people_table().column("zzz")

    def test_value_columns_exclude_foreign_keys(self):
        names = [c.name for c in people_table().value_columns()]
        assert names == ["person_id", "name"]


class TestSchema:
    def test_valid_schema(self):
        schema = make_schema([people_table()])
        assert schema.table_names == ("person",)
        assert schema.table("person").name == "person"

    def test_duplicate_tables_rejected(self):
        with pytest.raises(SchemaError):
            make_schema([people_table(), people_table()])

    def test_dangling_fk_table_rejected(self):
        bad = Table(
            name="t",
            columns=(Column("a", ColumnType.INTEGER),),
            primary_key=("a",),
            foreign_keys=(ForeignKey(("a",), "missing"),),
        )
        with pytest.raises(SchemaError):
            make_schema([bad])

    def test_fk_arity_must_match(self):
        target = Table(
            name="pair",
            columns=(Column("x", ColumnType.INTEGER), Column("y", ColumnType.INTEGER)),
            primary_key=("x", "y"),
        )
        bad = Table(
            name="t",
            columns=(Column("a", ColumnType.INTEGER),),
            primary_key=("a",),
            foreign_keys=(ForeignKey(("a",), "pair"),),
        )
        with pytest.raises(SchemaError):
            make_schema([target, bad])

    def test_unknown_table_lookup(self):
        schema = make_schema([people_table()])
        with pytest.raises(SchemaError):
            schema.table("zzz")

    def test_gtopdb_schema_is_valid(self):
        from repro.datasets.gtopdb import gtopdb_schema

        schema = gtopdb_schema()
        assert set(schema.table_names) == {
            "family",
            "target",
            "ligand",
            "reference",
            "interaction",
            "interaction_reference",
        }
