"""The benchmark harness's bench.json append must be crash-proof.

``benchmarks/conftest.py::record_bench`` runs inside an autouse fixture
of every benchmark, so a corrupt or missing ``results/bench.json`` used
to be able to take down the whole bench session.  These tests pin the
tolerant semantics: bad state is replaced, not raised.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import conftest as bench_conftest


@pytest.fixture
def bench_paths(tmp_path, monkeypatch):
    """Redirect the harness at a scratch results directory."""
    results = tmp_path / "results"
    target = results / "bench.json"
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", results)
    monkeypatch.setattr(bench_conftest, "BENCH_JSON", target)
    return results, target


def test_creates_missing_file_and_directory(bench_paths):
    results, target = bench_paths
    assert bench_conftest.record_bench("t", 1.25, speedup=2.0)
    entries = json.loads(target.read_text(encoding="utf-8"))
    assert entries == [{"name": "t", "seconds": 1.25, "speedup": 2.0}]


def test_appends_to_existing_entries(bench_paths):
    _, target = bench_paths
    bench_conftest.record_bench("first", 1.0)
    bench_conftest.record_bench("second", 2.0)
    names = [e["name"] for e in json.loads(target.read_text(encoding="utf-8"))]
    assert names == ["first", "second"]


@pytest.mark.parametrize(
    "garbage",
    [
        "{not json at all",        # corrupt JSON
        '{"name": "not-a-list"}',  # wrong top-level shape
        '[1, "x", {"name": "keep", "seconds": 1.0, "speedup": null}]',
    ],
)
def test_corrupt_content_is_replaced_not_raised(bench_paths, garbage):
    results, target = bench_paths
    results.mkdir()
    target.write_text(garbage, encoding="utf-8")
    assert bench_conftest.record_bench("t", 0.5)
    entries = json.loads(target.read_text(encoding="utf-8"))
    assert all(isinstance(entry, dict) for entry in entries)
    assert entries[-1]["name"] == "t"


def test_directory_squatting_on_the_path_reports_false(bench_paths):
    results, target = bench_paths
    target.mkdir(parents=True)  # bench.json is a *directory*
    assert bench_conftest.record_bench("t", 0.5) is False


def test_unwritable_results_dir_reports_false(bench_paths, monkeypatch):
    results, target = bench_paths
    # A file squatting where the results directory should be makes both
    # mkdir and write fail with OSError.
    results.parent.mkdir(exist_ok=True)
    results.write_text("squatter", encoding="utf-8")
    assert bench_conftest.record_bench("t", 0.5) is False


def test_rounding_matches_the_documented_schema(bench_paths):
    _, target = bench_paths
    bench_conftest.record_bench("t", 1.23456789, speedup=3.14159)
    entry = json.loads(target.read_text(encoding="utf-8"))[0]
    assert entry["seconds"] == 1.234568
    assert entry["speedup"] == 3.142
