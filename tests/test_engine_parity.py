"""Engine parity: the dense engine must reproduce the reference engine.

The dense engine (repro.core.dense) is a performance rewrite of the
reference refinement (repro.core.refinement); the contract is that both
produce *equivalent* partitions (same classes, colors notwithstanding) on
every workload and every alignment method.  These property-style tests
exercise that contract on random mutation workloads built with the
operators of repro.datasets.mutations.
"""

from __future__ import annotations

import logging
import random

import pytest

from repro.api import METHOD_ORDER, align_versions
from repro.core.bisimulation import bisimulation_partition
from repro.core.deblank import deblank_partition
from repro.core.dense import dense_refine_fixpoint, resolve_refine_engine
from repro.core.hybrid import hybrid_partition
from repro.core.refinement import FixpointStats, bisim_refine_fixpoint
from repro.datasets.mutations import mutated_version, random_mutation_graph
from repro.exceptions import ExperimentError
from repro.model import RDFGraph, combine
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph

VOCABULARY = ("graph", "node", "edge", "version", "aligned", "blank", "color")


def workload(seed: int) -> tuple[RDFGraph, RDFGraph]:
    """A random mutation workload (shared builders, see datasets.mutations)."""
    rng = random.Random(seed)
    source = random_mutation_graph(
        rng, num_uris=10, num_literals=8, num_blanks=8, num_edges=40
    )
    return source, mutated_version(rng, source, VOCABULARY)


class TestAlignmentParity:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_methods_equivalent_across_engines(self, method, seed):
        source, target = workload(seed)
        reference = align_versions(source, target, method=method)
        dense = align_versions(source, target, method=method, engine="dense")
        assert dense.partition.equivalent_to(reference.partition)
        assert dense.matched_entities() == reference.matched_entities()
        assert dense.unaligned_counts() == reference.unaligned_counts()

    def test_result_records_engine(self):
        source, target = workload(3)
        assert align_versions(source, target).engine == "reference"
        assert (
            align_versions(source, target, engine="dense").engine == "dense"
        )

    def test_unknown_engine_rejected(self):
        source, target = workload(3)
        with pytest.raises(ExperimentError):
            align_versions(source, target, engine="sparse")  # type: ignore[arg-type]
        with pytest.raises(ExperimentError):
            resolve_refine_engine("sparse")


class TestFixpointParity:
    @pytest.mark.parametrize("seed", [2, 9, 23, 31])
    def test_full_refinement_same_rounds_and_classes(self, seed):
        source, target = workload(seed)
        union = combine(source, target)
        ref_interner, dense_interner = ColorInterner(), ColorInterner()
        ref_stats, dense_stats = FixpointStats(), FixpointStats()
        reference = bisim_refine_fixpoint(
            union, label_partition(union, ref_interner), None, ref_interner,
            stats=ref_stats,
        )
        dense = dense_refine_fixpoint(
            union, label_partition(union, dense_interner), None, dense_interner,
            stats=dense_stats,
        )
        assert dense.equivalent_to(reference)
        # Identical stop semantics, not merely an equivalent result.
        assert dense_stats.rounds == ref_stats.rounds
        assert dense_stats.final_classes == ref_stats.final_classes
        assert dense_stats.converged and ref_stats.converged

    @pytest.mark.parametrize("seed", [5, 13])
    def test_partition_builders_equivalent(self, seed):
        source, target = workload(seed)
        union = combine(source, target)
        assert deblank_partition(union, engine="dense").equivalent_to(
            deblank_partition(union)
        )
        assert hybrid_partition(union, engine="dense").equivalent_to(
            hybrid_partition(union)
        )
        assert bisimulation_partition(union).equivalent_to(
            dense_refine_fixpoint(
                union,
                label_partition(union, interner := ColorInterner()),
                None,
                interner,
            )
        )

    def test_subset_refinement_preserves_other_colors(self, rng):
        graph = random_rdf_graph(rng, num_edges=30)
        interner = ColorInterner()
        initial = label_partition(graph, interner)
        subset = graph.blanks()
        refined = dense_refine_fixpoint(graph, initial, subset, interner)
        for node in graph.nodes():
            if node not in subset:
                assert refined[node] == initial[node]

    @pytest.mark.parametrize("seed", [4, 17])
    def test_pure_python_fallback_matches_numpy_path(self, seed, monkeypatch):
        """The no-NumPy loop is a real shipping path; pin it byte-for-byte.

        With identical fresh interners, both loops must intern identical
        byte keys in identical order, so the partitions must be *equal*,
        not merely equivalent.
        """
        import repro.core.dense as dense_module

        source, target = workload(seed)
        union = combine(source, target)

        def run():
            interner = ColorInterner()
            return dense_refine_fixpoint(
                union, label_partition(union, interner), None, interner
            )

        vectorized = run()
        monkeypatch.setattr(dense_module, "_np", None)
        portable = run()
        assert portable.as_dict() == vectorized.as_dict()
        # And the fallback still refines the blank subset correctly.
        assert deblank_partition(union, engine="dense").equivalent_to(
            deblank_partition(union)
        )

    def test_seeded_interner_path(self, rng):
        """Without an interner, foreign colors are re-seeded (as reference)."""
        graph = random_rdf_graph(rng, num_edges=25)
        foreign = label_partition(graph, ColorInterner())
        dense = dense_refine_fixpoint(graph, foreign)
        reference = bisim_refine_fixpoint(graph, foreign)
        assert dense.equivalent_to(reference)


class TestTruncationSignal:
    def test_truncated_run_reports_non_convergence(self, figure2_graph, caplog):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        for refine in (bisim_refine_fixpoint, dense_refine_fixpoint):
            stats = FixpointStats()
            with caplog.at_level(logging.WARNING, logger="repro.core.refinement"):
                caplog.clear()
                bounded = refine(
                    figure2_graph, initial, None, interner,
                    max_rounds=0, stats=stats,
                )
            assert bounded.equivalent_to(initial)
            assert stats.rounds == 0
            assert not stats.converged
            assert any(
                "before reaching a fixpoint" in record.message
                for record in caplog.records
            )

    def test_converged_run_reports_convergence(self, figure2_graph):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        stats = FixpointStats()
        bisim_refine_fixpoint(figure2_graph, initial, None, interner, stats=stats)
        assert stats.converged
        assert stats.rounds >= 1
        assert stats.final_classes >= stats.initial_classes
