"""Unit tests for node labels (repro.model.labels)."""

from __future__ import annotations

import pytest

from repro.model.labels import (
    BLANK,
    BlankLabel,
    Literal,
    NodeKind,
    URI,
    is_blank,
    is_literal,
    is_uri,
    label_sort_key,
)


class TestURI:
    def test_equality_is_by_value(self):
        assert URI("http://x/a") == URI("http://x/a")
        assert URI("http://x/a") != URI("http://x/b")

    def test_hashable_and_usable_as_dict_key(self):
        d = {URI("a"): 1}
        assert d[URI("a")] == 1

    def test_kind(self):
        assert URI("a").kind is NodeKind.URI

    def test_str_and_repr(self):
        assert str(URI("http://x")) == "http://x"
        assert "http://x" in repr(URI("http://x"))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            URI("a").value = "b"  # type: ignore[misc]


class TestLiteral:
    def test_equality_includes_language_and_datatype(self):
        assert Literal("a") == Literal("a")
        assert Literal("a", language="en") != Literal("a")
        assert Literal("a", datatype="http://x#int") != Literal("a")
        assert Literal("a", language="en") != Literal("a", language="fr")

    def test_language_and_datatype_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("a", language="en", datatype="http://x#string")

    def test_kind(self):
        assert Literal("a").kind is NodeKind.LITERAL

    def test_repr_mentions_extras(self):
        assert "language" in repr(Literal("a", language="en"))
        assert "datatype" in repr(Literal("a", datatype="http://x"))
        assert "language" not in repr(Literal("a"))

    def test_uri_and_literal_never_equal(self):
        assert URI("a") != Literal("a")
        assert Literal("a") != URI("a")


class TestBlankLabel:
    def test_singleton(self):
        assert BlankLabel() is BLANK

    def test_equality(self):
        assert BLANK == BlankLabel()
        assert BLANK != URI("a")
        assert BLANK != Literal("a")

    def test_kind(self):
        assert BLANK.kind is NodeKind.BLANK

    def test_hash_stable(self):
        assert hash(BLANK) == hash(BlankLabel())


class TestPredicates:
    def test_is_functions(self):
        assert is_uri(URI("a")) and not is_uri(Literal("a")) and not is_uri(BLANK)
        assert is_literal(Literal("a")) and not is_literal(URI("a"))
        assert is_blank(BLANK) and not is_blank(URI("a"))

    def test_sort_key_total_order(self):
        labels = [BLANK, Literal("b"), URI("z"), Literal("a"), URI("a")]
        ordered = sorted(labels, key=label_sort_key)
        assert ordered == [URI("a"), URI("z"), Literal("a"), Literal("b"), BLANK]
