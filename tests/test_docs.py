"""The documentation must not rot: every path it references must resolve.

README.md and docs/*.md name many module paths (the paper-to-code map is
essentially a big table of them); this test extracts every repo-relative
path mentioned in backticks or markdown links and asserts it exists, so a
refactor that moves a module fails loudly here instead of silently
orphaning the docs.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOCUMENTS = [
    REPO_ROOT / "README.md",
    *sorted((REPO_ROOT / "docs").glob("*.md")),
]

#: Repo-relative path candidates inside backticks: `src/...py`, `docs/...md` ...
_CODE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples|results)/[\w./\-{},]+)`"
)

#: Markdown link targets: [text](target)
_LINK = re.compile(r"\]\(([^)#\s]+)\)")


def _expand_braces(path: str) -> list[str]:
    """Expand one `{a,b,c}` group (the docs use at most one per path)."""
    match = re.search(r"\{([^}]*)\}", path)
    if not match:
        return [path]
    return [
        path[: match.start()] + option + path[match.end():]
        for option in match.group(1).split(",")
    ]


def referenced_paths(document: pathlib.Path) -> set[str]:
    text = document.read_text(encoding="utf-8")
    found: set[str] = set()
    for raw in _CODE_PATH.findall(text):
        found.update(_expand_braces(raw))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        found.add(target)
    return found


def test_documents_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "paper_map.md").exists()
    assert (REPO_ROOT / "docs" / "performance.md").exists()


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda d: d.name)
def test_referenced_paths_resolve(document):
    missing = []
    for path in sorted(referenced_paths(document)):
        resolved = (document.parent / path if not (REPO_ROOT / path).exists()
                    else REPO_ROOT / path)
        if not resolved.exists():
            missing.append(path)
    assert not missing, (
        f"{document.name} references paths that do not resolve: {missing}"
    )


def test_paper_map_covers_every_figure_experiment():
    """Each experiments/figure*.py module must appear in the paper map."""
    text = (REPO_ROOT / "docs" / "paper_map.md").read_text(encoding="utf-8")
    for module in sorted((REPO_ROOT / "src/repro/experiments").glob("figure*.py")):
        assert f"src/repro/experiments/{module.name}" in text, module.name


def test_readme_mentions_both_engines():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "`reference`" in text and "`dense`" in text
    assert "docs/performance.md" in text and "docs/paper_map.md" in text
