"""Unit and property tests for the Hungarian algorithm (repro.similarity.hungarian)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.similarity.hungarian import matching_with_deletion, solve_assignment

costs = st.lists(
    st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=6),
    min_size=1,
    max_size=6,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


class TestSolveAssignment:
    def test_identity_matrix(self):
        assignment, total = solve_assignment([[0.0, 1.0], [1.0, 0.0]])
        assert assignment == [0, 1]
        assert total == 0.0

    def test_anti_identity(self):
        assignment, total = solve_assignment([[1.0, 0.0], [0.0, 1.0]])
        assert assignment == [1, 0]
        assert total == 0.0

    def test_rectangular_wide(self):
        assignment, total = solve_assignment([[5.0, 1.0, 9.0]])
        assert assignment == [1]
        assert total == 1.0

    def test_rectangular_tall(self):
        assignment, total = solve_assignment([[5.0], [1.0], [9.0]])
        assert assignment == [-1, 0, -1]
        assert total == 1.0

    def test_empty(self):
        assert solve_assignment([]) == ([], 0.0)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment([[1.0, 2.0], [1.0]])

    @given(matrix=costs)
    @settings(max_examples=120, deadline=None)
    def test_matches_scipy_on_random_instances(self, matrix):
        __, total = solve_assignment(matrix)
        arr = np.array(matrix)
        rows, cols = linear_sum_assignment(arr)
        assert total == pytest.approx(float(arr[rows, cols].sum()), abs=1e-9)

    @given(matrix=costs)
    @settings(max_examples=60, deadline=None)
    def test_assignment_is_injective(self, matrix):
        assignment, __ = solve_assignment(matrix)
        used = [col for col in assignment if col >= 0]
        assert len(used) == len(set(used))
        assert len(used) == min(len(matrix), len(matrix[0]))


class TestMatchingWithDeletion:
    def test_prefers_cheap_matches(self):
        pairs, total = matching_with_deletion([[0.0, 1.0], [1.0, 0.0]])
        assert sorted(pairs) == [(0, 0), (1, 1)]
        assert total == 0.0

    def test_matching_cost_one_still_beats_two_deletions(self):
        pairs, total = matching_with_deletion([[1.0]])
        assert pairs == [(0, 0)]
        assert total == 1.0

    def test_expensive_matches_dropped(self):
        """A pair costing more than two deletions stays unmatched."""
        pairs, total = matching_with_deletion([[5.0]], deletion_cost=1.0)
        assert pairs == []
        assert total == 2.0

    def test_size_mismatch_pays_deletions(self):
        # 3 source edges vs 1 target edge: best = one 0-match + 2 deletions.
        pairs, total = matching_with_deletion([[0.0], [0.0], [0.0]])
        assert len(pairs) == 1
        assert total == 2.0

    def test_empty_inputs(self):
        assert matching_with_deletion([]) == ([], 0.0)

    def test_paper_u_uprime(self):
        """Example 5: u={_(p,a),(p,b),(q,c)} vs u'={(p,a),(q,c)} → total 1."""
        # rows: (p,"a"), (p,"b"), (q,"c"); cols: (p,"a"), (q,"c")
        cost = [
            [0.0, 1.0],
            [1.0, 1.0],
            [1.0, 0.0],
        ]
        pairs, total = matching_with_deletion(cost)
        assert total == pytest.approx(1.0)  # two 0-matches + one deletion
        assert (0, 0) in pairs and (2, 1) in pairs

    @given(matrix=costs, deletion=st.floats(0.1, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_total_bounded_by_all_deletions(self, matrix, deletion):
        __, total = matching_with_deletion(matrix, deletion_cost=deletion)
        rows, cols = len(matrix), len(matrix[0])
        assert total <= deletion * (rows + cols) + 1e-9
