"""Tests for multi-version archives (repro.archive)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.archive.builder import VersionArchive
from repro.archive.intervals import VersionInterval
from repro.datasets import EFOGenerator, GtoPdbGenerator
from repro.exceptions import ExperimentError
from repro.model import RDFGraph, blank, lit, uri
from repro.model.graph import isomorphic_by_labels


class TestVersionInterval:
    def test_add_and_contains(self):
        interval = VersionInterval([1, 2, 3])
        assert 2 in interval and 4 not in interval
        assert interval.ranges == [(1, 3)]

    def test_merging_adjacent(self):
        interval = VersionInterval()
        interval.add(1)
        interval.add(3)
        assert interval.ranges == [(1, 1), (3, 3)]
        interval.add(2)
        assert interval.ranges == [(1, 3)]

    def test_duplicates_ignored(self):
        interval = VersionInterval([2])
        interval.add(2)
        assert len(interval) == 1

    def test_out_of_order_insertion(self):
        interval = VersionInterval([5, 1, 3])
        assert interval.ranges == [(1, 1), (3, 3), (5, 5)]

    def test_iteration_and_bounds(self):
        interval = VersionInterval([2, 3, 7])
        assert list(interval) == [2, 3, 7]
        assert interval.first() == 2 and interval.last() == 7
        assert not interval.is_contiguous()
        assert interval.range_count == 2

    def test_empty_interval(self):
        interval = VersionInterval()
        assert len(interval) == 0
        assert interval.is_contiguous()
        with pytest.raises(ValueError):
            interval.first()

    def test_equality_and_hash(self):
        assert VersionInterval([1, 2]) == VersionInterval([2, 1])
        assert hash(VersionInterval([1])) == hash(VersionInterval([1]))

    @given(st.sets(st.integers(1, 30), max_size=20))
    def test_behaves_like_a_set(self, versions):
        interval = VersionInterval(versions)
        assert set(interval) == versions
        assert len(interval) == len(versions)
        for version in versions:
            assert version in interval
        # Ranges are sorted, disjoint and non-adjacent.
        ranges = interval.ranges
        for (start_a, end_a), (start_b, __) in zip(ranges, ranges[1:]):
            assert end_a + 1 < start_b
        for start, end in ranges:
            assert start <= end


def evolving_versions() -> list[RDFGraph]:
    """Three tiny versions: a triple leaves, a triple and node arrive."""
    v1 = RDFGraph()
    v1.add(uri("a"), uri("p"), lit("x"))
    v1.add(uri("a"), uri("p"), lit("old"))
    v2 = RDFGraph()
    v2.add(uri("a"), uri("p"), lit("x"))
    v3 = RDFGraph()
    v3.add(uri("a"), uri("p"), lit("x"))
    v3.add(uri("new"), uri("p"), lit("x"))
    return [v1, v2, v3]


class TestVersionArchive:
    def test_round_trip_small(self):
        graphs = evolving_versions()
        archive = VersionArchive.build(graphs)
        for index, original in enumerate(graphs):
            assert isomorphic_by_labels(original, archive.reconstruct(index + 1))

    def test_persistent_triple_stored_once(self):
        archive = VersionArchive.build(evolving_versions())
        # a-p-"x" lives in all three versions as a single decorated triple.
        persistent = [
            interval
            for interval, in [(interval,) for interval in archive.triples.values()]
            if len(interval) == 3
        ]
        assert len(persistent) == 1

    def test_stats_compression(self):
        graphs = evolving_versions()
        archive = VersionArchive.build(graphs)
        stats = archive.stats(graphs)
        assert stats.naive_triples == 5  # 2 + 1 + 2 triples across versions
        assert stats.compression_ratio > 1.0

    def test_reconstruct_bounds(self):
        archive = VersionArchive.build(evolving_versions())
        with pytest.raises(ExperimentError):
            archive.reconstruct(0)
        with pytest.raises(ExperimentError):
            archive.reconstruct(9)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ExperimentError):
            VersionArchive.build([])

    def test_round_trip_with_blanks(self):
        v1 = RDFGraph()
        v1.add(uri("s"), uri("addr"), blank("b1"))
        v1.add(blank("b1"), uri("zip"), lit("EH8"))
        v2 = RDFGraph()
        v2.add(uri("s"), uri("addr"), blank("other"))
        v2.add(blank("other"), uri("zip"), lit("EH8"))
        archive = VersionArchive.build([v1, v2])
        assert isomorphic_by_labels(v1, archive.reconstruct(1))
        assert isomorphic_by_labels(v2, archive.reconstruct(2))
        # The blank was chained: one blank entity, not two.
        blank_entities = [
            entity
            for entity, labels in archive.labels.items()
            if any(repr(label) == "BLANK" for label in labels)
        ]
        assert len(blank_entities) == 1

    def test_round_trip_efo(self):
        graphs = EFOGenerator(scale=0.15, versions=4).graphs()
        archive = VersionArchive.build(graphs)
        for index, original in enumerate(graphs):
            assert isomorphic_by_labels(original, archive.reconstruct(index + 1))

    def test_round_trip_gtopdb_renamed_prefixes(self):
        """Entities chain across versions even though no URIs are shared."""
        generator = GtoPdbGenerator(scale=0.15, versions=3)
        graphs = generator.graphs()
        archive = VersionArchive.build(graphs)
        for index, original in enumerate(graphs):
            assert isomorphic_by_labels(original, archive.reconstruct(index + 1))
        # Renamed-but-aligned rows share one entity with two label intervals.
        multi_label = [
            labels for labels in archive.labels.values() if len(labels) > 1
        ]
        assert multi_label

    def test_subject_cohesion_high_on_efo(self):
        graphs = EFOGenerator(scale=0.2, versions=5).graphs()
        archive = VersionArchive.build(graphs)
        # The paper's observation: most triples enter/leave with their subject.
        assert archive.subject_cohesion() > 0.6

    def test_subject_grouped_size_not_larger(self):
        graphs = EFOGenerator(scale=0.15, versions=4).graphs()
        archive = VersionArchive.build(graphs)
        plain = sum(1 + interval.range_count for interval in archive.triples.values())
        assert archive.subject_grouped_size() <= plain

    def test_label_at(self):
        archive = VersionArchive.build(evolving_versions())
        # Find the entity of uri("a") in version 1.
        reconstructed = archive.reconstruct(1)
        entities = [
            node for node in reconstructed.nodes()
            if repr(reconstructed.label(node)) == repr(uri("a"))
        ]
        assert len(entities) == 1
        assert archive.label_at(entities[0], 1) == uri("a")
        assert archive.label_at(999999, 1) is None
