"""Tests for the Section 6 future-work extensions.

* context-aware (bidirectional) refinement,
* keyed refinement,
* predicate-aware alignment (the Section 5.1 proposal).
"""

from __future__ import annotations

import pytest

from repro.core.context import (
    bidirectional_bisimulation_partition,
    bidirectional_refine_fixpoint,
    context_hybrid_partition,
    in_neighborhood,
    inbound_index,
)
from repro.core.hybrid import hybrid_partition
from repro.core.keyed import keyed_hybrid_partition, keyed_refine_fixpoint, predicate_key
from repro.core.bisimulation import bisimulation_partition
from repro.datasets import GtoPdbGenerator
from repro.evaluation.precision import classify_node
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.alignment import align
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner
from repro.partition.weighted import zero_weighted
from repro.similarity.predicate_alignment import (
    mediation_index,
    predominantly_predicates,
    refine_predicates,
)


class TestInboundNeighborhood:
    def test_in_neighborhood(self, figure2_graph):
        pairs = in_neighborhood(figure2_graph, uri("u"))
        # u is reached from w via q and from b2/b3 via r.
        assert (uri("q"), uri("w")) in pairs
        assert (uri("r"), blank("b2")) in pairs
        assert len(pairs) == 3

    def test_inbound_index_matches_single_queries(self, figure2_graph):
        index = inbound_index(figure2_graph)
        for node in figure2_graph.nodes():
            assert index[node] == in_neighborhood(figure2_graph, node)


class TestBidirectionalRefinement:
    def test_finer_than_outbound(self, figure2_graph):
        outbound = bisimulation_partition(figure2_graph)
        bidirectional = bidirectional_bisimulation_partition(figure2_graph)
        assert bidirectional.finer_than(outbound) or not outbound.finer_than(
            bidirectional
        )

    def test_context_separates_out_bisimilar_nodes(self):
        """Two sinks with equal contents but different contexts split."""
        g = RDFGraph()
        g.add(uri("a"), uri("p"), blank("x"))
        g.add(uri("b"), uri("q"), blank("y"))
        outbound = bisimulation_partition(g)
        assert outbound.same_class(blank("x"), blank("y"))  # both empty sinks
        bidirectional = bidirectional_bisimulation_partition(g)
        assert not bidirectional.same_class(blank("x"), blank("y"))

    def test_same_context_stays_together(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), blank("x"))
        g.add(uri("a"), uri("p"), blank("y"))
        bidirectional = bidirectional_bisimulation_partition(g)
        assert bidirectional.same_class(blank("x"), blank("y"))

    def test_context_hybrid_separates_conflated_predicates(self):
        """The GtoPdb predicate conflation disappears under context."""
        generator = GtoPdbGenerator(scale=0.1, versions=3)
        union, __ = generator.combined(0, 1)
        plain = hybrid_partition(union, ColorInterner())
        contextual = context_hybrid_partition(union, ColorInterner())
        predicates = predominantly_predicates(union)
        fat_plain = max(
            len(plain.class_of(node)) for node in predicates
        )
        fat_contextual = max(
            len(contextual.class_of(node)) for node in predicates
        )
        assert fat_contextual < fat_plain

    def test_max_rounds_respected(self, figure2_graph):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        bounded = bidirectional_refine_fixpoint(
            figure2_graph, initial, None, interner, max_rounds=0
        )
        assert bounded.equivalent_to(initial)


class TestKeyedRefinement:
    def _versions(self):
        """Entities share 'name' but differ on churny 'comment' fields."""
        g1 = RDFGraph()
        g1.add(uri("v1/e1"), uri("name"), lit("calcitonin"))
        g1.add(uri("v1/e1"), uri("comment"), lit("old remark"))
        g1.add(uri("v1/e2"), uri("name"), lit("histamine"))
        g1.add(uri("v1/e2"), uri("comment"), lit("another old remark"))
        g2 = RDFGraph()
        g2.add(uri("v2/e1"), uri("name"), lit("calcitonin"))
        g2.add(uri("v2/e1"), uri("comment"), lit("rewritten remark"))
        g2.add(uri("v2/e2"), uri("name"), lit("histamine"))
        g2.add(uri("v2/e2"), uri("comment"), lit("yet another remark"))
        return g1, g2

    def test_key_alignment_ignores_non_key_churn(self):
        union = combine(*self._versions())
        # Full hybrid cannot align e1/e2 (comments differ).
        interner = ColorInterner()
        full = hybrid_partition(union, interner)
        alignment = align(union, full)
        assert not alignment.aligned(
            union.from_source(uri("v1/e1")), union.from_target(uri("v2/e1"))
        )
        # Keyed on 'name', both entities align, and correctly so.
        keyed_interner = ColorInterner()
        keyed = keyed_hybrid_partition(
            union, predicate_key([uri("name")]), keyed_interner
        )
        keyed_alignment = align(union, keyed)
        assert keyed_alignment.aligned(
            union.from_source(uri("v1/e1")), union.from_target(uri("v2/e1"))
        )
        assert keyed_alignment.aligned(
            union.from_source(uri("v1/e2")), union.from_target(uri("v2/e2"))
        )
        assert not keyed_alignment.aligned(
            union.from_source(uri("v1/e1")), union.from_target(uri("v2/e2"))
        )

    def test_keyed_is_coarser_than_full(self):
        union = combine(*self._versions())
        interner = ColorInterner()
        base = hybrid_partition(union, interner)
        keyed_interner = ColorInterner()
        keyed = keyed_hybrid_partition(
            union, predicate_key([uri("name")]), keyed_interner
        )
        full_pairs = set(align(union, base).pairs())
        keyed_pairs = set(align(union, keyed).pairs())
        assert full_pairs <= keyed_pairs

    def test_empty_key_conflates_everything_unaligned(self):
        union = combine(*self._versions())
        interner = ColorInterner()
        keyed = keyed_hybrid_partition(union, predicate_key([]), interner)
        # With no key attributes every blanked node looks the same.
        e1 = union.from_source(uri("v1/e1"))
        e2 = union.from_target(uri("v2/e2"))
        assert keyed[e1] == keyed[e2]


class TestPredicateAlignment:
    @pytest.fixture(scope="class")
    def gtopdb_pair(self):
        generator = GtoPdbGenerator(scale=0.25, versions=3)
        return generator.combined(0, 1)

    def test_predominantly_predicates_found(self, gtopdb_pair):
        union, __ = gtopdb_pair
        predicates = predominantly_predicates(union)
        assert predicates
        labels = {union.label(node).value for node in predicates}
        assert any("#name" in label for label in labels)

    def test_mediation_index(self, gtopdb_pair):
        union, __ = gtopdb_pair
        index = mediation_index(union)
        total = sum(len(pairs) for pairs in index.values())
        assert total == union.num_edges

    def test_refinement_fixes_predicate_precision(self, gtopdb_pair):
        union, truth = gtopdb_pair
        interner = ColorInterner()
        hybrid = hybrid_partition(union, interner)
        weighted = zero_weighted(hybrid)
        refined = refine_predicates(union, weighted, interner, theta=0.5)

        def score(partition):
            alignment = align(union, partition)
            counts = {"exact": 0, "inclusive": 0, "missing": 0, "false": 0}
            for node in predominantly_predicates(union):
                term = union.original(node)
                if union.side(node) == 1:
                    partner_term = truth.partner_of_source(term)
                    partner = (2, partner_term) if partner_term else None
                else:
                    partner_term = truth.partner_of_target(term)
                    partner = (1, partner_term) if partner_term else None
                counts[classify_node(alignment, node, partner)] += 1
            return counts

        before = score(hybrid)
        after = score(refined.partition)
        assert after["exact"] > before["exact"]
        assert after["inclusive"] < before["inclusive"]

    def test_no_candidates_is_identity(self, figure2_graph):
        union = combine(figure2_graph, figure2_graph.copy())
        interner = ColorInterner()
        weighted = zero_weighted(hybrid_partition(union, interner))
        assert refine_predicates(union, weighted, interner) is weighted
