"""Shared fixtures: the paper's worked-example graphs and random generators.

The fixtures named ``figure*`` reconstruct the graphs of the paper's
figures; regression tests pin the published behaviour against them.
"""

from __future__ import annotations

import random

import pytest

from repro.model import CombinedGraph, RDFGraph, blank, combine, lit, uri


@pytest.fixture
def figure1_graphs() -> tuple[RDFGraph, RDFGraph]:
    """Paper Figure 1: two versions of personal information about 'ss'.

    Version 2 fixes the first name, drops the middle name and renames the
    University of Edinburgh URI from ``ed-uni`` to ``uoe``.
    """
    v1 = RDFGraph()
    v1.add(uri("ss"), uri("address"), blank("b1"))
    v1.add(uri("ss"), uri("employer"), uri("ed-uni"))
    v1.add(uri("ss"), uri("name"), blank("b2"))
    v1.add(blank("b1"), uri("zip"), lit("EH8"))
    v1.add(blank("b1"), uri("city"), lit("Edinburgh"))
    v1.add(uri("ed-uni"), uri("name"), lit("University of Edinburgh"))
    v1.add(uri("ed-uni"), uri("city"), lit("Edinburgh"))
    v1.add(blank("b2"), uri("first"), lit("Sławek"))
    v1.add(blank("b2"), uri("middle"), lit("Paweł"))
    v1.add(blank("b2"), uri("last"), lit("Staworko"))

    v2 = RDFGraph()
    v2.add(uri("ss"), uri("address"), blank("b3"))
    v2.add(uri("ss"), uri("employer"), uri("uoe"))
    v2.add(uri("ss"), uri("name"), blank("b4"))
    v2.add(blank("b3"), uri("zip"), lit("EH8"))
    v2.add(blank("b3"), uri("city"), lit("Edinburgh"))
    v2.add(uri("uoe"), uri("name"), lit("University of Edinburgh"))
    v2.add(uri("uoe"), uri("city"), lit("Edinburgh"))
    v2.add(blank("b4"), uri("first"), lit("Sławomir"))
    v2.add(blank("b4"), uri("last"), lit("Staworko"))
    return v1, v2


@pytest.fixture
def figure2_graph() -> RDFGraph:
    """Paper Figure 2: the RDF graph whose nodes b2 and b3 are bisimilar."""
    g = RDFGraph()
    g.add(uri("w"), uri("p"), blank("b1"))
    g.add(uri("w"), uri("q"), uri("u"))
    g.add(blank("b1"), uri("q"), blank("b2"))
    g.add(blank("b1"), uri("r"), blank("b3"))
    g.add(blank("b2"), uri("r"), uri("u"))
    g.add(blank("b2"), uri("q"), lit("a"))
    g.add(blank("b3"), uri("r"), uri("u"))
    g.add(blank("b3"), uri("q"), lit("a"))
    return g


@pytest.fixture
def figure3_graphs() -> tuple[RDFGraph, RDFGraph]:
    """Paper Figure 3: b2/b3 merged into b4, URI u renamed to v, b1 ≙ b5."""
    g1 = RDFGraph()
    g1.add(uri("w"), uri("p"), blank("b1"))
    g1.add(uri("w"), uri("p"), blank("b2"))
    g1.add(uri("w"), uri("p"), blank("b3"))
    g1.add(uri("w"), uri("q"), uri("u"))
    g1.add(blank("b1"), uri("q"), lit("a"))
    g1.add(blank("b1"), uri("r"), uri("u"))
    g1.add(blank("b2"), uri("q"), lit("b"))
    g1.add(blank("b3"), uri("q"), lit("b"))

    g2 = RDFGraph()
    g2.add(uri("w"), uri("p"), blank("b5"))
    g2.add(uri("w"), uri("p"), blank("b4"))
    g2.add(uri("w"), uri("q"), uri("v"))
    g2.add(blank("b5"), uri("q"), lit("a"))
    g2.add(blank("b5"), uri("r"), uri("v"))
    g2.add(blank("b4"), uri("q"), lit("b"))
    return g1, g2


@pytest.fixture
def figure3_combined(figure3_graphs) -> CombinedGraph:
    return combine(*figure3_graphs)


@pytest.fixture
def figure7_graphs() -> tuple[RDFGraph, RDFGraph]:
    """Paper Figure 7: the σEdit worked example.

    The second version renames the inner URIs (w → w2 etc.), drops the
    edge to literal "b" and edits "abc" into "ac".
    """
    g1 = RDFGraph()
    g1.add(uri("w"), uri("r"), uri("u"))
    g1.add(uri("w"), uri("q"), uri("v"))
    g1.add(uri("u"), uri("p"), lit("a"))
    g1.add(uri("u"), uri("p"), lit("b"))
    g1.add(uri("u"), uri("q"), lit("c"))
    g1.add(uri("v"), uri("p"), lit("abc"))
    g1.add(uri("v"), uri("q"), lit("c"))

    g2 = RDFGraph()
    g2.add(uri("w2"), uri("r"), uri("u2"))
    g2.add(uri("w2"), uri("q"), uri("v2"))
    g2.add(uri("u2"), uri("p"), lit("a"))
    g2.add(uri("u2"), uri("q"), lit("c"))
    g2.add(uri("v2"), uri("p"), lit("ac"))
    g2.add(uri("v2"), uri("q"), lit("c"))
    return g1, g2


@pytest.fixture
def figure7_combined(figure7_graphs) -> CombinedGraph:
    return combine(*figure7_graphs)


def random_rdf_graph(
    rng: random.Random,
    num_uris: int = 6,
    num_literals: int = 4,
    num_blanks: int = 4,
    num_edges: int = 15,
    uri_prefix: str = "n",
) -> RDFGraph:
    """A small random RDF graph for property tests and cross-checks."""
    graph = RDFGraph()
    uris = [uri(f"{uri_prefix}{i}") for i in range(num_uris)]
    literals = [lit(f"value {i}") for i in range(num_literals)]
    blanks = [blank(f"{uri_prefix}b{i}") for i in range(num_blanks)]
    for term in uris + literals:
        graph.term(term)
    for term in blanks:
        graph.term(term)
    subjects = uris + blanks
    objects = uris + blanks + literals
    for _ in range(num_edges):
        graph.add(
            rng.choice(subjects), rng.choice(uris), rng.choice(objects)
        )
    return graph


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20160912)
