"""Proposition 1: refinement captures maximal bisimulation.

Cross-checks the production partition-refinement implementation against an
independent naive greatest-fixpoint reference on the paper's graphs and on
random graphs.
"""

from __future__ import annotations

import pytest

from repro.core.bisimulation import (
    are_bisimilar,
    bisimulation_partition,
    naive_maximal_bisimulation,
    partition_to_relation_agrees,
)
from repro.model import RDFGraph, blank, lit, uri

from .conftest import random_rdf_graph


class TestFigure2:
    def test_b2_b3_bisimilar(self, figure2_graph):
        assert are_bisimilar(figure2_graph, blank("b2"), blank("b3"))

    def test_b1_not_bisimilar_to_b2(self, figure2_graph):
        assert not are_bisimilar(figure2_graph, blank("b1"), blank("b2"))

    def test_literals_not_bisimilar_to_uris(self, figure2_graph):
        assert not are_bisimilar(figure2_graph, lit("a"), uri("u"))


class TestProposition1:
    def test_figure2_agrees_with_naive(self, figure2_graph):
        partition = bisimulation_partition(figure2_graph)
        relation = naive_maximal_bisimulation(figure2_graph)
        assert partition_to_relation_agrees(partition, relation)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_agree_with_naive(self, seed):
        import random

        graph = random_rdf_graph(
            random.Random(seed), num_uris=5, num_literals=3, num_blanks=4, num_edges=14
        )
        partition = bisimulation_partition(graph)
        relation = naive_maximal_bisimulation(graph)
        assert partition_to_relation_agrees(partition, relation)

    def test_identity_always_bisimulation(self, figure2_graph):
        relation = naive_maximal_bisimulation(figure2_graph)
        for node in figure2_graph.nodes():
            assert (node, node) in relation

    def test_relation_is_symmetric(self, figure2_graph):
        relation = naive_maximal_bisimulation(figure2_graph)
        assert {(m, n) for n, m in relation} == relation


class TestCyclicGraphs:
    def test_two_cycles_of_same_shape_are_bisimilar(self):
        g = RDFGraph()
        g.add(blank("x1"), uri("p"), blank("x2"))
        g.add(blank("x2"), uri("p"), blank("x1"))
        g.add(blank("y1"), uri("p"), blank("y2"))
        g.add(blank("y2"), uri("p"), blank("y1"))
        assert are_bisimilar(g, blank("x1"), blank("y1"))
        assert are_bisimilar(g, blank("x1"), blank("x2"))

    def test_cycle_vs_tail_not_bisimilar(self):
        g = RDFGraph()
        g.add(blank("c1"), uri("p"), blank("c2"))
        g.add(blank("c2"), uri("p"), blank("c1"))
        g.add(blank("t1"), uri("p"), blank("t2"))  # t2 is a dead end
        assert not are_bisimilar(g, blank("c1"), blank("t1"))

    def test_self_loop_bisimilar_to_two_cycle(self):
        """Bisimulation ignores cycle length, only behaviour matters."""
        g = RDFGraph()
        g.add(blank("s"), uri("p"), blank("s"))
        g.add(blank("c1"), uri("p"), blank("c2"))
        g.add(blank("c2"), uri("p"), blank("c1"))
        assert are_bisimilar(g, blank("s"), blank("c1"))
        relation = naive_maximal_bisimulation(g)
        partition = bisimulation_partition(g)
        assert partition_to_relation_agrees(partition, relation)
