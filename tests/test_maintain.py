"""Tests for fixpoint maintenance under deltas (repro.core.maintain).

The contract under test, in increasing generality:

* hand-built splitting / coarsening cases where the expected class
  structure is known — in particular deletions and literal edits that
  *merge* previously distinct classes, the path the ``mutation_chain``
  scenario never exercises;
* the documented precondition: maintaining a partition whose non-subset
  classes are not label-grounded (a hybrid base) raises
  :class:`~repro.exceptions.PartitionError`, and
  :func:`~repro.core.maintain.maintain_or_batch` falls back to batch —
  never a silently divergent partition;
* the Hypothesis property: on random graphs under random composable
  mutation sequences, ``maintain_fixpoint(previous, delta)`` is
  equivalent (up to recoloring) to batch
  :func:`~repro.core.refinement.bisim_refine_fixpoint` on the mutated
  graph, for both the deblanking subset and full bisimulation.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core.maintain import (
    MaintenanceStats,
    deblank_fixpoint,
    maintain_fixpoint,
    maintain_or_batch,
)
from repro.core.hybrid import hybrid_partition
from repro.core.refinement import bisim_refine_fixpoint
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.delta.changes import VersionChanges, diff
from repro.exceptions import PartitionError
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

import pytest

from .conftest import random_rdf_graph

_seeds = st.integers(min_value=0, max_value=1_000_000)


def _batch(graph, subset):
    interner = ColorInterner()
    return bisim_refine_fixpoint(
        graph, label_partition(graph, interner), subset, interner
    )


def _perturb(before: RDFGraph, rng: random.Random):
    """A random mutated sibling of *before* plus its identity map.

    Exercises every delta constructor input: URI renames (label
    changes), blank renames (pure key substitution — the archive
    reshuffle), edge deletions (the coarsening trigger), node and edge
    insertions.
    """
    fresh = itertools.count()
    renames = {}
    for node in sorted(before.uris(), key=repr):
        if rng.random() < 0.2:
            renames[node] = uri(f"ren{next(fresh)}")
    for node in sorted(before.blanks(), key=repr):
        if rng.random() < 0.3:
            renames[node] = blank(f"renb{next(fresh)}")

    after = RDFGraph()
    dropped = set()
    for node in sorted(before.nodes(), key=repr):
        if rng.random() < 0.05:
            dropped.add(node)  # node deletion takes its edges along
            continue
        after.term(renames.get(node, node))
    for s, p, o in sorted(before.edges(), key=repr):
        if {s, p, o} & dropped or rng.random() < 0.15:
            continue
        after.add(renames.get(s, s), renames.get(p, p), renames.get(o, o))

    new_terms = [uri(f"new{next(fresh)}") for _ in range(rng.randrange(3))]
    new_terms += [blank(f"newb{next(fresh)}") for _ in range(rng.randrange(3))]
    new_terms += [lit(f"newlit{next(fresh)}") for _ in range(rng.randrange(2))]
    for term in new_terms:
        after.term(term)
    subjects = sorted(after.uris() | after.blanks(), key=repr)
    predicates = sorted(after.uris(), key=repr)
    objects = sorted(after.nodes(), key=repr)
    if subjects and predicates:
        for _ in range(rng.randrange(5)):
            after.add(
                rng.choice(subjects), rng.choice(predicates), rng.choice(objects)
            )
    return after, renames


class TestHandBuilt:
    def test_pure_rename_is_key_substitution(self):
        """A blank reshuffle keeps every class; nothing is re-refined."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), lit("x"))
        g1.add(blank("b"), uri("p"), lit("y"))
        g2 = RDFGraph()
        g2.add(blank("a2"), uri("p"), lit("x"))
        g2.add(blank("b2"), uri("p"), lit("y"))
        previous = deblank_fixpoint(g1)
        delta = diff(g1, g2, renames={blank("a"): blank("a2"),
                                      blank("b"): blank("b2")})
        stats = MaintenanceStats()
        maintained = maintain_fixpoint(
            g2, previous, delta, g2.blanks(), stats=stats
        )
        assert maintained.equivalent_to(deblank_fixpoint(g2))
        assert stats.refined == 0
        assert stats.kept == 2

    def test_insertion_splits_a_class(self):
        """A new distinguishing edge separates previously merged blanks."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), lit("x"))
        g1.add(blank("b"), uri("p"), lit("x"))
        g2 = RDFGraph()
        g2.add(blank("a"), uri("p"), lit("x"))
        g2.add(blank("b"), uri("p"), lit("x"))
        g2.add(blank("b"), uri("q"), lit("z"))
        previous = deblank_fixpoint(g1)
        assert previous.same_class(blank("a"), blank("b"))
        maintained = maintain_fixpoint(g2, previous, diff(g1, g2), g2.blanks())
        assert maintained.equivalent_to(deblank_fixpoint(g2))
        assert not maintained.same_class(blank("a"), blank("b"))

    def test_deletion_merges_classes(self):
        """Coarsening: removing the distinguishing edge merges classes —
        the path splitting alone cannot reach."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), lit("x"))
        g1.add(blank("b"), uri("p"), lit("x"))
        g1.add(blank("b"), uri("q"), lit("z"))
        g2 = RDFGraph()
        g2.add(blank("a"), uri("p"), lit("x"))
        g2.add(blank("b"), uri("p"), lit("x"))
        g2.term(lit("z"))
        previous = deblank_fixpoint(g1)
        assert not previous.same_class(blank("a"), blank("b"))
        stats = MaintenanceStats()
        maintained = maintain_fixpoint(
            g2, previous, diff(g1, g2), g2.blanks(), stats=stats
        )
        assert maintained.equivalent_to(deblank_fixpoint(g2))
        assert maintained.same_class(blank("a"), blank("b"))
        assert stats.merged_classes >= 1

    def test_literal_edit_merges_upstream_classes(self):
        """An object-value edit propagates to the blanks pointing at it."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), lit("x"))
        g1.add(blank("b"), uri("p"), lit("y"))
        g2 = RDFGraph()
        g2.add(blank("a"), uri("p"), lit("x"))
        g2.add(blank("b"), uri("p"), lit("x"))
        previous = deblank_fixpoint(g1)
        assert not previous.same_class(blank("a"), blank("b"))
        maintained = maintain_fixpoint(g2, previous, diff(g1, g2), g2.blanks())
        assert maintained.equivalent_to(deblank_fixpoint(g2))
        assert maintained.same_class(blank("a"), blank("b"))

    def test_empty_delta_is_a_no_op(self):
        rng = random.Random(7)
        graph = random_rdf_graph(rng)
        previous = deblank_fixpoint(graph)
        maintained = maintain_fixpoint(
            graph, previous, VersionChanges(), graph.blanks()
        )
        assert maintained.equivalent_to(previous)


class TestPrecondition:
    def test_disconnected_delta_is_rejected(self):
        """A delta that does not connect previous to graph must raise."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), lit("x"))
        g2 = RDFGraph()
        g2.add(blank("a"), uri("p"), lit("x"))
        g2.add(uri("s"), uri("p"), lit("x"))  # appears in no delta
        with pytest.raises(PartitionError):
            maintain_fixpoint(g2, deblank_fixpoint(g1), VersionChanges(),
                              g2.blanks())

    @staticmethod
    def _hybrid_case():
        """A combined graph whose hybrid partition puts two *different*
        URI labels into one class (the paper's ``ed-uni`` → ``uoe``
        rename) — the label-grounded violation."""
        g1 = RDFGraph()
        g1.add(uri("ed-uni"), uri("p"), lit("x"))
        g1.add(blank("a"), uri("q"), uri("ed-uni"))
        g2 = RDFGraph()
        g2.add(uri("uoe"), uri("p"), lit("x"))
        g2.add(blank("a"), uri("q"), uri("uoe"))
        union = combine(g1, g2)
        previous = hybrid_partition(union, ColorInterner())
        # The case only has teeth if the hybrid really merged the two
        # renamed URIs into one non-blank class.
        blanks = union.blanks()
        labels = union.labels()
        by_color = {}
        for node, color in previous.items():
            if node not in blanks:
                by_color.setdefault(color, set()).add(labels[node])
        assert any(len(label_set) > 1 for label_set in by_color.values())
        return union, previous

    def test_hybrid_base_is_rejected(self):
        """Hybrid partitions refine non-blank classes beyond labels —
        maintenance must refuse them, not silently diverge."""
        union, previous = self._hybrid_case()
        with pytest.raises(PartitionError):
            maintain_fixpoint(union, previous, VersionChanges(), union.blanks())

    def test_maintain_or_batch_falls_back(self):
        union, previous = self._hybrid_case()
        stats = MaintenanceStats()
        result = maintain_or_batch(
            union, previous, VersionChanges(), union.blanks(), stats=stats
        )
        assert stats.fell_back
        assert result.equivalent_to(_batch(union, union.blanks()))


class TestPropertyRandom:
    @given(seed=_seeds)
    @settings(max_examples=40, deadline=None)
    def test_maintain_equals_batch_deblanking(self, seed):
        rng = random.Random(seed)
        before = random_rdf_graph(rng, num_edges=18)
        after, renames = _perturb(before, rng)
        delta = diff(before, after, renames=renames)
        maintained = maintain_fixpoint(
            after, deblank_fixpoint(before), delta, after.blanks()
        )
        assert maintained.equivalent_to(deblank_fixpoint(after))

    @given(seed=_seeds)
    @settings(max_examples=20, deadline=None)
    def test_maintain_equals_batch_full_bisimulation(self, seed):
        """subset=None: every node refined, every node maintained."""
        rng = random.Random(seed)
        before = random_rdf_graph(rng, num_edges=18)
        after, renames = _perturb(before, rng)
        delta = diff(before, after, renames=renames)
        maintained = maintain_fixpoint(
            after, _batch(before, None), delta, None
        )
        assert maintained.equivalent_to(_batch(after, None))

    @given(seed=_seeds)
    @settings(max_examples=15, deadline=None)
    def test_mutation_sequences_compose(self, seed):
        """Maintenance survives a chain of deltas — each step maintains
        the previous step's *maintained* partition, and every
        intermediate equals batch."""
        rng = random.Random(seed)
        graph = random_rdf_graph(rng, num_edges=18)
        partition = deblank_fixpoint(graph)
        for _ in range(3):
            mutated, renames = _perturb(graph, rng)
            delta = diff(graph, mutated, renames=renames)
            partition = maintain_fixpoint(
                mutated, partition, delta, mutated.blanks()
            )
            assert partition.equivalent_to(deblank_fixpoint(mutated))
            graph = mutated


class TestChainContract:
    """The persistent-interner fast path: one interner (and canonical-form
    cache) shared across a whole chain, carried colors reused verbatim."""

    @given(seed=_seeds)
    @settings(max_examples=25, deadline=None)
    def test_verbatim_chain_with_canon_cache_equals_batch(self, seed):
        rng = random.Random(seed)
        graph = random_rdf_graph(rng, num_edges=18)
        interner = ColorInterner()
        canon_cache: dict = {}
        partition = deblank_fixpoint(graph, interner)
        for _ in range(3):
            mutated, renames = _perturb(graph, rng)
            delta = diff(graph, mutated, renames=renames)
            partition = maintain_fixpoint(
                mutated, partition, delta, mutated.blanks(),
                interner, canon_cache=canon_cache,
            )
            assert partition.equivalent_to(deblank_fixpoint(mutated))
            graph = mutated

    @given(seed=_seeds)
    @settings(max_examples=15, deadline=None)
    def test_verbatim_chain_full_bisimulation(self, seed):
        rng = random.Random(seed)
        graph = random_rdf_graph(rng, num_edges=18)
        interner = ColorInterner()
        canon_cache: dict = {}
        partition = bisim_refine_fixpoint(
            graph, label_partition(graph, interner), None, interner
        )
        for _ in range(2):
            mutated, renames = _perturb(graph, rng)
            delta = diff(graph, mutated, renames=renames)
            partition = maintain_fixpoint(
                mutated, partition, delta, None,
                interner, canon_cache=canon_cache,
            )
            assert partition.equivalent_to(_batch(mutated, None))
            graph = mutated

    def test_cyclic_cones_fall_back_to_quotient_merge(self):
        """A blank cycle has no canonical tree form: the canon merge must
        fall back to the quotient pass for the step — same result."""
        g1 = RDFGraph()
        g1.add(blank("a"), uri("p"), blank("b"))
        g1.add(blank("b"), uri("p"), blank("a"))
        g1.add(blank("c"), uri("p"), blank("c"))
        g1.add(blank("a"), uri("q"), lit("x"))
        g2 = RDFGraph()
        g2.add(blank("a"), uri("p"), blank("b"))
        g2.add(blank("b"), uri("p"), blank("a"))
        g2.add(blank("c"), uri("p"), blank("c"))
        g2.term(lit("x"))  # deletion: a/b lose their distinguisher
        interner = ColorInterner()
        canon_cache: dict = {}
        previous = deblank_fixpoint(g1, interner)
        maintained = maintain_fixpoint(
            g2, previous, diff(g1, g2), g2.blanks(),
            interner, canon_cache=canon_cache,
        )
        assert maintained.equivalent_to(deblank_fixpoint(g2))
        # The coarsening actually happened: a, b and c all look alike now.
        assert maintained.same_class(blank("a"), blank("c"))

    def test_cache_is_cleared_on_fallback(self):
        """After a batch fallback the cache must not leak stale forms
        (batch refinement can hand an old color to a different class)."""
        union, previous = TestPrecondition._hybrid_case()
        interner = ColorInterner()
        canon_cache: dict = {1: 2}
        stats = MaintenanceStats()
        maintain_or_batch(
            union, previous, VersionChanges(), union.blanks(),
            interner, stats, canon_cache=canon_cache,
        )
        assert stats.fell_back
        assert not canon_cache


class TestScenarioChain:
    def test_mutation_chain_maintains_every_step(self):
        """The pinned scenario's generator deltas drive maintenance end
        to end, with the identity-preserving rename maps."""
        generator = SyntheticGenerator(config=SCENARIOS["mutation_chain"])
        graphs = generator.graphs()
        partition = deblank_fixpoint(graphs[0])
        for index in range(len(graphs) - 1):
            delta = generator.version_changes(index)
            partition = maintain_fixpoint(
                graphs[index + 1], partition, delta,
                graphs[index + 1].blanks(),
            )
            assert partition.equivalent_to(deblank_fixpoint(graphs[index + 1]))
