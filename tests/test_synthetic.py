"""Tests for the synthetic workload generator (repro.datasets.synthetic).

Two metamorphic properties anchor the generator's semantics:

* **relabeling invariance** — a fresh IRI bijection cannot change the
  bisimulation structure, so the blank fixpoint's class-size multiset is
  invariant (bisimulation is defined over label *equality*, not label
  values);
* **identity chains** — a history whose mutation rates are all zero
  evolves only by blank-identifier reshuffling, so aligning consecutive
  versions must reproduce the identity alignment exactly.

Plus determinism pins (byte-identical histories from equal configs, in
any process), config validation, ground-truth sanity under split/merge,
and the VersionStore/registry integration.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.align import AlignConfig, Aligner
from repro.core.refinement import bisim_refine_fixpoint
from repro.datasets.registry import clear_shared_generators
from repro.datasets.synthetic import (
    SCENARIOS,
    SHAPE_FAMILIES,
    SHAPES,
    SyntheticConfig,
    SyntheticGenerator,
    history_stats,
    relabel_uris,
)
from repro.exceptions import ConfigError
from repro.io import ntriples
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

#: Small-but-structured configs for the property tests.
_shapes = st.sampled_from(SHAPES)
_seeds = st.integers(min_value=0, max_value=10_000)


def _small_config(shape: str, seed: int, **overrides) -> SyntheticConfig:
    base = dict(shape=shape, seed=seed, entities=14, versions=3, blank_density=0.3)
    base.update(overrides)
    return SyntheticConfig(**base)


def _blank_class_sizes(graph) -> tuple[int, ...]:
    """Sorted class sizes of the blank bisimulation fixpoint."""
    blanks = graph.blanks()
    if not blanks:
        return ()
    interner = ColorInterner()
    partition = bisim_refine_fixpoint(
        graph, label_partition(graph, interner), blanks, interner
    )
    sizes: dict[int, int] = {}
    for node in blanks:
        sizes[partition[node]] = sizes.get(partition[node], 0) + 1
    return tuple(sorted(sizes.values()))


class TestConfig:
    def test_defaults_validate(self):
        config = SyntheticConfig()
        assert config.shape in SHAPES

    @pytest.mark.parametrize(
        "changes",
        [
            {"shape": "torus"},
            {"versions": 0},
            {"entities": 1},
            {"blank_density": 1.5},
            {"rename_fraction": -0.1},
            {"namespace_skew": -1},
            {"edge_factor": 0},
            {"seed": "seven"},
        ],
    )
    def test_bad_values_rejected(self, changes):
        with pytest.raises(ConfigError):
            SyntheticConfig(**changes)

    def test_evolve_validates_and_rejects_unknown(self):
        config = SyntheticConfig().evolve(shape="dag", versions=2)
        assert (config.shape, config.versions) == ("dag", 2)
        with pytest.raises(ConfigError):
            SyntheticConfig().evolve(widgets=3)

    def test_dict_round_trip(self):
        config = SCENARIOS["mutation_chain"]
        assert SyntheticConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ConfigError):
            SyntheticConfig.from_dict([1, 2, 3])

    def test_identity_config_has_no_mutations(self):
        config = SyntheticConfig.identity(shape="chain")
        assert config.rename_fraction == 0.0
        assert config.split_fraction == 0.0
        assert config.literal_noise == 0.0


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_equal_configs_build_identical_histories(self, name):
        config = SCENARIOS[name]
        first = SyntheticGenerator(config=config)
        second = SyntheticGenerator(config=config)
        for index in range(config.versions):
            assert ntriples.dumps(first.graph(index)) == ntriples.dumps(
                second.graph(index)
            )

    def test_different_seeds_differ(self):
        base = SCENARIOS["small_er"]
        other = base.evolve(seed=base.seed + 1)
        assert ntriples.dumps(
            SyntheticGenerator(config=base).graph(0)
        ) != ntriples.dumps(SyntheticGenerator(config=other).graph(0))

    def test_shared_memoizes_per_config(self):
        clear_shared_generators()
        config = _small_config("star", 9)
        first = SyntheticGenerator.shared(config)
        second = SyntheticGenerator.shared(config)
        third = SyntheticGenerator.shared(config.evolve(seed=10))
        assert first is second
        assert third is not first

    def test_graphs_are_valid_rdf(self):
        generator = SyntheticGenerator(config=SCENARIOS["mutation_chain"])
        for graph in generator.graphs():
            graph.validate()

    def test_history_stats_shape(self):
        generator = SyntheticGenerator(config=_small_config("dag", 3))
        rows = history_stats(generator)
        assert [row["version"] for row in rows] == [1, 2, 3]
        assert all(row["edges"] > 0 for row in rows)


class TestRelabelingInvariance:
    """Metamorphic: bisimulation is blind to the URI bijection."""

    @given(shape=_shapes, seed=_seeds)
    @settings(max_examples=20, deadline=None)
    def test_blank_partition_sizes_invariant(self, shape, seed):
        graph = SyntheticGenerator(config=_small_config(shape, seed)).graph(0)
        relabeled = relabel_uris(graph)
        assert _blank_class_sizes(graph) == _blank_class_sizes(relabeled)

    @given(seed=_seeds)
    @settings(max_examples=10, deadline=None)
    def test_relabel_is_a_bijection(self, seed):
        graph = SyntheticGenerator(config=_small_config("erdos_renyi", seed)).graph(0)
        relabeled = relabel_uris(graph)
        stats, relabeled_stats = graph.stats(), relabeled.stats()
        assert stats.num_nodes == relabeled_stats.num_nodes
        assert stats.num_edges == relabeled_stats.num_edges


class TestIdentityChain:
    """Metamorphic: a mutation-free chain aligns back to the identity."""

    @given(shape=_shapes, seed=_seeds)
    @settings(max_examples=10, deadline=None)
    def test_identity_chain_yields_identity_alignment(self, shape, seed):
        config = SyntheticConfig.identity(
            shape=shape, seed=seed, entities=12, versions=3, blank_density=0.3
        )
        generator = SyntheticGenerator(config=config)
        aligner = Aligner(AlignConfig(method="hybrid"))
        for index in range(config.versions - 1):
            result = aligner.align(
                generator.graph(index), generator.graph(index + 1)
            )
            assert result.unaligned_counts() == (0, 0)
            truth = generator.ground_truth(index, index + 1)
            lifted = truth.combined_pairs(result.graph)
            assert lifted, "identity chain must carry ground truth"
            assert all(
                result.alignment.aligned(source, target)
                for source, target in lifted
            )

    def test_identity_chain_reshuffles_blank_names(self):
        generator = SyntheticGenerator(
            config=SyntheticConfig.identity(entities=12, versions=2, blank_density=0.5)
        )
        first_blanks = {node.name for node in generator.graph(0).blanks()}
        second_blanks = {node.name for node in generator.graph(1).blanks()}
        assert first_blanks and second_blanks
        assert first_blanks.isdisjoint(second_blanks)


class TestGroundTruth:
    def test_ground_truth_is_one_to_one_under_split_merge(self):
        generator = SyntheticGenerator(config=SCENARIOS["mutation_chain"])
        config = generator.config
        for source in range(config.versions):
            for target in range(source + 1, config.versions):
                truth = generator.ground_truth(source, target)
                targets = [t for _, t in truth.pairs()]
                assert len(targets) == len(set(targets))
                assert len(truth) > 0

    def test_entities_cover_both_kinds(self):
        generator = SyntheticGenerator(config=SCENARIOS["blank_heavy"])
        terms = generator.entities(0).values()
        kinds = {type(term).__name__ for term in terms}
        assert "URI" in kinds and "BlankNode" in kinds

    def test_combined_matches_graph_pair(self):
        generator = SyntheticGenerator(config=_small_config("chain", 5))
        union, truth = generator.combined(0, 1)
        assert union.num_nodes > 0
        assert len(truth.combined_pairs(union)) > 0


class TestStoreIntegration:
    def test_version_store_shared_family(self):
        from repro.experiments.store import GENERATOR_FAMILIES, VersionStore

        for shape in SHAPES:
            assert f"synthetic_{shape}" in GENERATOR_FAMILIES
        store = VersionStore.shared(
            "synthetic_scale_free", scale=1.0, seed=11, versions=3
        )
        assert store.versions == 3
        # Per-version artifacts and pairwise ground truth work unchanged.
        assert store.csr_block(0).num_nodes > 0
        assert len(store.ground_truth(0, 1)) > 0
        again = VersionStore.shared(
            "synthetic_scale_free", scale=1.0, seed=11, versions=3
        )
        assert again is store

    def test_family_generators_are_memoized(self):
        clear_shared_generators()
        family = SHAPE_FAMILIES["synthetic_cycle"]
        assert family.shared(1.0, 4, 3) is family.shared(1.0, 4, 3)
        # The plain call builds a private (unmemoized) generator.
        assert family(1.0, 4, 3) is not family.shared(1.0, 4, 3)
