"""Tests for the related-work baselines (repro.baselines)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.label_invention import (
    CyclicBlankError,
    invent_labels,
    label_invention_alignment,
)
from repro.baselines.similarity_flooding import similarity_flooding
from repro.core.deblank import deblank_partition
from repro.exceptions import ExperimentError
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.alignment import align
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


class TestLabelInvention:
    def test_equal_records_get_equal_labels(self, figure3_combined):
        invented = invent_labels(figure3_combined)
        g = figure3_combined
        assert invented[g.from_source(blank("b2"))] == invented[g.from_target(blank("b4"))]
        assert invented[g.from_source(blank("b2"))] == invented[g.from_source(blank("b3"))]
        assert invented[g.from_source(blank("b1"))] != invented[g.from_target(blank("b4"))]

    def test_alignment_matches_deblank_on_figure3(self, figure3_combined):
        pairs = label_invention_alignment(figure3_combined)
        interner = ColorInterner()
        deblank_pairs = set(
            align(figure3_combined, deblank_partition(figure3_combined, interner)).pairs()
        )
        assert pairs == deblank_pairs

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_deblank_on_acyclic_random_graphs(self, seed):
        rng = random.Random(seed)
        # Build acyclic-blank graphs: blanks only point at URIs/literals.
        def acyclic(prefix: str) -> RDFGraph:
            g = RDFGraph()
            uris = [uri(f"{prefix}{i}") for i in range(4)]
            for u in uris:
                g.term(u)
            for i in range(4):
                b = blank(f"{prefix}b{i}")
                for _ in range(rng.randint(1, 3)):
                    g.add(b, rng.choice(uris), lit(f"v{rng.randint(0, 3)}"))
                g.add(rng.choice(uris), rng.choice(uris), b)
            return g

        union = combine(acyclic("x"), acyclic("x"))
        pairs = label_invention_alignment(union)
        interner = ColorInterner()
        deblank_pairs = set(align(union, deblank_partition(union, interner)).pairs())
        assert pairs == deblank_pairs

    def test_cyclic_blanks_rejected_but_deblank_succeeds(self):
        """Our work generalizes [17]: cycles break invention, not deblanking."""
        g1 = RDFGraph()
        g1.add(blank("c1"), uri("p"), blank("c2"))
        g1.add(blank("c2"), uri("p"), blank("c1"))
        g2 = RDFGraph()
        g2.add(blank("d1"), uri("p"), blank("d2"))
        g2.add(blank("d2"), uri("p"), blank("d1"))
        union = combine(g1, g2)
        with pytest.raises(CyclicBlankError):
            label_invention_alignment(union)
        # Deblanking handles the same input.
        interner = ColorInterner()
        partition = deblank_partition(union, interner)
        assert partition[union.from_source(blank("c1"))] == partition[
            union.from_target(blank("d1"))
        ]

    def test_self_loop_rejected(self):
        g = RDFGraph()
        g.add(blank("s"), uri("p"), blank("s"))
        with pytest.raises(CyclicBlankError):
            invent_labels(g)


class TestSimilarityFlooding:
    def test_identical_graphs_match_perfectly(self, figure3_graphs):
        g1, __ = figure3_graphs
        union = combine(g1, g1.copy())
        result = similarity_flooding(union)
        matches = result.mutual_best_matches(threshold=0.0)
        # Every URI should be its own best match.
        for node in union.source_nodes:
            if union.is_uri_node(node):
                partner = (2, union.original(node))
                assert (node, partner) in matches

    def test_flooding_finds_renamed_uri(self, figure7_combined):
        """w/w2 share the structure under shared predicate labels r and q."""
        result = similarity_flooding(figure7_combined)
        g = figure7_combined
        matches = result.mutual_best_matches()
        assert (g.from_source(uri("w")), g.from_target(uri("w2"))) in matches

    def test_rounds_recorded(self, figure7_combined):
        result = similarity_flooding(figure7_combined, max_rounds=3)
        assert 1 <= result.rounds <= 3

    def test_pair_budget_guard(self, figure7_combined):
        with pytest.raises(ExperimentError):
            similarity_flooding(figure7_combined, max_pairs=3)

    def test_similarities_normalized(self, figure7_combined):
        result = similarity_flooding(figure7_combined)
        values = result.similarities.values()
        assert max(values) <= 1.0 + 1e-9
        assert all(value >= 0.0 for value in values)

    def test_best_matches_threshold(self, figure7_combined):
        result = similarity_flooding(figure7_combined)
        assert result.best_matches(threshold=2.0) == {}

    @pytest.mark.parametrize("seed", range(3))
    def test_insertion_order_independent(self, seed):
        """Flooding is a function of graph *content*, not load order.

        The same triples inserted forwards and backwards (as after a
        canonical N-Triples round trip) must give bit-identical similarity
        tables and identical matches — tie-breaking and float summation are
        pinned to a canonical node order, not hash/insertion order.
        """
        rng = random.Random(seed)
        triples = []
        uris = [uri(f"n{i}") for i in range(6)]
        preds = [uri(f"p{i}") for i in range(3)]
        for i in range(12):
            triples.append(
                (rng.choice(uris), rng.choice(preds),
                 rng.choice(uris + [lit(f"v{i % 4}")]))
            )

        def build(order):
            g = RDFGraph()
            for s, p, o in order:
                g.add(s, p, o)
            return g

        target = build(triples)
        forward = combine(build(triples), target)
        backward = combine(build(list(reversed(triples))), target)
        first = similarity_flooding(forward)
        second = similarity_flooding(backward)
        assert first.similarities == second.similarities
        assert first.rounds == second.rounds
        assert first.mutual_best_matches() == second.mutual_best_matches()
        assert first.best_matches() == second.best_matches()
