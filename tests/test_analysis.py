"""`reprolint` (repro.analysis): fixture corpus, baseline, suppressions.

Three layers, mirroring the ISSUE's acceptance criteria:

* a **fixture-snippet corpus** — for every shipped rule, a bad snippet
  the rule must flag and a good twin it must pass (the twin is the
  documented fix, so the corpus doubles as executable documentation);
* the **bookkeeping contracts** — suppression comments (line, file,
  ``all``), baseline save/load round-trip, the grandfather/new/stale
  split, and fingerprint stability under unrelated line drift;
* the **meta-test** — the real ``src/repro`` tree lints clean modulo
  the committed baseline, so the repo itself satisfies the invariants
  it checks for (``rdf-align lint`` exits 0 at HEAD).

The violation fixes the rules forced are pinned by behavior tests at
the bottom: atomic-write crash safety for every converted writer, and
hash-seed independence (byte-identical reports across PYTHONHASHSEED
values) for the ``sorted()`` upgrades in the overlap/report paths.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import run_analysis
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.framework import (
    Finding,
    parse_module,
    registered_rules,
)
from repro.exceptions import ReproError
from repro.io.atomic import atomic_open, atomic_write_bytes, atomic_write_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_snippet(tmp_path, source: str, *, rule: str, path: str = "src/repro/mod.py"):
    """Run one rule over one snippet written at a repo-relative *path*."""
    target = tmp_path / path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    result = run_analysis(os.fspath(tmp_path), [path], rules=[rule])
    return result


def findings_of(result):
    return [(f.rule, f.line) for f in result.findings]


# ----------------------------------------------------------------------
# Fixture corpus: one bad/good pair per rule
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    RULE = "unordered-iteration"

    def test_bad_set_algebra_for_loop(self, tmp_path):
        bad = (
            "def merge(a, b):\n"
            "    out = []\n"
            "    for key in a.keys() | b.keys():\n"
            "        out.append(key)\n"
            "    return out\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_bad_set_literal_and_comprehension(self, tmp_path):
        bad = (
            "def pairs(s, t):\n"
            "    for pair in {(s, t), (t, s)}:\n"
            "        yield pair\n"
            "    return [x for x in set(s)]\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 2

    def test_good_sorted_wrapper(self, tmp_path):
        good = (
            "def merge(a, b):\n"
            "    out = []\n"
            "    for key in sorted(a.keys() | b.keys()):\n"
            "        out.append(key)\n"
            "    return out\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []

    def test_good_order_insensitive_consumers(self, tmp_path):
        # set->set and reductions never leak iteration order.
        good = (
            "def f(s, t):\n"
            "    a = {x for x in s | t}\n"
            "    b = sorted(x for x in s | t)\n"
            "    c = max(x for x in s | t)\n"
            "    return a, b, c\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []


class TestUnseededRandom:
    RULE = "unseeded-random"

    def test_bad_global_draws(self, tmp_path):
        bad = (
            "import random\n"
            "def shuffle(items):\n"
            "    random.shuffle(items)\n"
            "    return random.randint(0, 10)\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 2

    def test_bad_from_import_and_numpy_global(self, tmp_path):
        bad = (
            "import numpy\n"
            "from random import shuffle\n"
            "def f(items):\n"
            "    shuffle(items)\n"
            "    return numpy.random.rand(3)\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 2  # the from-import + the numpy draw

    def test_good_seeded_streams(self, tmp_path):
        good = (
            "import random\n"
            "import numpy\n"
            "from random import Random\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    gen = numpy.random.default_rng(seed)\n"
            "    return rng.random(), gen.integers(0, 10)\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []


class TestWallClock:
    RULE = "wall-clock"

    def test_bad_wall_clock_reads(self, tmp_path):
        bad = (
            "import time\n"
            "import datetime\n"
            "def stamp():\n"
            "    return time.time(), datetime.datetime.now()\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 2

    def test_good_perf_counter(self, tmp_path):
        good = (
            "import time\n"
            "def measure(fn):\n"
            "    start = time.perf_counter()\n"
            "    fn()\n"
            "    return time.perf_counter() - start\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []


class TestPoolCallable:
    RULE = "pool-callable"

    def test_bad_lambda_to_pool(self, tmp_path):
        bad = (
            "from repro.experiments.parallel import run_store_cells\n"
            "def run(store, pairs):\n"
            "    return run_store_cells(store, lambda s, c, p: p, pairs)\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_bad_closure_partial_and_initargs(self, tmp_path):
        bad = (
            "import functools\n"
            "def run(pool, store, pairs, config):\n"
            "    def cell(s, c, p):\n"
            "        return config\n"
            "    pool.map(cell, pairs)\n"
            "    pool.map(functools.partial(cell, store), pairs)\n"
            "    pool.submit(cell, initargs=(lambda: None,))\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 4  # closure x2, partial, initargs lambda

    def test_good_module_level_cell(self, tmp_path):
        good = (
            "from repro.experiments.parallel import run_store_cells\n"
            "def edge_cell(store, config, pair):\n"
            "    return pair\n"
            "def run(store, pairs):\n"
            "    return run_store_cells(store, edge_cell, pairs)\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []


class TestShmLifecycle:
    RULE = "unguarded-shm"

    def test_bad_raw_allocation(self, tmp_path):
        bad = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def alloc(n):\n"
            "    return SharedMemory(create=True, size=n)\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_bad_unowned_registry(self, tmp_path):
        bad = (
            "from repro.experiments.shm import ShmRegistry\n"
            "def publish(csr):\n"
            "    registry = ShmRegistry()\n"
            "    return csr.to_shared(registry)\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_bad_inline_registry_to_publisher(self, tmp_path):
        bad = (
            "from repro.experiments.shm import ShmRegistry\n"
            "def publish(csr):\n"
            "    return csr.to_shared(ShmRegistry())\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_good_owned_registries(self, tmp_path):
        good = (
            "from repro.experiments.shm import ShmRegistry\n"
            "def with_context(csr):\n"
            "    with ShmRegistry() as registry:\n"
            "        return csr.to_shared(registry)\n"
            "def with_finally(csr):\n"
            "    registry = ShmRegistry()\n"
            "    try:\n"
            "        return csr.to_shared(registry)\n"
            "    finally:\n"
            "        registry.unlink()\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self._registry = ShmRegistry()\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []


class TestExceptionTaxonomy:
    def test_bad_bare_except(self, tmp_path):
        bad = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return None\n"
        )
        result = lint_snippet(tmp_path, bad, rule="bare-except")
        assert [rule for rule, _ in findings_of(result)] == ["bare-except"]

    def test_bad_broad_except(self, tmp_path):
        bad = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"
        )
        result = lint_snippet(tmp_path, bad, rule="broad-except")
        assert [rule for rule, _ in findings_of(result)] == ["broad-except"]

    def test_good_narrow_catch(self, tmp_path):
        # The store.py salvage idiom after the fix: a direct tuple catch.
        good = (
            "def salvage(fn, quarantined):\n"
            "    try:\n"
            "        return fn()\n"
            "    except (OSError, ValueError, KeyError) as error:\n"
            "        quarantined.append(repr(error))\n"
            "        return None\n"
        )
        assert lint_snippet(tmp_path, good, rule="broad-except").findings == []

    def test_good_cleanup_and_reraise(self, tmp_path):
        # `except BaseException: undo(); raise` swallows nothing.
        good = (
            "def f(undo):\n"
            "    try:\n"
            "        return 1\n"
            "    except BaseException:\n"
            "        undo()\n"
            "        raise\n"
        )
        assert lint_snippet(tmp_path, good, rule="broad-except").findings == []


class TestRawIO:
    RULE = "raw-io"
    PERSIST = "src/repro/experiments/persist.py"

    def test_bad_direct_open_in_backend(self, tmp_path):
        bad = (
            "def get_blob(path):\n"
            "    with open(path, 'rb') as handle:\n"
            "        return handle.read()\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE, path=self.PERSIST)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]

    def test_good_inside_retry_helper(self, tmp_path):
        good = (
            "def _read_file(path):\n"
            "    def read():\n"
            "        with open(path, 'rb') as handle:\n"
            "            return handle.read()\n"
            "    return read()\n"
        )
        result = lint_snippet(tmp_path, good, rule=self.RULE, path=self.PERSIST)
        assert result.findings == []

    def test_rule_scoped_to_persistence_modules(self, tmp_path):
        elsewhere = (
            "def load(path):\n"
            "    with open(path, 'rb') as handle:\n"
            "        return handle.read()\n"
        )
        result = lint_snippet(
            tmp_path, elsewhere, rule=self.RULE, path="src/repro/io/ntriples.py"
        )
        assert result.findings == []


class TestAtomicWrite:
    RULE = "non-atomic-write"

    def test_bad_write_modes(self, tmp_path):
        bad = (
            "def save(path, text):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(text)\n"
            "    with open(path, mode='wb') as handle:\n"
            "        handle.write(b'')\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE)
        assert len(result.findings) == 2

    def test_good_reads_and_helper(self, tmp_path):
        good = (
            "from repro.io.atomic import atomic_write_text\n"
            "def load(path):\n"
            "    with open(path, 'r', encoding='utf-8') as handle:\n"
            "        return handle.read()\n"
            "def save(path, text):\n"
            "    atomic_write_text(path, text)\n"
        )
        assert lint_snippet(tmp_path, good, rule=self.RULE).findings == []

    def test_blessed_module_exempt(self, tmp_path):
        blessed = (
            "def raw(path, data):\n"
            "    with open(path, 'wb') as handle:\n"
            "        handle.write(data)\n"
        )
        result = lint_snippet(
            tmp_path, blessed, rule=self.RULE, path="src/repro/io/atomic.py"
        )
        assert result.findings == []


class TestMissingAnnotations:
    RULE = "missing-annotations"
    STRICT = "src/repro/core/mod.py"

    def test_bad_unannotated_signature(self, tmp_path):
        bad = (
            "def refine(graph, epsilon=0.1):\n"
            "    return graph\n"
        )
        result = lint_snippet(tmp_path, bad, rule=self.RULE, path=self.STRICT)
        assert [rule for rule, _ in findings_of(result)] == [self.RULE]
        assert "refine" in result.findings[0].message

    def test_good_full_signature(self, tmp_path):
        good = (
            "class Engine:\n"
            "    def __init__(self, scale: float) -> None:\n"
            "        self.scale = scale\n"
            "    def refine(self, rounds: int, *args: int, **kw: object) -> int:\n"
            "        return rounds\n"
        )
        result = lint_snippet(tmp_path, good, rule=self.RULE, path=self.STRICT)
        assert result.findings == []

    def test_rule_scoped_to_strict_modules(self, tmp_path):
        loose = "def helper(x):\n    return x\n"
        result = lint_snippet(
            tmp_path, loose, rule=self.RULE, path="src/repro/experiments/mod.py"
        )
        assert result.findings == []


def test_every_registered_rule_has_a_corpus_entry():
    """The corpus above covers the full registry (new rules must add pairs)."""
    covered = {
        "unordered-iteration", "unseeded-random", "wall-clock",
        "pool-callable", "unguarded-shm", "bare-except", "broad-except",
        "raw-io", "non-atomic-write", "missing-annotations",
    }
    assert set(registered_rules()) == covered


def test_syntax_error_becomes_a_finding(tmp_path):
    result = lint_snippet(tmp_path, "def broken(:\n", rule="bare-except")
    assert [f.rule for f in result.findings] == ["syntax-error"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    BAD = (
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:{comment}\n"
        "        return None\n"
    )

    def run(self, tmp_path, comment: str):
        return lint_snippet(
            tmp_path, self.BAD.format(comment=comment), rule="broad-except"
        )

    def test_line_suppression(self, tmp_path):
        result = self.run(tmp_path, "  # reprolint: disable=broad-except")
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_suppression_all(self, tmp_path):
        result = self.run(tmp_path, "  # reprolint: disable=all")
        assert result.findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        result = self.run(tmp_path, "  # reprolint: disable=bare-except")
        assert len(result.findings) == 1

    def test_trailing_prose_needs_its_own_comment(self, tmp_path):
        # `disable=<rule>  # why` parses; `disable=<rule> why` does not.
        good = self.run(
            tmp_path, "  # reprolint: disable=broad-except  # oracle net"
        )
        assert good.findings == []

    def test_file_suppression(self, tmp_path):
        source = "# reprolint: disable-file=broad-except\n" + self.BAD.format(comment="")
        result = lint_snippet(tmp_path, source, rule="broad-except")
        assert result.findings == []
        assert result.suppressed == 1

    def test_comma_separated_rules(self, tmp_path):
        source = (
            "# reprolint: disable-file=bare-except, broad-except\n"
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return None\n"
        )
        target = tmp_path / "src/repro/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(source, encoding="utf-8")
        result = run_analysis(
            os.fspath(tmp_path), ["src/repro/mod.py"],
            rules=["bare-except", "broad-except"],
        )
        assert result.findings == []

    def test_parse_module_exposes_suppression_tables(self):
        info = parse_module(
            "m.py",
            "x = 1  # reprolint: disable=wall-clock\n"
            "# reprolint: disable-file=raw-io\n",
        )
        assert info.suppressed("wall-clock", 1)
        assert not info.suppressed("wall-clock", 2)
        assert info.suppressed("raw-io", 99)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def finding(self, snippet: str = "except Exception:", occurrence: int = 0):
        return Finding(
            rule="broad-except", path="src/repro/x.py", line=10, column=4,
            message="broad", snippet=snippet, occurrence=occurrence,
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self.finding(), self.finding(occurrence=1)]
        save_baseline(path, findings)
        loaded = load_baseline(path)
        assert set(loaded) == {f.fingerprint() for f in findings}
        # Deterministic bytes: re-saving yields identical content.
        first = path.read_bytes()
        save_baseline(path, findings)
        assert path.read_bytes() == first

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError):
            load_baseline(path)
        path.write_text(json.dumps({"schema": "wrong"}), encoding="utf-8")
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_apply_baseline_splits_new_grandfathered_stale(self, tmp_path):
        old = self.finding()
        gone = self.finding(snippet="except BaseException:")
        path = tmp_path / "baseline.json"
        save_baseline(path, [old, gone])
        fresh = self.finding(snippet="except Exception as error:")
        decision = apply_baseline([old, fresh], load_baseline(path))
        assert decision.baselined == [old]
        assert decision.new == [fresh]
        assert [entry["fingerprint"] for entry in decision.stale] == [
            gone.fingerprint()
        ]

    def test_fingerprint_survives_line_drift(self):
        before = self.finding()
        after = Finding(
            rule="broad-except", path="src/repro/x.py", line=45, column=4,
            message="broad", snippet="except Exception:", occurrence=0,
        )
        assert before.fingerprint() == after.fingerprint()
        # ...but a different source line is a different finding.
        other = self.finding(snippet="except Exception as error:")
        assert before.fingerprint() != other.fingerprint()


# ----------------------------------------------------------------------
# CLI (python -m repro.analysis and rdf-align lint)
# ----------------------------------------------------------------------
class TestCli:
    BAD = (
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:\n"
        "        return None\n"
    )
    GOOD = "def f() -> int:\n    return 1\n"

    def tree(self, tmp_path, source: str):
        target = tmp_path / "src/repro/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(source, encoding="utf-8")
        return os.fspath(tmp_path)

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = self.tree(tmp_path, self.BAD)
        assert lint_main(["--root", root]) == 1
        assert "broad-except" in capsys.readouterr().out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = self.tree(tmp_path, self.GOOD)
        assert lint_main(["--root", root]) == 0

    def test_update_baseline_then_clean_then_stale(self, tmp_path, capsys):
        root = self.tree(tmp_path, self.BAD)
        assert lint_main(["--root", root, "--update-baseline"]) == 0
        # Grandfathered: same tree now passes...
        assert lint_main(["--root", root]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out
        # ...but --no-baseline still sees the finding,
        assert lint_main(["--root", root, "--no-baseline"]) == 1
        capsys.readouterr()
        # ...and fixing the violation makes the baseline entry stale
        # (exit 1 until the baseline shrinks — the ratchet).
        (tmp_path / "src/repro/mod.py").write_text(self.GOOD, encoding="utf-8")
        assert lint_main(["--root", root]) == 1
        assert "stale baseline" in capsys.readouterr().out
        assert lint_main(["--root", root, "--update-baseline"]) == 0
        assert lint_main(["--root", root]) == 0

    def test_json_report_schema(self, tmp_path, capsys):
        root = self.tree(tmp_path, self.BAD)
        assert lint_main(["--root", root, "--json", "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/reprolint-report"
        assert payload["findings"][0]["rule"] == "broad-except"
        assert payload["findings"][0]["fingerprint"]

    def test_rules_subset_and_unknown_rule(self, tmp_path, capsys):
        root = self.tree(tmp_path, self.BAD)
        assert lint_main(["--root", root, "--rules", "bare-except"]) == 0
        with pytest.raises(SystemExit):
            lint_main(["--root", root, "--rules", "no-such-rule"])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in registered_rules():
            assert rule in out

    def test_rdf_align_lint_forwards(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        root = self.tree(tmp_path, self.BAD)
        assert cli_main(["lint", "--root", root, "--no-baseline"]) == 1
        assert "broad-except" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Meta-test: the repo satisfies its own invariants
# ----------------------------------------------------------------------
def test_real_tree_lints_clean_modulo_baseline():
    result = run_analysis(REPO_ROOT, ["src/repro"])
    baseline = load_baseline(os.path.join(REPO_ROOT, "reprolint-baseline.json"))
    decision = apply_baseline(result.findings, baseline)
    assert decision.new == [], "\n".join(f.render() for f in decision.new)
    assert decision.stale == [], (
        "baseline entries went stale — shrink reprolint-baseline.json "
        "with --update-baseline"
    )


def test_strict_prefixes_match_mypy_ratchet_table():
    """The local typing gate and the CI mypy table must not drift apart."""
    from repro.analysis.checkers.typing_gate import STRICT_PREFIXES

    pyproject = open(
        os.path.join(REPO_ROOT, "pyproject.toml"), encoding="utf-8"
    ).read()
    for prefix in STRICT_PREFIXES:
        module = (
            prefix.removeprefix("src/")
            .removesuffix(".py")
            .rstrip("/")
            .replace("/", ".")
        )
        assert module in pyproject or f"{module}.*" in pyproject, (
            f"strict prefix {prefix!r} has no mypy ratchet entry"
        )


# ----------------------------------------------------------------------
# Violation fixes, pinned by behavior (not just by the linter)
# ----------------------------------------------------------------------
class TestAtomicWriters:
    """The non-atomic-write fixes: every converted writer is crash-safe."""

    def test_atomic_write_text_and_bytes(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert list(tmp_path.iterdir()) == [path]  # no temp left behind

    def test_atomic_open_discards_on_exception(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "intact")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_text(encoding="utf-8") == "intact"
        assert list(tmp_path.iterdir()) == [path]

    def test_report_save_is_atomic(self, tmp_path, figure1_graphs):
        from repro.align import AlignConfig, Aligner

        v1, v2 = figure1_graphs
        report = Aligner(AlignConfig(method="hybrid")).report(v1, v2)
        path = tmp_path / "report.json"
        report.save(path)
        from repro.align import AlignmentReport

        assert AlignmentReport.load(path) == report
        assert list(tmp_path.iterdir()) == [path]

    def test_ntriples_dump_path_is_atomic(self, tmp_path, figure1_graphs):
        from repro.io import ntriples

        v1, _ = figure1_graphs
        path = tmp_path / "v1.nt"
        ntriples.dump_path(v1, path)
        assert set(ntriples.load_path(path).triples()) == set(v1.triples())
        assert list(tmp_path.iterdir()) == [path]

    def test_experiment_result_save_is_atomic(self, tmp_path):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult(
            figure="Figure 99", title="t", parameters={"scale": 1},
            rows=[{"x": 1}], rendered="body",
        )
        result.save(tmp_path)
        payload = json.loads((tmp_path / "figure99.json").read_text())
        assert payload["rows"] == [{"x": 1}]
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_benchlog_append_is_atomic(self, tmp_path):
        from repro.benchlog import append_bench_entry

        target = tmp_path / "bench.json"
        assert append_bench_entry(target, "n", 1.5)
        assert append_bench_entry(target, "m", 2.5)
        entries = json.loads(target.read_text())
        assert [entry["name"] for entry in entries] == ["n", "m"]
        assert list(tmp_path.iterdir()) == [target]


_HASH_SEED_SCRIPT = """
import sys
from repro.align import AlignConfig, Aligner
from repro.datasets.synthetic import SyntheticConfig, SyntheticGenerator

graphs = SyntheticGenerator(
    config=SyntheticConfig(shape="scale_free", scale=0.2, seed=13, versions=2)
).graphs()
report = Aligner(
    AlignConfig(method="overlap", theta=0.6, engine="reference")
).report(graphs[0], graphs[1])
sys.stdout.write(report.to_json())
"""


def test_overlap_report_bytes_independent_of_hash_seed(tmp_path):
    """The unordered-iteration fixes, end to end: the overlap method's
    float-accumulation order (and thus the report's bytes) must not
    depend on PYTHONHASHSEED.  Before the sorted() upgrades in
    dense_overlap/overlap_alignment this differed between seeds."""
    outputs = []
    for seed in ("0", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-c", _HASH_SEED_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert '"pairs"' in outputs[0]


def test_probe_overhead_narrow_catch_propagates_interrupt(monkeypatch):
    """The parallel-probe fix: `except Exception` became a narrow tuple,
    so a KeyboardInterrupt during the probe is no longer swallowed."""
    from repro.experiments import parallel

    monkeypatch.setattr(parallel, "_MEASURED_OVERHEAD", None)

    class InterruptingExecutor:
        def __init__(self, *args, **kwargs):
            raise KeyboardInterrupt

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", InterruptingExecutor)
    with pytest.raises(KeyboardInterrupt):
        parallel.pool_overhead()
