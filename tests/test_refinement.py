"""Unit tests for bisimulation partition refinement (repro.core.refinement)."""

from __future__ import annotations

import random

import pytest

from repro.core.refinement import (
    bisim_refine_fixpoint,
    bisim_refine_step,
    recolor_key,
    refinement_trace,
)
from repro.model import RDFGraph, blank, lit, uri
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


class TestRecolorKey:
    def test_key_contains_old_color_and_pairs(self, figure2_graph):
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        key = recolor_key(figure2_graph, part, uri("w"))
        tag, old_color, pairs = key
        assert tag == "recolor"
        assert old_color == part[uri("w")]
        assert len(pairs) == 2  # (p,b1) and (q,u)

    def test_key_canonical_order(self, figure2_graph):
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        key = recolor_key(figure2_graph, part, blank("b1"))
        assert list(key[2]) == sorted(key[2])

    def test_sink_key_has_empty_pairs(self, figure2_graph):
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        assert recolor_key(figure2_graph, part, lit("a"))[2] == ()


class TestOneStep:
    def test_step_is_finer(self, figure2_graph):
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        refined = bisim_refine_step(
            figure2_graph, part, list(figure2_graph.nodes()), interner
        )
        assert refined.finer_than(part)

    def test_step_respects_subset(self, figure2_graph):
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        refined = bisim_refine_step(figure2_graph, part, [blank("b1")], interner)
        # Only b1 changed color.
        changed = [n for n in part if part[n] != refined[n]]
        assert changed == [blank("b1")]

    def test_representation_independence(self, figure2_graph):
        """Equivalent inputs give equivalent outputs (Definition 3)."""
        interner = ColorInterner()
        part = label_partition(figure2_graph, interner)
        # A recolored but equivalent copy of the same partition.
        remap = {color: color + 1000 for color in set(part.as_dict().values())}
        recolored = part.with_colors({n: remap[part[n]] for n in part})
        assert part.equivalent_to(recolored)
        nodes = list(figure2_graph.nodes())
        first = bisim_refine_step(figure2_graph, part, nodes, interner)
        second = bisim_refine_step(figure2_graph, recolored, nodes, interner)
        assert first.equivalent_to(second)


class TestFixpoint:
    def test_figure2_bisimilar_blanks(self, figure2_graph):
        interner = ColorInterner()
        part = bisim_refine_fixpoint(
            figure2_graph, label_partition(figure2_graph, interner), None, interner
        )
        assert part.same_class(blank("b2"), blank("b3"))
        assert not part.same_class(blank("b1"), blank("b2"))

    def test_fixpoint_is_stable(self, figure2_graph):
        interner = ColorInterner()
        part = bisim_refine_fixpoint(
            figure2_graph, label_partition(figure2_graph, interner), None, interner
        )
        again = bisim_refine_step(
            figure2_graph, part, list(figure2_graph.nodes()), interner
        )
        assert again.equivalent_to(part)

    def test_fixpoint_is_finer_than_initial(self, figure2_graph):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        part = bisim_refine_fixpoint(figure2_graph, initial, None, interner)
        assert part.finer_than(initial)

    def test_max_rounds_cuts_iteration(self, figure2_graph):
        interner = ColorInterner()
        initial = label_partition(figure2_graph, interner)
        bounded = bisim_refine_fixpoint(
            figure2_graph, initial, None, interner, max_rounds=0
        )
        assert bounded.equivalent_to(initial)

    def test_random_graphs_terminate(self, rng):
        for _ in range(10):
            graph = random_rdf_graph(rng, num_edges=20)
            interner = ColorInterner()
            part = bisim_refine_fixpoint(
                graph, label_partition(graph, interner), None, interner
            )
            assert part.finer_than(label_partition(graph, ColorInterner()))


class TestTrace:
    def test_trace_matches_figure4_round_count(self, figure2_graph):
        """Figure 4: the fixpoint is reached after one productive round (λ1)."""
        interner = ColorInterner()
        trace = refinement_trace(
            figure2_graph, label_partition(figure2_graph, interner), None, interner
        )
        # λ0 (labels) then λ1; λ2 ≡ λ1 so the trace stops at λ1.
        assert len(trace) == 2

    def test_trace_is_monotone(self, figure2_graph, rng):
        graph = random_rdf_graph(rng, num_edges=25)
        interner = ColorInterner()
        trace = refinement_trace(graph, label_partition(graph, interner), None, interner)
        for coarser, finer in zip(trace, trace[1:]):
            assert finer.finer_than(coarser)
            assert finer.num_classes > coarser.num_classes
