"""Tests for the dense overlap pipeline (repro.similarity.dense_overlap).

Three layers are pinned here:

* the dense weight iterator's edge cases (sinks, empty subsets, the ε
  boundary, NumPy-vs-fallback bit equality, truncation signalling);
* the incremental :class:`AlignmentTracker` against brute-force side
  scans under random recoloring;
* full Algorithm 2 parity: ``engine="dense"`` must reproduce the
  reference engine's weighted partitions (colors up to renaming, weights
  within ε) and its exact :class:`OverlapTrace` round counts.
"""

from __future__ import annotations

import logging
import random

import pytest

from repro.api import align_versions
from repro.core.dense_weights import dense_weight_fixpoint
from repro.core.refinement import WeightFixpointStats
from repro.datasets.mutations import mutation_workload
from repro.model import RDFGraph, combine, lit, uri
from repro.model.csr import CSRGraph
from repro.model.union import CombinedGraph
from repro.partition.alignment import PartitionAlignment
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner
from repro.similarity.dense_overlap import AlignmentTracker
from repro.similarity.oplus import oplus_probabilistic
from repro.similarity.string_distance import character_set
from repro.similarity.weighted_refine import weighted_refine_fixpoint
from repro.partition.weighted import WeightedPartition

from .conftest import random_rdf_graph


# ----------------------------------------------------------------------
# The dense weight iterator
# ----------------------------------------------------------------------
class TestDenseWeightFixpoint:
    def simple_graph(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        g.add(uri("a"), uri("q"), lit("y"))
        return g, CSRGraph(g)

    def test_sink_keeps_weight(self):
        graph, csr = self.simple_graph()
        weights = [0.0] * csr.num_nodes
        sink = csr.dense_id(lit("x"))
        weights[sink] = 0.5
        stats = WeightFixpointStats()
        result = dense_weight_fixpoint(
            csr, weights, [sink], epsilon=1e-9, stats=stats
        )
        assert result[sink] == 0.5
        assert stats.converged and stats.rounds == 0  # sinks are dropped

    def test_empty_subset_is_noop(self):
        graph, csr = self.simple_graph()
        weights = [0.3] * csr.num_nodes
        stats = WeightFixpointStats()
        result = dense_weight_fixpoint(csr, weights, [], epsilon=1e-9, stats=stats)
        assert result == weights
        assert result is not weights  # fresh buffer, input untouched
        assert stats.converged
        assert stats.rounds == 0
        assert stats.final_delta == 0.0

    def test_average_over_out_pairs(self):
        graph, csr = self.simple_graph()
        weights = [0.0] * csr.num_nodes
        weights[csr.dense_id(lit("x"))] = 0.2
        weights[csr.dense_id(lit("y"))] = 0.4
        a = csr.dense_id(uri("a"))
        result = dense_weight_fixpoint(csr, weights, [a], epsilon=1e-9)
        # ((0⊕0.2) + (0⊕0.4)) / 2 = 0.3, stable after one productive sweep.
        assert result[a] == pytest.approx(0.3)

    def test_epsilon_boundary_is_strict(self):
        """The sweep whose delta equals ε exactly does not stop the loop."""
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        csr = CSRGraph(g)
        weights = [0.0] * csr.num_nodes
        weights[csr.dense_id(uri("p"))] = 0.3
        weights[csr.dense_id(lit("x"))] = 0.2
        a = csr.dense_id(uri("a"))
        # Sweep 1 moves a from 0 to 0.5 (delta = 0.5), sweep 2 moves nothing.
        strict = WeightFixpointStats()
        dense_weight_fixpoint(csr, list(weights), [a], epsilon=0.5, stats=strict)
        assert strict.rounds == 2 and strict.converged
        loose = WeightFixpointStats()
        dense_weight_fixpoint(
            csr, list(weights), [a], epsilon=0.5000001, stats=loose
        )
        assert loose.rounds == 1 and loose.converged
        assert loose.final_delta == pytest.approx(0.5)

    def test_truncation_warns_and_reports(self, caplog):
        """A max_rounds cutoff is loud: warning + converged=False."""
        g = RDFGraph()
        g.add(uri("a"), uri("p"), uri("b"))
        g.add(uri("b"), uri("p"), uri("a"))
        g.add(uri("b"), uri("q"), lit("s"))
        csr = CSRGraph(g)
        weights = [0.0] * csr.num_nodes
        weights[csr.dense_id(lit("s"))] = 1.0
        subset = [csr.dense_id(uri("a")), csr.dense_id(uri("b"))]
        stats = WeightFixpointStats()
        with caplog.at_level(logging.WARNING, logger="repro.core.refinement"):
            dense_weight_fixpoint(
                csr, weights, subset, epsilon=1e-12, max_rounds=3, stats=stats
            )
        assert not stats.converged
        assert stats.rounds == 3
        assert stats.final_delta >= 1e-12
        assert any(
            "weight iteration" in record.message for record in caplog.records
        )

    def test_numpy_and_fallback_agree_exactly(self, monkeypatch):
        """The pure-Python loop replays the NumPy path bit-for-bit."""
        import repro.core.dense_weights as dense_weights

        rng = random.Random(99)
        graph = random_rdf_graph(
            rng, num_uris=12, num_literals=8, num_blanks=8, num_edges=60
        )
        csr = CSRGraph(graph)
        weights = [rng.random() for _ in range(csr.num_nodes)]
        subset = sorted(
            rng.sample(range(csr.num_nodes), csr.num_nodes // 2)
        )

        def run():
            return dense_weight_fixpoint(
                csr, list(weights), subset, epsilon=1e-9
            )

        if dense_weights._np is None:
            pytest.skip("NumPy unavailable; only the fallback path exists")
        vectorized = run()
        monkeypatch.setattr(dense_weights, "_np", None)
        portable = run()
        assert portable == vectorized  # exact float equality, not approx

    def test_generic_operator_matches_reference(self):
        """Non-default ⊕ operators take the fold path; pin it against the
        reference Jacobi iteration on the same graph."""
        rng = random.Random(7)
        graph = random_rdf_graph(rng, num_edges=30)
        csr = CSRGraph(graph)
        interner = ColorInterner()
        partition = Partition(
            {node: interner.node_color(node) for node in graph.nodes()}
        )
        weights = {node: 0.0 for node in graph.nodes()}
        subset = sorted((n for n in graph.nodes() if graph.out(n)), key=repr)
        reference = weighted_refine_fixpoint(
            graph,
            WeightedPartition(partition, weights),
            subset,
            interner,
            operator=oplus_probabilistic,
        )
        dense = dense_weight_fixpoint(
            csr,
            [0.0] * csr.num_nodes,
            sorted(csr.dense_ids(subset)),
            epsilon=1e-9,
            operator=oplus_probabilistic,
        )
        for node in graph.nodes():
            assert dense[csr.dense_id(node)] == pytest.approx(
                reference.weight(node), abs=1e-7
            )


# ----------------------------------------------------------------------
# The incremental alignment tracker
# ----------------------------------------------------------------------
class TestAlignmentTracker:
    @staticmethod
    def brute_force(colors, is_source):
        source_colors = {c for i, c in enumerate(colors) if is_source[i]}
        target_colors = {c for i, c in enumerate(colors) if not is_source[i]}
        unaligned_source = {
            i for i, c in enumerate(colors)
            if is_source[i] and c not in target_colors
        }
        unaligned_target = {
            i for i, c in enumerate(colors)
            if not is_source[i] and c not in source_colors
        }
        return unaligned_source, unaligned_target

    @pytest.mark.parametrize("seed", [0, 5, 18])
    def test_matches_brute_force_under_random_recoloring(self, seed):
        rng = random.Random(seed)
        size = 60
        colors = [rng.randrange(8) for _ in range(size)]
        is_source = [rng.random() < 0.5 for _ in range(size)]
        tracker = AlignmentTracker(colors, is_source)
        expected = self.brute_force(colors, is_source)
        assert (tracker.unaligned_source, tracker.unaligned_target) == expected
        for _ in range(300):
            node = rng.randrange(size)
            new_color = rng.randrange(12)
            colors[node] = new_color
            tracker.recolor(node, new_color)
            expected = self.brute_force(colors, is_source)
            assert tracker.unaligned_source == expected[0]
            assert tracker.unaligned_target == expected[1]

    def test_matches_partition_alignment_on_real_graph(self):
        source, target = mutation_workload(4)
        union = combine(source, target)
        result = align_versions(source, target, method="hybrid")
        csr = CSRGraph(result.graph)
        colors = csr.gather_colors(result.partition.as_dict())
        is_source = [node in result.graph.source_nodes for node in csr.nodes]
        tracker = AlignmentTracker(colors, is_source)
        alignment = PartitionAlignment(result.graph, result.partition)
        assert {csr.nodes[i] for i in tracker.unaligned_source} == set(
            alignment.unaligned_source()
        )
        assert {csr.nodes[i] for i in tracker.unaligned_target} == set(
            alignment.unaligned_target()
        )


# ----------------------------------------------------------------------
# Cached side scans (PartitionAlignment is immutable after __init__)
# ----------------------------------------------------------------------
class TestAlignmentCaching:
    def test_side_scans_cached(self, figure7_combined):
        from repro.core.hybrid import hybrid_partition

        alignment = PartitionAlignment(
            figure7_combined, hybrid_partition(figure7_combined)
        )
        first = alignment.unaligned_source()
        assert alignment.unaligned_source() is first  # computed once
        assert alignment.unaligned_target() is alignment.unaligned_target()
        assert alignment.unaligned() == first | alignment.unaligned_target()


# ----------------------------------------------------------------------
# Full Algorithm 2 parity across engines
# ----------------------------------------------------------------------
class TestDenseOverlapParity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_mutation_workloads(self, seed):
        source, target = mutation_workload(seed)
        reference = align_versions(source, target, method="overlap")
        dense = align_versions(source, target, method="overlap", engine="dense")
        assert dense.partition.equivalent_to(reference.partition)
        assert dense.matched_entities() == reference.matched_entities()
        assert dense.unaligned_counts() == reference.unaligned_counts()
        # Identical round traces, not merely an equivalent endpoint.
        assert dense.trace.literal_matches == reference.trace.literal_matches
        assert dense.trace.rounds == reference.trace.rounds
        assert (
            dense.trace.stopped_by_round_limit
            == reference.trace.stopped_by_round_limit
        )
        # Weights within ε (engines sum contributions in different orders).
        for node in reference.partition:
            assert dense.weighted.weight(node) == pytest.approx(
                reference.weighted.weight(node), abs=1e-6
            )

    def test_figure7_worked_example(self, figure7_combined):
        """The paper's Figure 8 weighted partition survives the dense path."""
        from repro.similarity.overlap_alignment import (
            OverlapTrace,
            overlap_partition,
        )

        reference_trace, dense_trace = OverlapTrace(), OverlapTrace()
        reference = overlap_partition(
            figure7_combined, splitter=character_set, trace=reference_trace
        )
        dense = overlap_partition(
            figure7_combined,
            splitter=character_set,
            trace=dense_trace,
            engine="dense",
        )
        assert dense.partition.equivalent_to(reference.partition)
        assert dense_trace.literal_matches == reference_trace.literal_matches
        assert dense_trace.rounds == reference_trace.rounds
        graph = figure7_combined
        assert dense.distance(
            graph.from_source(uri("w")), graph.from_target(uri("w2"))
        ) == pytest.approx(1 / 4)
        assert dense.distance(
            graph.from_source(uri("v")), graph.from_target(uri("v2"))
        ) == pytest.approx(1 / 6)

    def test_both_engines_record_weight_stats(self):
        source, target = mutation_workload(8)
        for engine in ("reference", "dense"):
            result = align_versions(
                source, target, method="overlap", engine=engine
            )
            trace = result.trace
            assert len(trace.weight_stats) == trace.total_rounds
            assert all(stats.converged for stats in trace.weight_stats)
            assert trace.weight_truncations == 0
            assert all(stats.engine == engine for stats in trace.weight_stats)

    def test_pure_python_pipeline_matches_reference(self, monkeypatch):
        """The dense loop without NumPy is a real shipping path too."""
        import repro.core.dense as dense_module
        import repro.core.dense_weights as dense_weights_module
        import repro.similarity.dense_overlap as dense_overlap_module

        monkeypatch.setattr(dense_module, "_np", None)
        monkeypatch.setattr(dense_weights_module, "_np", None)
        monkeypatch.setattr(dense_overlap_module, "_np", None)
        source, target = mutation_workload(11)
        reference = align_versions(source, target, method="overlap")
        dense = align_versions(source, target, method="overlap", engine="dense")
        assert dense.partition.equivalent_to(reference.partition)
        assert dense.trace.rounds == reference.trace.rounds

    def test_csr_rejected_for_reference_engine(self):
        from repro.core.hybrid import hybrid_partition
        from repro.exceptions import ExperimentError
        from repro.similarity.overlap_alignment import overlap_partition

        source, target = mutation_workload(2)
        union = combine(source, target)
        csr = CSRGraph(union)
        with pytest.raises(ExperimentError):
            overlap_partition(union, csr=csr)  # engine defaults to reference
        with pytest.raises(ExperimentError):
            hybrid_partition(union, csr=csr)

    def test_shared_csr_snapshot_accepted(self):
        source, target = mutation_workload(2)
        union = combine(source, target)
        csr = CSRGraph(union)
        interner = ColorInterner()
        from repro.core.hybrid import hybrid_partition
        from repro.similarity.overlap_alignment import overlap_partition

        base = hybrid_partition(union, interner, engine="dense", csr=csr)
        weighted = overlap_partition(
            union, interner=interner, base=base, engine="dense", csr=csr
        )
        reference = overlap_partition(CombinedGraph(source, target))
        assert weighted.partition.equivalent_to(reference.partition)
