"""Tests for the Trivial/Deblank/Hybrid alignment methods (paper Section 3).

Pins the paper's Figure 3 walkthrough and the alignment hierarchy
``Align(λTrivial) ⊆ Align(λDeblank) ⊆ Align(λHybrid)``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.deblank import deblank_partition
from repro.core.hybrid import blanked_partition, hybrid_partition
from repro.core.trivial import trivial_partition
from repro.model import blank, combine, lit, uri
from repro.partition.alignment import align
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


class TestTrivial:
    def test_aligns_shared_labels_only(self, figure3_combined):
        part = trivial_partition(figure3_combined, ColorInterner())
        alignment = align(figure3_combined, part)
        g = figure3_combined
        assert alignment.aligned(g.from_source(uri("w")), g.from_target(uri("w")))
        assert alignment.aligned(g.from_source(lit("a")), g.from_target(lit("a")))
        # Blanks are never trivially aligned.
        assert not alignment.partners(g.from_source(blank("b2")))

    def test_renamed_uri_unaligned(self, figure3_combined):
        part = trivial_partition(figure3_combined, ColorInterner())
        alignment = align(figure3_combined, part)
        g = figure3_combined
        assert not alignment.partners(g.from_source(uri("u")))
        assert not alignment.partners(g.from_target(uri("v")))


class TestDeblank:
    def test_figure3_blank_alignments(self, figure3_combined):
        g = figure3_combined
        part = deblank_partition(g, ColorInterner())
        alignment = align(g, part)
        b4 = g.from_target(blank("b4"))
        assert alignment.partners(g.from_source(blank("b2"))) == {b4}
        assert alignment.partners(g.from_source(blank("b3"))) == {b4}
        # b1 points to u, b5 points to v: contents differ, not aligned.
        assert not alignment.partners(g.from_source(blank("b1")))

    def test_redundant_blanks_share_class(self, figure3_combined):
        part = deblank_partition(figure3_combined, ColorInterner())
        g = figure3_combined
        assert part.same_class(g.from_source(blank("b2")), g.from_source(blank("b3")))

    def test_self_alignment_is_complete(self, figure3_graphs):
        """Aligning a version with itself must align every blank node."""
        g1, __ = figure3_graphs
        union = combine(g1, g1.copy())
        part = deblank_partition(union, ColorInterner())
        alignment = align(union, part)
        assert not alignment.unaligned()


class TestHybrid:
    def test_figure3_hybrid_alignments(self, figure3_combined):
        g = figure3_combined
        interner = ColorInterner()
        part = hybrid_partition(g, interner)
        alignment = align(g, part)
        assert alignment.aligned(g.from_source(uri("u")), g.from_target(uri("v")))
        assert alignment.aligned(g.from_source(blank("b1")), g.from_target(blank("b5")))

    def test_literals_never_blanked(self, figure3_combined):
        g = figure3_combined
        interner = ColorInterner()
        base = deblank_partition(g, interner)
        part = hybrid_partition(g, interner, base=base)
        # Literal "b" exists on both sides, trivially aligned; its color is
        # its label color in both base and hybrid.
        node = g.from_source(lit("b"))
        assert part[node] == base[node]

    def test_trivial_base_gives_same_result(self, figure3_combined):
        """Paper: using λTrivial instead of λDeblank yields the same result."""
        g = figure3_combined
        interner1 = ColorInterner()
        from_deblank = hybrid_partition(g, interner1)
        interner2 = ColorInterner()
        from_trivial = hybrid_partition(
            g, interner2, base=trivial_partition(g, interner2)
        )
        pairs_deblank = set(align(g, from_deblank).pairs())
        pairs_trivial = set(align(g, from_trivial).pairs())
        assert pairs_deblank == pairs_trivial

    def test_blanked_partition_helper(self, figure3_combined):
        interner = ColorInterner()
        part = label_partition(figure3_combined, interner)
        nodes = [figure3_combined.from_source(uri("u"))]
        blanked = blanked_partition(part, nodes, interner)
        assert blanked[nodes[0]] == interner.blank_color()


class TestHierarchy:
    """Align(λTrivial) ⊆ Align(λDeblank) ⊆ Align(λHybrid) — paper §3.4."""

    def _pairs(self, graph, partition):
        return set(align(graph, partition).pairs())

    def test_hierarchy_on_figure3(self, figure3_combined):
        self._check(figure3_combined)

    def test_hierarchy_on_figure1(self, figure1_graphs):
        self._check(combine(*figure1_graphs))

    @pytest.mark.parametrize("seed", range(6))
    def test_hierarchy_on_random_pairs(self, seed):
        rng = random.Random(seed)
        g1 = random_rdf_graph(rng, num_edges=18, uri_prefix="x")
        g2 = random_rdf_graph(rng, num_edges=18, uri_prefix="x")
        self._check(combine(g1, g2))

    def _check(self, union):
        interner = ColorInterner()
        trivial = self._pairs(union, trivial_partition(union, interner))
        deblank_part = deblank_partition(union, interner)
        deblank = self._pairs(union, deblank_part)
        hybrid = self._pairs(
            union, hybrid_partition(union, interner, base=deblank_part)
        )
        assert trivial <= deblank <= hybrid
