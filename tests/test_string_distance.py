"""Unit and property tests for string distances (repro.similarity.string_distance)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.string_distance import (
    bounded_normalized_levenshtein,
    character_set,
    levenshtein,
    levenshtein_banded,
    normalized_levenshtein,
    qgrams,
    split_words,
)

short_text = st.text(alphabet="abcde ", max_size=14)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "first,second,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("abc", "ac", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("Sławek", "Sławomir", 4),
        ],
    )
    def test_known_distances(self, first, second, expected):
        assert levenshtein(first, second) == expected

    @given(first=short_text, second=short_text)
    def test_symmetry(self, first, second):
        assert levenshtein(first, second) == levenshtein(second, first)

    @given(text=short_text)
    def test_identity(self, text):
        assert levenshtein(text, text) == 0

    @given(first=short_text, second=short_text, third=short_text)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, first, second, third):
        assert levenshtein(first, third) <= levenshtein(first, second) + levenshtein(
            second, third
        )

    @given(first=short_text, second=short_text)
    def test_length_difference_lower_bound(self, first, second):
        assert levenshtein(first, second) >= abs(len(first) - len(second))


class TestBanded:
    @given(first=short_text, second=short_text, cutoff=st.integers(0, 12))
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_plain_within_cutoff(self, first, second, cutoff):
        exact = levenshtein(first, second)
        banded = levenshtein_banded(first, second, cutoff)
        if exact <= cutoff:
            assert banded == exact
        else:
            assert banded == cutoff + 1

    def test_negative_cutoff(self):
        assert levenshtein_banded("a", "b", -1) == 1
        assert levenshtein_banded("a", "a", -1) == 0


class TestNormalized:
    def test_paper_example(self):
        """Example 5: "abc" vs "ac" differ by one char over length 3."""
        assert normalized_levenshtein("abc", "ac") == pytest.approx(1 / 3)

    def test_paper_example_a_ac(self):
        """The raw normalized distance of "a" vs "ac" is 1/2 (Example 5)."""
        assert normalized_levenshtein("a", "ac") == pytest.approx(1 / 2)

    def test_empty_strings(self):
        assert normalized_levenshtein("", "") == 0.0
        assert normalized_levenshtein("", "ab") == 1.0

    @given(first=short_text, second=short_text)
    def test_in_unit_interval(self, first, second):
        assert 0.0 <= normalized_levenshtein(first, second) <= 1.0

    @given(first=short_text, second=short_text, theta=st.floats(0.05, 0.95))
    @settings(max_examples=80, deadline=None)
    def test_bounded_variant_consistent(self, first, second, theta):
        exact = normalized_levenshtein(first, second)
        bounded = bounded_normalized_levenshtein(first, second, theta)
        if exact <= theta:
            assert bounded == pytest.approx(exact)
        else:
            assert bounded == 1.0


class TestCharacterizers:
    def test_split_words(self):
        assert split_words("University of Edinburgh") == {
            "university",
            "of",
            "edinburgh",
        }

    def test_split_words_strips_punctuation(self):
        assert split_words("a-b, c_d!") == {"a", "b", "c", "d"}

    def test_split_words_empty(self):
        assert split_words("") == frozenset()
        assert split_words("!!!") == frozenset()

    def test_character_set(self):
        assert character_set("Abc a") == {"a", "b", "c"}

    def test_qgrams(self):
        assert qgrams("abc") == {"#a", "ab", "bc", "c#"}
        assert qgrams("") == {"##"}
        assert qgrams("a") == {"#a", "a#"}

    def test_qgram_width(self):
        grams = qgrams("abcd", q=3)
        assert "#ab" in grams and "cd#" in grams
