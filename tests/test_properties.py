"""Property-based tests of the core invariants on random evolving graphs.

Hypothesis generates random RDF graphs and random curation-style evolutions
of them; the properties below must hold for *every* such input:

1.  ``Align(λTrivial) ⊆ Align(λDeblank) ⊆ Align(λHybrid) ⊆ Align(λOverlap)``,
2.  partition alignments always have the crossover property,
3.  refinement is monotone and its fixpoint is stable,
4.  incremental ≡ batch refinement,
5.  deblank self-alignment is complete,
6.  ``Propagate((λTrivial, 0)) ≡ (λHybrid, 0)``,
7.  Theorem 1 (⊕ reading): same overlap cluster ⇒ ``σEdit ≤ ω ⊕ ω``,
8.  bidirectional refinement is finer than outbound refinement,
9.  archives reconstruct every version exactly,
10. σEdit is bounded, 0 on hybrid-aligned pairs and symmetric in the
    label-swap sense on literals.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive import VersionArchive
from repro.core.bisimulation import bisimulation_partition
from repro.core.context import bidirectional_bisimulation_partition
from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.incremental import incremental_refine_fixpoint
from repro.core.refinement import bisim_refine_fixpoint, bisim_refine_step
from repro.core.trivial import trivial_partition
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.model.graph import isomorphic_by_labels
from repro.oplus import oplus
from repro.partition.alignment import align
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner
from repro.partition.weighted import zero_weighted
from repro.similarity.edit_distance import EditDistance
from repro.similarity.overlap_alignment import overlap_partition
from repro.similarity.string_distance import character_set
from repro.similarity.weighted_refine import propagate

# ---------------------------------------------------------------------------
# Strategies: random RDF graphs and random evolutions
# ---------------------------------------------------------------------------

_URIS = [f"n{i}" for i in range(6)]
_PREDICATES = ["p", "q", "r"]
_VALUES = ["alpha", "beta", "gamma", "delta"]
_BLANKS = [f"b{i}" for i in range(4)]


@st.composite
def rdf_graphs(draw) -> RDFGraph:
    """A small random RDF graph with URIs, literals and blanks."""
    graph = RDFGraph()
    edge_count = draw(st.integers(3, 14))
    for _ in range(edge_count):
        subject_kind = draw(st.sampled_from(["uri", "blank"]))
        subject = (
            uri(draw(st.sampled_from(_URIS)))
            if subject_kind == "uri"
            else blank(draw(st.sampled_from(_BLANKS)))
        )
        predicate = uri(draw(st.sampled_from(_PREDICATES)))
        object_kind = draw(st.sampled_from(["uri", "blank", "literal", "literal"]))
        if object_kind == "uri":
            obj = uri(draw(st.sampled_from(_URIS)))
        elif object_kind == "blank":
            obj = blank(draw(st.sampled_from(_BLANKS)))
        else:
            obj = lit(draw(st.sampled_from(_VALUES)))
        graph.add(subject, predicate, obj)
    return graph


@st.composite
def evolving_pairs(draw) -> tuple[RDFGraph, RDFGraph]:
    """A graph and a curation-style evolution of it.

    The second version drops some triples, renames blank identifiers (they
    are not persistent!) and may rename one URI — the paper's change model.
    """
    source = draw(rdf_graphs())
    triples = sorted(source.triples(), key=repr)
    keep_mask = draw(
        st.lists(st.booleans(), min_size=len(triples), max_size=len(triples))
    )
    renamed = draw(st.sampled_from([None] + _URIS))

    def rename(term):
        if isinstance(term, type(blank("x"))):
            return blank("v2-" + term.name)
        if renamed is not None and term == uri(renamed):
            return uri(renamed + "-renamed")
        return term

    target = RDFGraph()
    kept = 0
    for keep, (s, p, o) in zip(keep_mask, triples):
        if keep:
            renamed_p = rename(p)
            if not isinstance(renamed_p, type(uri("x"))):
                renamed_p = p
            target.add(rename(s), renamed_p, rename(o))
            kept += 1
    if kept == 0 and triples:
        s, p, o = triples[0]
        target.add(rename(s), p, rename(o))
    return source, target


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

COMMON = dict(max_examples=30, deadline=None)


@settings(**COMMON)
@given(pair=evolving_pairs())
def test_alignment_hierarchy(pair):
    union = combine(*pair)
    interner = ColorInterner()
    trivial = set(align(union, trivial_partition(union, interner)).pairs())
    deblank_part = deblank_partition(union, interner)
    deblank = set(align(union, deblank_part).pairs())
    hybrid_part = hybrid_partition(union, interner, base=deblank_part)
    hybrid = set(align(union, hybrid_part).pairs())
    overlap = set(
        align(
            union,
            overlap_partition(
                union, interner=interner, base=hybrid_part, splitter=character_set
            ).partition,
        ).pairs()
    )
    assert trivial <= deblank <= hybrid <= overlap


@settings(**COMMON)
@given(pair=evolving_pairs())
def test_crossover_property_everywhere(pair):
    union = combine(*pair)
    interner = ColorInterner()
    for partition in (
        trivial_partition(union, interner),
        deblank_partition(union, interner),
        hybrid_partition(union, interner),
    ):
        assert align(union, partition).has_crossover_property()


@settings(**COMMON)
@given(graph=rdf_graphs())
def test_refinement_monotone_and_stable(graph):
    interner = ColorInterner()
    initial = label_partition(graph, interner)
    fixpoint = bisim_refine_fixpoint(graph, initial, None, interner)
    assert fixpoint.finer_than(initial)
    again = bisim_refine_step(graph, fixpoint, list(graph.nodes()), interner)
    assert again.equivalent_to(fixpoint)


@settings(**COMMON)
@given(graph=rdf_graphs())
def test_incremental_equals_batch(graph):
    interner_a = ColorInterner()
    batch = bisim_refine_fixpoint(
        graph, label_partition(graph, interner_a), None, interner_a
    )
    interner_b = ColorInterner()
    incremental = incremental_refine_fixpoint(
        graph, label_partition(graph, interner_b), None, interner_b
    )
    assert incremental.equivalent_to(batch)


@settings(**COMMON)
@given(graph=rdf_graphs())
def test_deblank_self_alignment_complete(graph):
    union = combine(graph, graph.copy())
    partition = deblank_partition(union, ColorInterner())
    assert not align(union, partition).unaligned()


@settings(**COMMON)
@given(pair=evolving_pairs())
def test_propagate_deblank_equals_hybrid(pair):
    """``Propagate((λDeblank, 0)) = (λHybrid, 0)`` — exact by construction.

    The paper also claims the identity for the λTrivial base, but that
    version has a counterexample: an unaligned URI whose unfolding
    coincides with a deblank-aligned blank's color joins that cluster only
    transiently under the hybrid refinement, while the trivial base keeps
    all such co-blanked nodes together (see DESIGN.md §5.10).
    """
    from repro.core.deblank import deblank_partition

    union = combine(*pair)
    interner = ColorInterner()
    deblank = deblank_partition(union, interner)
    propagated = propagate(union, zero_weighted(deblank), interner)
    hybrid_interner = ColorInterner()
    hybrid = hybrid_partition(union, hybrid_interner)
    assert set(align(union, propagated.partition).pairs()) == set(
        align(union, hybrid).pairs()
    )
    assert all(weight == 0.0 for weight in propagated.weights().values())


@settings(max_examples=15, deadline=None)
@given(pair=evolving_pairs(), theta=st.sampled_from([0.45, 0.65, 0.85]))
def test_theorem_1(pair, theta):
    """Same overlap cluster ⇒ σEdit(n, m) ≤ ω(n) ⊕ ω(m)."""
    union = combine(*pair)
    interner = ColorInterner()
    base = hybrid_partition(union, interner)
    weighted = overlap_partition(
        union, theta=theta, interner=interner, base=base, splitter=character_set
    )
    edit = EditDistance(union, base=base, interner=interner)
    for source, target in align(union, weighted.partition).pairs():
        bound = oplus(weighted.weight(source), weighted.weight(target))
        assert edit.distance(source, target) <= bound + 1e-9


@settings(**COMMON)
@given(graph=rdf_graphs())
def test_bidirectional_finer_than_outbound(graph):
    outbound = bisimulation_partition(graph)
    bidirectional = bidirectional_bisimulation_partition(graph)
    assert bidirectional.finer_than(outbound)


@settings(max_examples=15, deadline=None)
@given(versions=st.lists(rdf_graphs(), min_size=1, max_size=4))
def test_archive_round_trip(versions):
    archive = VersionArchive.build(versions)
    for index, original in enumerate(versions):
        assert isomorphic_by_labels(original, archive.reconstruct(index + 1))


@settings(max_examples=15, deadline=None)
@given(pair=evolving_pairs())
def test_sigma_edit_bounds(pair):
    union = combine(*pair)
    interner = ColorInterner()
    base = hybrid_partition(union, interner)
    edit = EditDistance(union, base=base, interner=interner, max_rounds=30)
    alignment = align(union, base)
    for source in sorted(union.source_nodes, key=repr)[:6]:
        for target in sorted(union.target_nodes, key=repr)[:6]:
            value = edit.distance(source, target)
            assert 0.0 <= value <= 1.0
            if alignment.aligned(source, target):
                assert value == 0.0
