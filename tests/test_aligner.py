"""The Aligner session API: parity with the legacy facade, reports, caching.

The parity suite is the acceptance gate of the api_redesign: for every
method × engine, ``Aligner`` + registry must produce *byte-identical*
:class:`~repro.align.report.AlignmentReport` JSON to the legacy
``align_versions``/``align_many`` paths.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import align_many, align_versions
from repro.align import (
    AlignConfig,
    Aligner,
    AlignmentReport,
    method_order,
)
from repro.align.report import SCHEMA, SCHEMA_VERSION
from repro.exceptions import ReportError
from repro.io import ntriples
from repro.model import blank, lit, uri


def _legacy(function, *args, **kwargs):
    """Call the deprecated facade without polluting the warning state."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return function(*args, **kwargs)


@pytest.fixture(scope="module")
def gtopdb_graphs():
    from repro.datasets.gtopdb import GtoPdbGenerator

    return GtoPdbGenerator(scale=0.12, seed=2016, versions=4).graphs()


class TestParityWithLegacyFacade:
    @pytest.mark.parametrize("method", method_order())
    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_reports_byte_identical_to_align_versions(
        self, gtopdb_graphs, method, engine
    ):
        config = AlignConfig(method=method, engine=engine)
        session = Aligner(config).align(gtopdb_graphs[0], gtopdb_graphs[1])
        legacy = _legacy(
            align_versions,
            gtopdb_graphs[0],
            gtopdb_graphs[1],
            method=method,
            engine=engine,
        )
        session_json = session.report(config).to_json()
        legacy_json = AlignmentReport.from_result(legacy, config).to_json()
        assert session_json == legacy_json

    @pytest.mark.parametrize("method", method_order())
    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_reports_byte_identical_to_align_many(
        self, gtopdb_graphs, method, engine
    ):
        config = AlignConfig(method=method, engine=engine)
        batch = Aligner(config).align_many(gtopdb_graphs[0], gtopdb_graphs[1:])
        legacy = _legacy(
            align_many,
            gtopdb_graphs[0],
            gtopdb_graphs[1:],
            method=method,
            engine=engine,
        )
        assert len(batch) == len(legacy) == 3
        for mine, theirs in zip(batch, legacy):
            assert (
                mine.report(config).to_json()
                == AlignmentReport.from_result(theirs, config).to_json()
            )

    def test_overlap_theta_sweep_parity(self, figure7_graphs):
        source, target = figure7_graphs
        aligner = Aligner(AlignConfig(method="overlap"))
        for theta in (0.35, 0.65, 0.95):
            session = aligner.evolve(theta=theta).align(source, target)
            legacy = _legacy(
                align_versions, source, target, method="overlap", theta=theta
            )
            config = aligner.config.evolve(theta=theta)
            assert session.report(config).to_json() == (
                AlignmentReport.from_result(legacy, config).to_json()
            )


class TestSession:
    def test_align_accepts_paths(self, tmp_path, figure1_graphs):
        source, target = figure1_graphs
        source_path = tmp_path / "v1.nt"
        target_path = tmp_path / "v2.nt"
        ntriples.dump_path(source, source_path)
        ntriples.dump_path(target, target_path)
        aligner = Aligner(AlignConfig(method="hybrid"))
        from_paths = aligner.align(str(source_path), target_path)
        from_graphs = aligner.align(source, target)
        assert (
            from_paths.report(aligner.config).to_json()
            == from_graphs.report(aligner.config).to_json()
        )
        # The parsed file is cached per path.
        assert aligner.align(str(source_path), target_path).graph.source is (
            from_paths.graph.source
        )

    def test_align_rejects_junk(self):
        with pytest.raises(TypeError):
            Aligner().align(42, 43)  # type: ignore[arg-type]

    def test_align_pairs_reuses_graphs(self, gtopdb_graphs):
        aligner = Aligner(AlignConfig(method="deblank", engine="dense"))
        results = aligner.align_pairs(
            [
                (gtopdb_graphs[0], gtopdb_graphs[1]),
                (gtopdb_graphs[1], gtopdb_graphs[2]),
                (gtopdb_graphs[0], gtopdb_graphs[2]),
            ]
        )
        assert len(results) == 3
        # Three distinct graphs were snapshotted exactly once each.
        assert len(aligner._blocks) == 3
        for result, (a, b) in zip(
            results, [(0, 1), (1, 2), (0, 2)]
        ):
            single = Aligner(aligner.config).align(
                gtopdb_graphs[a], gtopdb_graphs[b]
            )
            assert result.partition.equivalent_to(single.partition)

    def test_literal_characterization_shared_across_batch(self, figure1_graphs):
        source, target = figure1_graphs
        calls = []

        def counting_splitter(value: str) -> frozenset:
            calls.append(value)
            return frozenset(value.split())

        aligner = Aligner(AlignConfig(method="overlap", splitter=counting_splitter))
        aligner.align_many(source, [target, target])
        assert len(calls) == len(set(calls)), "a literal value was split twice"

    def test_report_shortcut(self, figure3_graphs):
        aligner = Aligner(AlignConfig(method="trivial"))
        report = aligner.report(*figure3_graphs)
        direct = aligner.align(*figure3_graphs).report(aligner.config)
        assert report == direct

    def test_session_caches_are_bounded(self):
        """A session over an open-ended graph stream must not pin every
        input forever (the VersionStore LRU precedent)."""
        from repro.model import RDFGraph, lit, uri

        aligner = Aligner(AlignConfig(method="deblank", engine="dense"))
        keep = []
        for index in range(aligner.BLOCK_CACHE_SIZE + 8):
            g1, g2 = RDFGraph(), RDFGraph()
            g1.add(uri("a"), uri("p"), lit(f"x{index}"))
            g2.add(uri("a"), uri("p"), lit(f"x{index}"))
            keep.extend((g1, g2))  # hold ids stable for the assertion
            aligner.align(g1, g2)
        assert len(aligner._blocks) <= aligner.BLOCK_CACHE_SIZE

    def test_path_cache_is_bounded(self, tmp_path, figure3_graphs):
        source, target = figure3_graphs
        aligner = Aligner(AlignConfig(method="trivial"))
        for index in range(aligner.PATH_CACHE_SIZE + 5):
            path = tmp_path / f"v{index}.nt"
            ntriples.dump_path(source, path)
            aligner.align(path, target)
        assert len(aligner._loaded) <= aligner.PATH_CACHE_SIZE


class TestBaselineMethods:
    def test_similarity_flooding_through_session(self, figure7_graphs):
        result = Aligner(AlignConfig(method="similarity_flooding")).align(
            *figure7_graphs
        )
        graph = result.graph
        # The renamed URI w/w2 is flooding's showcase match (test_baselines).
        assert result.alignment.aligned(
            graph.from_source(uri("w")), graph.from_target(uri("w2"))
        )
        assert result.details["rounds"] >= 1
        report = result.report()
        assert report.diagnostics["rounds"] >= 1
        assert ("URI('w')", "URI('w2')") in report.pairs

    def test_label_invention_through_session(self, figure3_graphs):
        result = Aligner(AlignConfig(method="label_invention")).align(
            *figure3_graphs
        )
        graph = result.graph
        # Equal records b2/b4 align on invented labels (test_baselines).
        assert result.alignment.aligned(
            graph.from_source(blank("b2")), graph.from_target(blank("b4"))
        )
        assert result.matched_entities() > 0
        unaligned_source, unaligned_target = result.unaligned_counts()
        assert unaligned_source >= 0 and unaligned_target >= 0

    def test_baseline_matched_entities_matches_partition_view(self, figure3_graphs):
        """Label invention's pair set is crossover-closed, so component
        counting agrees with the deblank partition's matched classes."""
        invention = Aligner(AlignConfig(method="label_invention")).align(
            *figure3_graphs
        )
        deblank = Aligner(AlignConfig(method="deblank")).align(*figure3_graphs)
        assert set(invention.alignment.pairs()) == set(deblank.alignment.pairs())
        assert invention.matched_entities() == deblank.matched_entities()


class TestAlignmentReport:
    def test_json_roundtrip(self, figure1_graphs):
        config = AlignConfig(method="overlap", theta=0.7)
        report = Aligner(config).report(*figure1_graphs)
        text = report.to_json()
        back = AlignmentReport.from_json(text)
        assert back == report
        assert back.to_json() == text

    def test_payload_schema(self, figure3_graphs):
        report = Aligner(AlignConfig(method="trivial")).report(*figure3_graphs)
        payload = report.to_dict()
        assert payload["schema"] == SCHEMA
        assert payload["version"] == SCHEMA_VERSION
        assert AlignmentReport.validate(payload) == []
        assert payload["stats"]["pair_count"] == len(payload["pairs"])

    def test_pairs_and_sets_sorted(self, figure3_graphs):
        report = Aligner(AlignConfig(method="hybrid")).report(*figure3_graphs)
        assert list(report.pairs) == sorted(report.pairs)
        assert list(report.unaligned_source) == sorted(report.unaligned_source)
        assert list(report.unaligned_target) == sorted(report.unaligned_target)

    def test_validate_flags_problems(self):
        assert AlignmentReport.validate("not a dict")
        assert AlignmentReport.validate({}) != []
        good = Aligner(AlignConfig(method="trivial"))
        payload = {
            "schema": "something/else", "version": 1, "method": "x",
            "engine": "reference", "parameters": {}, "stats": {},
            "pairs": [], "unaligned_source": [], "unaligned_target": [],
        }
        problems = AlignmentReport.validate(payload)
        assert any("schema" in p for p in problems)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReportError):
            AlignmentReport.from_json("{not json")
        with pytest.raises(ReportError):
            AlignmentReport.from_json(json.dumps({"schema": SCHEMA}))

    def test_save_load(self, tmp_path, figure3_graphs):
        report = Aligner(AlignConfig(method="deblank")).report(*figure3_graphs)
        path = tmp_path / "report.json"
        report.save(path)
        assert AlignmentReport.load(path) == report

    def test_diff(self, figure3_graphs):
        trivial = Aligner(AlignConfig(method="trivial")).report(*figure3_graphs)
        hybrid = Aligner(AlignConfig(method="hybrid")).report(*figure3_graphs)
        delta = trivial.diff(hybrid)
        assert delta["removed_pairs"] == []  # trivial ⊆ hybrid
        assert delta["added_pairs"]
        assert delta["stats"]["matched_entities"] >= 0

    def test_summary_matches_cli_line(self, figure3_graphs):
        report = Aligner(AlignConfig(method="trivial")).report(*figure3_graphs)
        assert report.summary().startswith("method=trivial matched_entities=")
