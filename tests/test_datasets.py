"""Tests for the dataset generators (repro.datasets)."""

from __future__ import annotations

import random

import pytest

from repro.datasets.dbpedia import DBpediaCategoryGenerator
from repro.datasets.efo import EFOGenerator
from repro.datasets.ground_truth import GroundTruth
from repro.datasets.gtopdb import GtoPdbGenerator
from repro.datasets.mutations import (
    curation_edit,
    edit_typo,
    edit_word,
    make_identifier,
    make_name,
    sample_fraction,
)
from repro.model import URI, combine, uri
from repro.exceptions import AlignmentError


class TestMutations:
    def test_edit_typo_changes_length_or_char(self):
        rng = random.Random(1)
        for _ in range(50):
            text = "receptor"
            edited = edit_typo(rng, text)
            assert abs(len(edited) - len(text)) <= 1

    def test_edit_typo_on_empty(self):
        assert edit_typo(random.Random(1), "") != ""

    def test_edit_word(self):
        rng = random.Random(2)
        edited = edit_word(rng, "alpha beta", ["gamma"])
        assert isinstance(edited, str) and edited

    def test_curation_edit_always_differs(self):
        rng = random.Random(3)
        for _ in range(100):
            assert curation_edit(rng, "histamine receptor", ["x"]) != "histamine receptor"

    def test_make_name_and_identifier(self):
        rng = random.Random(4)
        assert len(make_name(rng, ["a", "b"], 3).split()) == 3
        ident = make_identifier(rng, "EFO_", width=4)
        assert ident.startswith("EFO_") and len(ident) == 8

    def test_sample_fraction(self):
        rng = random.Random(5)
        items = list(range(100))
        assert len(sample_fraction(rng, items, 0.25)) == 25
        assert sample_fraction(rng, items, 0.0) == []
        assert len(sample_fraction(rng, [1], 5.0)) == 1


class TestGroundTruth:
    def test_lookup_both_directions(self):
        truth = GroundTruth({uri("a1"): uri("a2")})
        assert truth.partner_of_source(uri("a1")) == uri("a2")
        assert truth.partner_of_target(uri("a2")) == uri("a1")
        assert truth.partner_of_source(uri("zzz")) is None
        assert (uri("a1"), uri("a2")) in truth
        assert len(truth) == 1

    def test_must_be_one_to_one(self):
        with pytest.raises(AlignmentError):
            GroundTruth({uri("a"): uri("x"), uri("b"): uri("x")})

    def test_from_entity_maps_joins_shared_keys(self):
        truth = GroundTruth.from_entity_maps(
            {"e1": uri("v1/a"), "e2": uri("v1/b")},
            {"e1": uri("v2/a"), "e3": uri("v2/c")},
        )
        assert len(truth) == 1
        assert truth.partner_of_source(uri("v1/a")) == uri("v2/a")


class TestGtoPdbGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return GtoPdbGenerator(scale=0.2, versions=5)

    def test_deterministic(self):
        first = GtoPdbGenerator(scale=0.1, versions=3, seed=7)
        second = GtoPdbGenerator(scale=0.1, versions=3, seed=7)
        from repro.io import ntriples

        assert ntriples.dumps(first.graph(2)) == ntriples.dumps(second.graph(2))

    def test_versions_grow(self, generator):
        edges = [g.num_edges for g in generator.graphs()]
        assert edges == sorted(edges) or edges[-1] > edges[0]

    def test_no_blanks(self, generator):
        for graph in generator.graphs():
            assert not graph.blanks()

    def test_graphs_are_well_formed(self, generator):
        generator.graph(0).validate()
        generator.graph(4).validate()

    def test_ground_truth_joins_persistent_keys(self, generator):
        truth = generator.ground_truth(0, 1)
        assert len(truth) > 0
        source, target = next(iter(truth.pairs()))
        assert source.value.startswith("http://gtopdb.example.org/ver1/")
        assert target.value.startswith("http://gtopdb.example.org/ver2/")
        assert source.value.split("ver1/")[1] == target.value.split("ver2/")[1]

    def test_combined_lifts_ground_truth(self, generator):
        union, truth = generator.combined(0, 1)
        lifted = truth.combined_pairs(union)
        assert lifted
        for source_node, target_node in lifted:
            assert source_node in union.source_nodes
            assert target_node in union.target_nodes

    def test_burst_version_inserts_more(self):
        generator = GtoPdbGenerator(scale=0.3, versions=5)
        graphs = generator.graphs()
        growths = [
            graphs[i + 1].num_edges / graphs[i].num_edges for i in range(4)
        ]
        # Burst lands in version 4 (index 2 -> 3 transition).
        assert growths[2] == max(growths)


class TestEFOGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return EFOGenerator(scale=0.5)

    def test_node_mix_matches_paper(self, generator):
        for graph in generator.graphs():
            stats = graph.stats()
            assert stats.num_literals / stats.num_nodes > 0.70
            assert 0.05 < stats.num_blanks / stats.num_nodes < 0.20

    def test_blank_duplicates_are_bisimilar(self, generator):
        from repro.core.bisimulation import bisimulation_partition
        from repro.model.rdf import BlankNode

        graph = generator.graph(1)
        duplicates = [n for n in graph.blanks() if n.name.endswith("-dup")]
        assert duplicates, "expected duplicated citation records"
        partition = bisimulation_partition(graph)
        sample = duplicates[0]
        original = BlankNode(sample.name[: -len("-dup")])
        assert partition[sample] == partition[original]

    def test_prefix_migration_story(self, generator):
        classes = generator.classes()
        vanishing = [c for c in classes if c.group == "vanish"]
        assert vanishing
        cls = vanishing[0]
        assert generator.class_uri(cls, 1).value.startswith("http://purl.org/obo/owl/")
        assert generator.class_uri(cls, 3) is None
        assert generator.class_uri(cls, 5).value.startswith(
            "http://purl.obolibrary.org/obo/"
        )

    def test_bulk_rename_at_version8(self, generator):
        classes = generator.classes()
        bulk = [c for c in classes if c.group == "bulk"]
        assert bulk
        cls = bulk[0]
        assert generator.class_uri(cls, 7).value.startswith("http://purl.org/obo/owl/")
        assert generator.class_uri(cls, 8).value.startswith(
            "http://purl.obolibrary.org/obo/"
        )

    def test_ground_truth_across_rename(self, generator):
        truth = generator.ground_truth(6, 7)  # v7 -> v8 bulk rename
        renamed = [
            (s, t)
            for s, t in truth.pairs()
            if s.value.startswith("http://purl.org/obo/owl/")
            and t.value.startswith("http://purl.obolibrary.org/obo/")
        ]
        assert renamed

    def test_graphs_deterministic(self):
        a = EFOGenerator(scale=0.2, seed=9).graph(3)
        b = EFOGenerator(scale=0.2, seed=9).graph(3)
        from repro.io import ntriples

        assert ntriples.dumps(a) == ntriples.dumps(b)


class TestDBpediaGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return DBpediaCategoryGenerator(scale=0.5)

    def test_versions_grow(self, generator):
        nodes = [g.num_nodes for g in generator.graphs()]
        assert all(b >= a for a, b in zip(nodes, nodes[1:]))

    def test_well_formed(self, generator):
        generator.graph(0).validate()

    def test_ground_truth_is_shared_uris(self, generator):
        truth = generator.ground_truth(0, 1)
        source, target = next(iter(truth.pairs()))
        assert source == target

    def test_no_blanks(self, generator):
        assert not generator.graph(0).blanks()

    def test_category_edges_exist(self, generator):
        from repro.model.namespaces import SKOS_BROADER

        graph = generator.graph(0)
        assert any(p == SKOS_BROADER for __, p, __o in graph.edges())
