"""Tests for the differential oracle (repro.testing.differential).

The oracle's job is twofold and both directions are pinned here:

* on the six pinned scenarios (small ER, scale-free, blank-heavy,
  cycle-heavy, literal-noise, mutation-chain) every registered method ×
  engine × jobs combination satisfies all invariants — this is the
  generated-scenario equivalence surface CI runs;
* a deliberately broken method — engine-dependent output, or
  worker-process-dependent output — is *caught* as a divergence, so the
  oracle is known to have teeth.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib

import pytest

from repro.align import MethodSpec, register_method, unregister_method
from repro.align.registry import method_names
from repro.align.results import BaselineResult, PairAlignment
from repro.datasets.synthetic import SCENARIOS, SyntheticConfig
from repro.testing.differential import (
    DifferentialReport,
    Divergence,
    Refusal,
    append_bench_entry,
    main,
    run_differential,
    run_scenarios,
)

#: One small config reused by the teeth tests.
_TINY = SyntheticConfig(shape="erdos_renyi", entities=10, versions=2, seed=77)


class TestPinnedScenarios:
    """The six-scenario seed matrix must pass the full oracle."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes_all_invariants(self, name):
        report = run_differential(SCENARIOS[name], name=name)
        assert report.ok, "\n".join(d.render() for d in report.divergences)
        # Every registered method really was exercised on every engine.
        assert report.methods == method_names()
        assert report.engines == ("reference", "dense")
        assert report.jobs == (1, 2)
        assert report.cells >= len(report.pairs) * len(report.methods) * 2

    def test_refusals_are_consistent_not_divergent(self):
        """blank_heavy provokes label invention's cyclic-blank refusal;
        a *consistent* refusal across engines and jobs is not a bug."""
        report = run_differential(SCENARIOS["blank_heavy"], name="blank_heavy")
        assert report.ok
        assert report.refusals > 0

    def test_run_scenarios_covers_the_matrix(self):
        reports = run_scenarios(
            {"small_er": SCENARIOS["small_er"]}, jobs=(1,), engines=("reference",)
        )
        assert set(reports) == {"small_er"}
        assert reports["small_er"].ok


def _node_pick(nodes):
    return min(nodes, key=repr)


def _engine_dependent_runner(graph, config, context):
    """Broken on purpose: the dense engine 'finds' one extra pair."""
    pairs = set()
    if config.engine == "dense":
        pairs.add((_node_pick(graph.source_nodes), _node_pick(graph.target_nodes)))
    return BaselineResult(
        method="broken_engine_probe",
        graph=graph,
        alignment=PairAlignment(graph, pairs),
        engine=config.engine,
    )


def _crashing_runner(graph, config, context):
    """Broken on purpose: an arbitrary (non-ReproError) exception."""
    raise IndexError("synthetic dense-engine bug")


def _worker_dependent_runner(graph, config, context):
    """Broken on purpose: output depends on the executing process."""
    pairs = set()
    if multiprocessing.current_process().name != "MainProcess":
        pairs.add((_node_pick(graph.source_nodes), _node_pick(graph.target_nodes)))
    return BaselineResult(
        method="broken_worker_probe",
        graph=graph,
        alignment=PairAlignment(graph, pairs),
        engine=config.engine,
    )


class TestKbisimAxis:
    """The k-bisimulation boundedness sweep (``--axis kbisim``)."""

    def test_tiny_scenario_passes_kbisim_axis(self):
        report = run_differential(_TINY, name="tiny", axis="kbisim", jobs=(1, 2))
        assert report.ok, "\n".join(d.render() for d in report.divergences)
        # The sweep really ran cells (anchors + k sweep per engine).
        assert report.cells > 0

    def test_divergence_k_is_rendered_and_serialized(self):
        divergence = Divergence(
            scenario="s", invariant="kbisim_convergence", method="kbisim",
            detail="boom", pair=(0, 1), k=4,
        )
        assert "k=4" in divergence.render()
        report = DifferentialReport(
            scenario="s", config=_TINY, methods=("kbisim",),
            engines=("reference",), jobs=(1,), pairs=((0, 1),),
            divergences=[divergence],
        )
        assert report.to_dict()["divergences"][0]["k"] == 4


class TestOracleTeeth:
    """The oracle must catch the failure modes it exists for."""

    def _run_with(self, name, runner, **kwargs):
        register_method(
            MethodSpec(name=name, runner=runner, baseline=True, uses_csr=False)
        )
        try:
            return run_differential(
                _TINY, name="teeth", methods=(name,), **kwargs
            )
        finally:
            unregister_method(name)

    def test_engine_divergence_is_caught(self):
        report = self._run_with(
            "broken_engine_probe", _engine_dependent_runner, jobs=(1,)
        )
        assert not report.ok
        assert {d.invariant for d in report.divergences} == {"engine_parity"}

    def test_jobs_divergence_is_caught(self):
        # Three versions -> two pairs: with a single pair run_sharded
        # degrades to the serial path and the worker never runs.
        register_method(
            MethodSpec(
                name="broken_worker_probe",
                runner=_worker_dependent_runner,
                baseline=True,
                uses_csr=False,
            )
        )
        try:
            report = run_differential(
                _TINY.evolve(versions=3),
                name="teeth",
                methods=("broken_worker_probe",),
                engines=("reference",),
                jobs=(2,),
            )
        finally:
            unregister_method("broken_worker_probe")
        assert not report.ok
        assert any(
            d.invariant == "jobs_determinism" for d in report.divergences
        )

    def test_crash_is_a_divergence_not_an_abort(self):
        """An arbitrary exception in one cell must not kill the sweep —
        the {seed, config} artifact is the whole reproduction story."""
        report = self._run_with(
            "broken_crash_probe", _crashing_runner,
            engines=("reference",), jobs=(1,),
        )
        assert not report.ok
        assert {d.invariant for d in report.divergences} == {"crash"}
        assert any("IndexError" in d.detail for d in report.divergences)
        # The artifact still carries the rebuildable config.
        payload = report.to_dict()
        assert SyntheticConfig.from_dict(payload["config"]) == _TINY

    def test_artifact_payload_rebuilds_the_config(self):
        report = self._run_with(
            "broken_engine_probe", _engine_dependent_runner, jobs=(1,)
        )
        payload = report.to_dict()
        assert payload["seed"] == _TINY.seed
        assert SyntheticConfig.from_dict(payload["config"]) == _TINY
        assert payload["ok"] is False
        assert payload["divergences"]


class TestPieces:
    def test_divergence_render_mentions_everything(self):
        divergence = Divergence(
            scenario="s", invariant="engine_parity", method="overlap",
            detail="boom", pair=(0, 1),
        )
        rendered = divergence.render()
        for token in ("s", "engine_parity", "overlap", "boom", "(0, 1)"):
            assert token in rendered

    def test_refusal_render(self):
        assert "CyclicBlankError" in Refusal("CyclicBlankError", "x").render()

    def test_report_summary_counts(self):
        report = DifferentialReport(
            scenario="s", config=_TINY, methods=("hybrid",),
            engines=("reference",), jobs=(1,), pairs=((0, 1),),
        )
        assert "ok" in report.summary()


class TestBenchAppend:
    """Tolerance cases live in tests/test_bench_record.py — the harness's
    ``record_bench`` delegates to this same function; only the
    CI-specific nested-directory creation is pinned here."""

    def test_creates_nested_directories(self, tmp_path):
        target = tmp_path / "nested" / "deeper" / "bench.json"
        assert append_bench_entry(target, "t", 0.5)
        assert json.loads(target.read_text())[0]["name"] == "t"


class TestCommandLine:
    def test_main_runs_one_scenario(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = main(
            [
                "--scenario", "small_er",
                "--out", str(tmp_path / "artifacts"),
                "--bench", str(bench),
                "--jobs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "small_er: ok" in out
        entries = json.loads(bench.read_text())
        assert entries[0]["name"] == "synthetic/generate/small_er"
        # No artifacts on success.
        assert not pathlib.Path(tmp_path / "artifacts").exists()
