"""Tests for delta derivation (repro.delta)."""

from __future__ import annotations

import random

import pytest

from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.delta import VersionChanges, compute_delta, diff, render_delta
from repro.io import ntriples
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


@pytest.fixture
def change_pair():
    source = RDFGraph()
    source.add(uri("a"), uri("p"), lit("kept"))
    source.add(uri("a"), uri("p"), lit("dropped value"))
    source.add(uri("old-name"), uri("p"), lit("anchor one two three"))
    target = RDFGraph()
    target.add(uri("a"), uri("p"), lit("kept"))
    target.add(uri("a"), uri("q"), lit("fresh value"))
    target.add(uri("new-name"), uri("p"), lit("anchor one two three"))
    return combine(source, target)


class TestComputeDelta:
    def test_renames_detected_via_hybrid(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        renames = {
            (str(change.source_label), str(change.target_label))
            for change in delta.renamed_nodes
        }
        assert ("old-name", "new-name") in renames

    def test_insertions_and_deletions(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        deleted = {str(change.source_label) for change in delta.deleted_nodes}
        inserted = {str(change.target_label) for change in delta.inserted_nodes}
        assert "dropped value" in deleted
        assert "fresh value" in inserted
        assert "q" in inserted  # the new predicate URI

    def test_kept_triples_modulo_alignment(self, change_pair):
        """The anchor triple survives the rename: not a change."""
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        removed = {
            repr(change_pair.original(o)) for __, __p, o in delta.removed_triples
        }
        assert not any("anchor" in text for text in removed)
        assert delta.kept_triple_count >= 2  # a-p-kept and the anchor triple

    def test_trivial_alignment_sees_rename_as_delete_plus_insert(self, change_pair):
        partition = trivial_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        assert not delta.renamed_nodes
        deleted = {str(change.source_label) for change in delta.deleted_nodes}
        assert "old-name" in deleted

    def test_identity_delta_is_empty(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), blank("b"))
        g.add(blank("b"), uri("q"), lit("x"))
        union = combine(g, g.copy())
        partition = hybrid_partition(union, ColorInterner())
        delta = compute_delta(union, partition)
        assert delta.is_empty
        assert delta.kept_node_count == union.num_nodes // 2
        assert delta.kept_triple_count == 2

    def test_ambiguous_nodes_reported(self):
        union_graph = RDFGraph()
        union_graph.add(uri("s"), uri("p"), lit("x"))
        union = combine(union_graph, union_graph.copy())
        # Force every node into one class: everything ambiguous.
        partition = Partition({node: 0 for node in union.nodes()})
        delta = compute_delta(union, partition)
        assert len(delta.ambiguous_nodes) == 3

    def test_summary_totals(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        summary = delta.summary()
        source_nodes = len(change_pair.source_nodes)
        accounted = (
            summary["kept_nodes"]
            + summary["deleted_nodes"]
            + summary["renamed_nodes"]
            + summary["ambiguous_nodes"]
        )
        assert accounted == source_nodes


class TestRenderDelta:
    def test_render_contains_sections(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        out = render_delta(change_pair, delta)
        assert "delta summary:" in out
        assert "renamed:" in out
        assert "old-name -> new-name" in out

    def test_render_truncates(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        out = render_delta(change_pair, delta, limit=0)
        assert "more" in out


def _version_pair():
    before = RDFGraph()
    before.add(uri("a"), uri("p"), lit("kept"))
    before.add(uri("a"), uri("p"), lit("dropped"))
    before.add(uri("old-name"), uri("p"), blank("b1"))
    before.add(blank("b1"), uri("q"), lit("anchor"))
    after = RDFGraph()
    after.add(uri("a"), uri("p"), lit("kept"))
    after.add(uri("a"), uri("r"), lit("fresh"))
    after.add(uri("new-name"), uri("p"), blank("b2"))
    after.add(blank("b2"), uri("q"), lit("anchor"))
    renames = {uri("old-name"): uri("new-name"), blank("b1"): blank("b2")}
    return before, after, renames


class TestVersionChanges:
    """The edit-script constructor (diff/apply/compose) used by
    incremental maintenance (repro.core.maintain)."""

    def test_diff_apply_round_trips_to_identical_ntriples(self):
        before, after, renames = _version_pair()
        changes = diff(before, after, renames=renames)
        assert ntriples.dumps(changes.apply(before)) == ntriples.dumps(after)

    def test_round_trip_without_rename_hints(self):
        """Identifier matching alone: renames become remove + insert,
        apply still reproduces the target bytes."""
        before, after, _ = _version_pair()
        changes = diff(before, after)
        assert not changes.renamed
        assert ntriples.dumps(changes.apply(before)) == ntriples.dumps(after)

    def test_random_graph_round_trips(self):
        rng = random.Random(20160912)
        for _ in range(10):
            before = random_rdf_graph(rng, uri_prefix="d")
            after = random_rdf_graph(rng, uri_prefix="d")
            changes = diff(before, after)
            assert ntriples.dumps(changes.apply(before)) == ntriples.dumps(after)

    def test_generator_deltas_round_trip(self):
        """The mutation_chain generator's identity-preserving deltas
        reproduce each next version byte-for-byte."""
        generator = SyntheticGenerator(config=SCENARIOS["mutation_chain"])
        graphs = generator.graphs()
        for index in range(len(graphs) - 1):
            changes = generator.version_changes(index)
            assert ntriples.dumps(changes.apply(graphs[index])) == ntriples.dumps(
                graphs[index + 1]
            )

    def test_empty_delta_is_a_no_op(self):
        before, _, _ = _version_pair()
        changes = VersionChanges()
        assert changes.is_empty
        assert ntriples.dumps(changes.apply(before)) == ntriples.dumps(before)

    def test_diff_of_identical_graphs_is_empty(self):
        before, _, _ = _version_pair()
        changes = diff(before, before.copy())
        assert changes.is_empty

    def test_compose_matches_sequential_application(self):
        rng = random.Random(4242)
        for _ in range(10):
            g1 = random_rdf_graph(rng, uri_prefix="c")
            g2 = random_rdf_graph(rng, uri_prefix="c")
            g3 = random_rdf_graph(rng, uri_prefix="c")
            first = diff(g1, g2)
            second = diff(g2, g3)
            composed = first.compose(second)
            assert ntriples.dumps(composed.apply(g1)) == ntriples.dumps(g3)

    def test_compose_with_renames(self):
        before, mid, renames = _version_pair()
        after = RDFGraph()
        after.add(uri("a"), uri("p"), lit("kept"))
        after.add(uri("a"), uri("r"), lit("fresh"))
        after.add(uri("final-name"), uri("p"), blank("b3"))
        after.add(blank("b3"), uri("q"), lit("anchor"))
        first = diff(before, mid, renames=renames)
        second = diff(
            mid, after,
            renames={uri("new-name"): uri("final-name"), blank("b2"): blank("b3")},
        )
        composed = first.compose(second)
        assert ntriples.dumps(composed.apply(before)) == ntriples.dumps(after)
        # The chained rename survives composition end to end.
        assert composed.rename_map()[uri("old-name")] == uri("final-name")

    def test_summary_counts(self):
        before, after, renames = _version_pair()
        changes = diff(before, after, renames=renames)
        summary = changes.summary()
        assert summary["renamed_nodes"] == 2
        assert summary["removed_edges"] >= 1
        assert summary["added_edges"] >= 1
