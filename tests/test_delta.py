"""Tests for delta derivation (repro.delta)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.delta import compute_delta, render_delta
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner


@pytest.fixture
def change_pair():
    source = RDFGraph()
    source.add(uri("a"), uri("p"), lit("kept"))
    source.add(uri("a"), uri("p"), lit("dropped value"))
    source.add(uri("old-name"), uri("p"), lit("anchor one two three"))
    target = RDFGraph()
    target.add(uri("a"), uri("p"), lit("kept"))
    target.add(uri("a"), uri("q"), lit("fresh value"))
    target.add(uri("new-name"), uri("p"), lit("anchor one two three"))
    return combine(source, target)


class TestComputeDelta:
    def test_renames_detected_via_hybrid(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        renames = {
            (str(change.source_label), str(change.target_label))
            for change in delta.renamed_nodes
        }
        assert ("old-name", "new-name") in renames

    def test_insertions_and_deletions(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        deleted = {str(change.source_label) for change in delta.deleted_nodes}
        inserted = {str(change.target_label) for change in delta.inserted_nodes}
        assert "dropped value" in deleted
        assert "fresh value" in inserted
        assert "q" in inserted  # the new predicate URI

    def test_kept_triples_modulo_alignment(self, change_pair):
        """The anchor triple survives the rename: not a change."""
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        removed = {
            repr(change_pair.original(o)) for __, __p, o in delta.removed_triples
        }
        assert not any("anchor" in text for text in removed)
        assert delta.kept_triple_count >= 2  # a-p-kept and the anchor triple

    def test_trivial_alignment_sees_rename_as_delete_plus_insert(self, change_pair):
        partition = trivial_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        assert not delta.renamed_nodes
        deleted = {str(change.source_label) for change in delta.deleted_nodes}
        assert "old-name" in deleted

    def test_identity_delta_is_empty(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), blank("b"))
        g.add(blank("b"), uri("q"), lit("x"))
        union = combine(g, g.copy())
        partition = hybrid_partition(union, ColorInterner())
        delta = compute_delta(union, partition)
        assert delta.is_empty
        assert delta.kept_node_count == union.num_nodes // 2
        assert delta.kept_triple_count == 2

    def test_ambiguous_nodes_reported(self):
        union_graph = RDFGraph()
        union_graph.add(uri("s"), uri("p"), lit("x"))
        union = combine(union_graph, union_graph.copy())
        # Force every node into one class: everything ambiguous.
        partition = Partition({node: 0 for node in union.nodes()})
        delta = compute_delta(union, partition)
        assert len(delta.ambiguous_nodes) == 3

    def test_summary_totals(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        summary = delta.summary()
        source_nodes = len(change_pair.source_nodes)
        accounted = (
            summary["kept_nodes"]
            + summary["deleted_nodes"]
            + summary["renamed_nodes"]
            + summary["ambiguous_nodes"]
        )
        assert accounted == source_nodes


class TestRenderDelta:
    def test_render_contains_sections(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        out = render_delta(change_pair, delta)
        assert "delta summary:" in out
        assert "renamed:" in out
        assert "old-name -> new-name" in out

    def test_render_truncates(self, change_pair):
        partition = hybrid_partition(change_pair, ColorInterner())
        delta = compute_delta(change_pair, partition)
        out = render_delta(change_pair, delta, limit=0)
        assert "more" in out
