"""Unit tests for the relational database (repro.relational.database)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.relational.database import RelationalDatabase
from repro.relational.evolution import (
    bulk_update,
    changed_rows,
    delete_with_referents,
    diff_keys,
    next_version,
)
from repro.relational.schema import Column, ColumnType, ForeignKey, Table, make_schema


@pytest.fixture
def schema():
    return make_schema(
        [
            Table(
                name="author",
                columns=(
                    Column("author_id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                ),
                primary_key=("author_id",),
            ),
            Table(
                name="book",
                columns=(
                    Column("book_id", ColumnType.INTEGER),
                    Column("title", ColumnType.TEXT),
                    Column("author_id", ColumnType.INTEGER),
                    Column("price", ColumnType.DECIMAL, nullable=True),
                ),
                primary_key=("book_id",),
                foreign_keys=(ForeignKey(("author_id",), "author"),),
            ),
        ]
    )


@pytest.fixture
def db(schema):
    database = RelationalDatabase(schema)
    database.insert("author", {"author_id": 1, "name": "Peter"})
    database.insert("author", {"author_id": 2, "name": "Slawek"})
    database.insert("book", {"book_id": 10, "title": "Archiving", "author_id": 1})
    return database


class TestInsert:
    def test_insert_returns_key(self, db):
        key = db.insert("book", {"book_id": 11, "title": "Alignment", "author_id": 2})
        assert key == (11,)
        assert db.count("book") == 2

    def test_duplicate_pk_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": 1, "name": "Again"})

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": 3, "name": "x", "zzz": 1})

    def test_missing_value_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": 3})

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": "three", "name": "x"})
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": 3, "name": 42})

    def test_bool_is_not_an_integer(self, db):
        with pytest.raises(SchemaError):
            db.insert("author", {"author_id": True, "name": "x"})

    def test_dangling_fk_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("book", {"book_id": 12, "title": "x", "author_id": 99})

    def test_nullable_column_may_be_absent(self, db):
        db.insert("book", {"book_id": 13, "title": "x", "author_id": 1})
        assert db.get("book", (13,)).get("price") is None


class TestUpdateDelete:
    def test_update(self, db):
        db.update("book", (10,), {"title": "Archiving Scientific Data"})
        assert db.get("book", (10,))["title"] == "Archiving Scientific Data"

    def test_update_missing_row(self, db):
        with pytest.raises(SchemaError):
            db.update("book", (99,), {"title": "x"})

    def test_update_pk_rejected(self, db):
        """Keys are persistent entity identifiers — never updatable."""
        with pytest.raises(SchemaError):
            db.update("book", (10,), {"book_id": 99})

    def test_update_fk_checked(self, db):
        with pytest.raises(SchemaError):
            db.update("book", (10,), {"author_id": 99})

    def test_delete(self, db):
        db.delete("book", (10,))
        assert db.get("book", (10,)) is None

    def test_delete_referenced_row_rejected(self, db):
        with pytest.raises(SchemaError):
            db.delete("author", (1,))

    def test_delete_missing_row(self, db):
        with pytest.raises(SchemaError):
            db.delete("book", (99,))


class TestInspection:
    def test_rows_and_keys(self, db):
        assert db.keys("author") == {(1,), (2,)}
        assert {key for key, __ in db.rows("book")} == {(10,)}
        assert db.total_rows() == 3

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.keys("zzz")
        with pytest.raises(SchemaError):
            list(db.rows("zzz"))

    def test_referencing_keys(self, db):
        assert db.referencing_keys("author", (1,)) == [("book", (10,))]
        assert db.referencing_keys("author", (2,)) == []

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.insert("author", {"author_id": 3, "name": "New"})
        assert db.count("author") == 2

    def test_repr(self, db):
        assert "author=2" in repr(db)


class TestEvolutionHelpers:
    def test_delete_with_referents(self, db):
        deleted = delete_with_referents(db, "author", (1,))
        assert ("book", (10,)) in deleted
        assert ("author", (1,)) in deleted
        assert deleted.index(("book", (10,))) < deleted.index(("author", (1,)))
        assert db.get("author", (1,)) is None

    def test_bulk_update(self, db):
        touched = bulk_update(db, "author", {(1,): {"name": "P."}, (2,): {"name": "S."}})
        assert touched == 2
        assert db.get("author", (1,))["name"] == "P."

    def test_diff_keys(self, db):
        new = next_version(db)
        new.insert("author", {"author_id": 3, "name": "New"})
        delete_with_referents(new, "author", (1,))
        inserted, deleted, persistent = diff_keys(db, new)["author"]
        assert inserted == {(3,)}
        assert deleted == {(1,)}
        assert persistent == {(2,)}

    def test_changed_rows(self, db):
        new = next_version(db)
        new.update("author", (2,), {"name": "Sławek"})
        assert changed_rows(db, new, "author") == {(2,)}
        assert changed_rows(db, new, "book") == set()
