"""Tests for derivation-tree rendering (repro.partition.derivation)."""

from __future__ import annotations

from repro.core.bisimulation import bisimulation_partition
from repro.core.refinement import bisim_refine_fixpoint
from repro.model import RDFGraph, blank, lit, uri
from repro.partition.coloring import label_partition
from repro.partition.derivation import (
    DerivationTree,
    derivation_tree,
    render_color,
    render_tree,
)
from repro.partition.interner import ColorInterner


def small_graph() -> RDFGraph:
    """Two distinguishable blanks, so refinement actually recolors them.

    (A uniquely colored blank never splits; the fixpoint then returns the
    label partition per Definition 4 and its color has no unfolding.)
    """
    g = RDFGraph()
    g.add(blank("b"), uri("p"), lit("x"))
    g.add(blank("b"), uri("q"), uri("u"))
    g.add(blank("b2"), uri("p"), lit("x"))
    return g


class TestDerivationTree:
    def test_label_color_is_leaf(self):
        interner = ColorInterner()
        color = interner.label_color(uri("p"))
        tree = derivation_tree(interner, color)
        assert tree.head == "p"
        assert tree.children == ()
        assert tree.depth == 0 and tree.size() == 1

    def test_blank_color_renders_bottom(self):
        interner = ColorInterner()
        tree = derivation_tree(interner, interner.blank_color())
        assert tree.head == "⊥"

    def test_node_color(self):
        interner = ColorInterner()
        tree = derivation_tree(interner, interner.node_color("n1"))
        assert tree.head == "node:'n1'"

    def test_component_color(self):
        interner = ColorInterner()
        tree = derivation_tree(interner, interner.component_color(2, 5))
        assert tree.head == "component#5@2"

    def test_recolor_unfolds_children(self):
        g = small_graph()
        interner = ColorInterner()
        part = bisim_refine_fixpoint(g, label_partition(g, interner), None, interner)
        tree = derivation_tree(interner, part[blank("b")])
        assert tree.head == "⊥"
        assert len(tree.children) == 2
        heads = sorted(
            (p.head, o.head) for p, o in tree.children
        )
        assert ("p", "x") in heads or ("p", "recolor") in heads

    def test_depth_cutoff_marks_truncation(self):
        g = RDFGraph()
        g.add(blank("c"), uri("p"), blank("c"))  # self-loop: infinite unfolding
        interner = ColorInterner()
        part = bisim_refine_fixpoint(g, label_partition(g, interner), None, interner)
        tree = derivation_tree(interner, part[blank("c")], max_depth=3)
        # Walk to the deepest object subtree; it must be truncated.
        node = tree
        while node.children:
            node = node.children[0][1]
        assert node.truncated or node.depth == 0

    def test_size_counts_all_nodes(self):
        g = small_graph()
        interner = ColorInterner()
        part = bisim_refine_fixpoint(g, label_partition(g, interner), None, interner)
        tree = derivation_tree(interner, part[blank("b")])
        # Root plus two (predicate, object) child pairs, each a leaf.
        assert tree.size() == 1 + 2 * 2
        assert derivation_tree(interner, part[blank("b2")]).size() == 3


class TestRendering:
    def test_render_tree_lines(self):
        tree = DerivationTree(
            head="⊥",
            children=(
                (DerivationTree(head="p"), DerivationTree(head="x")),
            ),
        )
        out = render_tree(tree)
        lines = out.splitlines()
        assert lines[0] == "⊥"
        assert any("├p p" in line for line in lines)
        assert any("└o x" in line for line in lines)

    def test_render_truncated_marker(self):
        tree = DerivationTree(head="recolor", truncated=True)
        assert "…" in render_tree(tree)

    def test_render_color_convenience(self):
        g = small_graph()
        interner = ColorInterner()
        part = bisimulation_partition(g, interner)
        out = render_color(interner, part[blank("b")])
        assert "⊥" in out
