"""Integration tests: every figure experiment runs and keeps the paper's shape.

These run at small scale so the whole suite stays fast; the benchmark
harness repeats them at the default scales.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from repro.experiments.runner import EXPERIMENTS, experiment_module, run_experiments


class TestFigure09:
    @pytest.fixture(scope="class")
    def result(self):
        return figure09.run(scale=0.4)

    def test_shape(self, result):
        assert figure09.check_shape(result) == []

    def test_rows_per_version(self, result):
        assert len(result.rows) == 10
        assert result.rows[0]["version"] == 1

    def test_render_contains_table(self, result):
        assert "edges" in result.render()


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return figure10.run(scale=0.2, versions=6)

    def test_shape(self, result):
        assert figure10.check_shape(result) == []

    def test_matrix_is_complete(self, result):
        assert len(result.rows) == 36


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11.run(scale=0.15)

    def test_shape(self, result):
        assert figure11.check_shape(result) == []

    def test_gains_nonnegative(self, result):
        assert all(row["hybrid_gain"] >= 0 for row in result.rows)
        assert all(row["overlap_gain"] >= 0 for row in result.rows)


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return figure12.run(scale=0.25)

    def test_shape(self, result):
        assert figure12.check_shape(result) == []


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return figure13.run(scale=0.25)

    def test_shape(self, result):
        assert figure13.check_shape(result) == []

    def test_hierarchy_hybrid_below_overlap(self, result):
        for row in result.rows:
            assert row["hybrid"] <= row["overlap"]

    def test_methods_below_total(self, result):
        for row in result.rows:
            assert row["overlap"] <= row["total"]


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return figure14.run(scale=0.25)

    def test_shape(self, result):
        assert figure14.check_shape(result) == []

    def test_two_methods_per_pair(self, result):
        assert len(result.rows) == 18

    def test_categories_partition_nodes(self, result):
        for row in result.rows:
            assert (
                row["exact"] + row["inclusive"] + row["missing"] + row["false"] > 0
            )


class TestFigure15:
    @pytest.fixture(scope="class")
    def result(self):
        # Below scale ≈ 0.35 the θ sweep degenerates (no overlap-only true
        # matches survive), so this test uses the smallest meaningful scale.
        return figure15.run(scale=0.35, thetas=(0.35, 0.55, 0.65, 0.75, 0.95))

    def test_shape(self, result):
        assert figure15.check_shape(result) == []

    def test_one_row_per_theta(self, result):
        assert [row["theta"] for row in result.rows] == [0.35, 0.55, 0.65, 0.75, 0.95]


class TestFigure16:
    @pytest.fixture(scope="class")
    def result(self):
        return figure16.run(scale=0.2)

    def test_shape(self, result):
        assert figure16.check_shape(result) == []

    def test_sizes_reported(self, result):
        assert all(row["triples"] > 0 for row in result.rows)


class TestExtensions:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import extensions

        return extensions.run(scale=0.25, versions=4)

    def test_shape(self, result):
        from repro.experiments import extensions

        assert extensions.check_shape(result) == []

    def test_covers_both_experiments(self, result):
        kinds = {row["experiment"] for row in result.rows}
        assert kinds == {"predicates", "archive"}


class TestRunner:
    def test_registry_covers_all_figures(self):
        expected = [f"figure{n:02d}" for n in range(9, 17)] + ["extensions"]
        assert sorted(EXPERIMENTS) == sorted(expected)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            experiment_module("figure99")

    def test_run_experiments_saves_reports(self, tmp_path):
        results = run_experiments(
            ["figure12"], out_dir=str(tmp_path), scale=0.2, check=True
        )
        assert "figure12" in results
        text = (tmp_path / "figure12.txt").read_text()
        assert "GtoPdb" in text
        payload = json.loads((tmp_path / "figure12.json").read_text())
        assert payload["figure"] == "Figure 12"
        assert any("shape check: OK" in note for note in results["figure12"].notes)

    def test_run_experiments_probe_override_reaches_figure15(self):
        """probe is a per-figure parameter, not a config field — a raw
        override must reach figure15 instead of being silently eaten."""
        results = run_experiments(
            ["figure15"],
            scale=0.2,
            probe="paper",
            thetas=(0.45, 0.65),
            check=False,
        )
        assert results["figure15"].parameters["probe"] == "paper"

    def test_run_experiments_filters_parameters(self):
        # theta is not a figure09 parameter; it must be filtered, not crash.
        results = run_experiments(["figure09"], scale=0.2, theta=0.5, check=False)
        assert results["figure09"].rows
