"""Tests for enrichment (repro.similarity.enrichment) — paper Section 4.4."""

from __future__ import annotations

import pytest

from repro.model import RDFGraph, combine, lit, uri
from repro.oplus import oplus
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner
from repro.partition.weighted import zero_weighted
from repro.similarity.enrichment import (
    WeightedBipartiteGraph,
    component_weights,
    enrich,
    shortest_distances,
)


def bipartite(edges: dict) -> WeightedBipartiteGraph:
    return WeightedBipartiteGraph(edges)


class TestBipartiteGraph:
    def test_node_sets_from_edges(self):
        h = bipartite({("a1", "b1"): 0.2, ("a2", "b1"): 0.4})
        assert h.source_nodes == {"a1", "a2"}
        assert h.target_nodes == {"b1"}
        assert len(h) == 2 and not h.is_empty

    def test_empty(self):
        assert bipartite({}).is_empty

    def test_components_split_disconnected_pairs(self):
        h = bipartite({("a1", "b1"): 0.2, ("a2", "b2"): 0.4})
        components = h.components()
        assert len(components) == 2
        assert frozenset({"a1", "b1"}) in components

    def test_components_merge_shared_nodes(self):
        h = bipartite({("a1", "b1"): 0.2, ("a2", "b1"): 0.4, ("a3", "b3"): 0.1})
        components = h.components()
        assert len(components) == 2
        assert frozenset({"a1", "a2", "b1"}) in components

    def test_components_deterministic_order(self):
        h = bipartite({("a2", "b2"): 0.1, ("a1", "b1"): 0.1})
        assert h.components() == h.components()


class TestShortestDistances:
    def test_single_edge(self):
        h = bipartite({("a", "b"): 0.3})
        assert shortest_distances(h, "a")["b"] == pytest.approx(0.3)

    def test_path_through_shared_node(self):
        h = bipartite({("a1", "b"): 0.2, ("a2", "b"): 0.3})
        distances = shortest_distances(h, "a1")
        assert distances["a2"] == pytest.approx(0.5)

    def test_distances_capped_at_one(self):
        h = bipartite({("a1", "b1"): 0.9, ("a2", "b1"): 0.9})
        assert shortest_distances(h, "a1")["a2"] == 1.0

    def test_shortest_of_two_routes(self):
        h = bipartite(
            {("a1", "b1"): 0.1, ("a2", "b1"): 0.1, ("a1", "b2"): 0.9, ("a2", "b2"): 0.05}
        )
        # a1 -> b2 direct 0.9 vs a1-b1-a2-b2 = 0.25.
        assert shortest_distances(h, "a1")["b2"] == pytest.approx(0.25)


class TestComponentWeights:
    def test_half_of_max_distance(self):
        h = bipartite({("a", "b"): 0.4})
        weights = component_weights(h, frozenset({"a", "b"}))
        assert weights == {"a": pytest.approx(0.2), "b": pytest.approx(0.2)}

    def test_triangle_inequality_guarantee(self):
        h = bipartite({("a1", "b1"): 0.2, ("a2", "b1"): 0.6, ("a2", "b2"): 0.1})
        (component,) = h.components()
        weights = component_weights(h, component)
        for (source, target), __ in h.edges.items():
            d_star = shortest_distances(h, source)[target]
            assert d_star <= oplus(weights[source], weights[target]) + 1e-9


class TestEnrich:
    def _setup(self):
        g1 = RDFGraph()
        g1.add(uri("s"), uri("p"), lit("old value"))
        g2 = RDFGraph()
        g2.add(uri("s"), uri("p"), lit("new value"))
        union = combine(g1, g2)
        interner = ColorInterner()
        colors = {node: interner.node_color(node) for node in union.nodes()}
        weighted = zero_weighted(Partition(colors))
        return union, interner, weighted

    def test_enrich_unifies_component_colors(self):
        union, interner, weighted = self._setup()
        a = union.from_source(lit("old value"))
        b = union.from_target(lit("new value"))
        h = bipartite({(a, b): 0.4})
        enriched = enrich(weighted, h, interner, generation=1)
        assert enriched.color(a) == enriched.color(b)
        assert enriched.weight(a) == pytest.approx(0.2)
        assert enriched.distance(a, b) == pytest.approx(0.4)

    def test_enrich_untouched_nodes_keep_state(self):
        union, interner, weighted = self._setup()
        a = union.from_source(lit("old value"))
        b = union.from_target(lit("new value"))
        s = union.from_source(uri("s"))
        enriched = enrich(weighted, bipartite({(a, b): 0.4}), interner, generation=1)
        assert enriched.color(s) == weighted.color(s)
        assert enriched.weight(s) == 0.0

    def test_enrich_empty_graph_is_identity(self):
        union, interner, weighted = self._setup()
        assert enrich(weighted, bipartite({}), interner, generation=1) is weighted

    def test_generations_keep_colors_distinct(self):
        union, interner, weighted = self._setup()
        a = union.from_source(lit("old value"))
        b = union.from_target(lit("new value"))
        first = enrich(weighted, bipartite({(a, b): 0.4}), interner, generation=1)
        second = enrich(weighted, bipartite({(a, b): 0.4}), interner, generation=2)
        assert first.color(a) != second.color(a)
