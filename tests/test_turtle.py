"""Unit tests for the Turtle writer, the Turtle reader and load_graph."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.io import load_graph, ntriples, sniff_format, turtle
from repro.model import RDFGraph, blank, lit, uri
from repro.model.namespaces import RDF


def sample() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("http://ex/a"), RDF["type"], uri("http://ex/Class"))
    g.add(uri("http://ex/a"), uri("http://ex/p"), lit("x", language="en"))
    g.add(uri("http://ex/a"), uri("http://ex/q"), blank("b"))
    g.add(blank("b"), uri("http://ex/p"), lit("5", datatype="http://www.w3.org/2001/XMLSchema#integer"))
    return g


class TestTurtleWriter:
    def test_prefix_compaction(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        assert "@prefix ex: <http://ex/> ." in out
        assert "ex:a" in out
        assert "<http://ex/a>" not in out

    def test_rdf_type_becomes_a(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        assert " a ex:Class" in out.replace("\n", " ")

    def test_language_and_datatype(self):
        out = turtle.dumps(sample(), {"xsd": "http://www.w3.org/2001/XMLSchema#"})
        assert '"x"@en' in out
        assert '"5"^^xsd:integer' in out

    def test_subject_grouping_uses_semicolons(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        subject_lines = [chunk for chunk in out.split("\n\n") if "ex:a " in chunk]
        assert subject_lines, out
        assert ";" in subject_lines[0]

    def test_blank_nodes_rendered(self):
        out = turtle.dumps(sample())
        assert "_:b" in out

    def test_no_prefixes_is_fine(self):
        out = turtle.dumps(sample())
        assert "<http://ex/a>" in out

    def test_empty_graph(self):
        assert turtle.dumps(RDFGraph()) == ""

    def test_uri_not_compacted_when_local_name_unsafe(self):
        g = RDFGraph()
        g.add(uri("http://ex/a b"), uri("http://ex/p"), lit("x"))
        out = turtle.dumps(g, {"ex": "http://ex/"})
        assert "<http://ex/a b>" in out


class TestTurtleReader:
    @pytest.mark.parametrize(
        "prefixes",
        [None, {"ex": "http://ex/", "xsd": "http://www.w3.org/2001/XMLSchema#"}],
    )
    def test_writer_output_round_trips(self, prefixes):
        graph = sample()
        back = turtle.loads(turtle.dumps(graph, prefixes))
        assert set(back.triples()) == set(graph.triples())

    def test_escapes_round_trip(self):
        g = RDFGraph()
        g.add(uri("http://ex/a"), uri("http://ex/p"), lit('tab\t "quote" \\ nl\n'))
        back = turtle.loads(turtle.dumps(g))
        assert set(back.triples()) == set(g.triples())

    def test_object_lists_and_comments(self):
        graph = turtle.loads(
            """
            @prefix ex: <http://ex/> .
            # a comment
            ex:a ex:p "one", "two" ;
                a ex:Thing .
            _:z ex:q <http://abs/iri> .
            """
        )
        triples = set(graph.triples())
        assert (uri("http://ex/a"), uri("http://ex/p"), lit("one")) in triples
        assert (uri("http://ex/a"), uri("http://ex/p"), lit("two")) in triples
        assert (uri("http://ex/a"), RDF["type"], uri("http://ex/Thing")) in triples
        assert (blank("z"), uri("http://ex/q"), uri("http://abs/iri")) in triples

    def test_base_resolution(self):
        graph = turtle.loads(
            "@base <http://ex/> .\n<a> <p> <http://other/x> .\n"
        )
        triples = set(graph.triples())
        assert (uri("http://ex/a"), uri("http://ex/p"), uri("http://other/x")) in triples

    def test_sparql_style_directives(self):
        graph = turtle.loads(
            "PREFIX ex: <http://ex/>\nex:a ex:p ex:b .\n"
        )
        assert (uri("http://ex/a"), uri("http://ex/p"), uri("http://ex/b")) in set(
            graph.triples()
        )

    @pytest.mark.parametrize("label", ["prefix", "base", "PREFIX", "Base"])
    def test_prefix_label_named_like_a_directive(self, label):
        """`prefix:x` as a subject is a prefixed name, not a directive."""
        graph = turtle.loads(
            f"@prefix {label}: <http://ex/> .\n"
            f"{label}:x {label}:p {label}:y .\n"
        )
        assert (uri("http://ex/x"), uri("http://ex/p"), uri("http://ex/y")) in set(
            graph.triples()
        )

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(ParseError):
            turtle.loads("ex:a ex:p ex:b .")

    def test_unsupported_syntax_rejected(self):
        with pytest.raises(ParseError):
            turtle.loads("@prefix ex: <http://ex/> .\nex:a ex:p [ ex:q ex:b ] .")

    def test_unterminated_literal_rejected(self):
        with pytest.raises(ParseError):
            turtle.loads('@prefix ex: <http://ex/> .\nex:a ex:p "oops .')

    def test_literal_predicate_rejected(self):
        with pytest.raises(ParseError):
            turtle.loads('<http://ex/a> "p" <http://ex/b> .')


class TestReaderErrorPaths:
    """Malformed input must fail loudly with a ParseError, never parse
    wrongly or crash with an unrelated exception (the PR-4 reader only
    had happy-path coverage)."""

    @pytest.mark.parametrize(
        "document",
        [
            # -- malformed prefix directives -------------------------------
            "@prefix ex <http://ex/> .",            # missing colon
            "@prefix ex: \"not-an-iri\" .",          # IRI expected
            "@prefix ex: <http://ex/>",              # missing final dot
            "@prefixes ex: <http://ex/> .",          # unknown directive
            "@base <http://ex/>",                    # missing final dot
            # -- IRIs and names --------------------------------------------
            "<http://ex/a <http://ex/p> <http://ex/o> .",   # unterminated IRI
            "<http://ex/a> <http://ex/p> ??? .",            # junk token
            # -- literals --------------------------------------------------
            '<http://ex/a> <http://ex/p> "oops .',          # unterminated
            '<http://ex/a> <http://ex/p> "bad\nbreak" .',   # raw newline
            '<http://ex/a> <http://ex/p> "dangling\\',      # dangling escape
            '<http://ex/a> <http://ex/p> "bad \\q escape" .',
            '<http://ex/a> <http://ex/p> "bad \\uZZZZ" .',  # bad unicode
            '<http://ex/a> <http://ex/p> "x"@ .',           # empty language
            '"subject" <http://ex/p> <http://ex/o> .',      # literal subject
            # -- blank nodes -----------------------------------------------
            "_: <http://ex/p> <http://ex/o> .",             # empty label
            "<http://ex/a> _:p <http://ex/o> .",            # blank predicate
            # -- unsupported container syntax ------------------------------
            "<http://ex/a> <http://ex/p> ( 1 2 ) .",        # collection
            "<http://ex/a> <http://ex/p> [ ] .",            # anonymous blank
            # -- statement structure ---------------------------------------
            "<http://ex/a> <http://ex/p> <http://ex/o>",    # missing dot
            "<http://ex/a> <http://ex/p> .",                # missing object
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(ParseError):
            turtle.loads(document)

    def test_error_carries_the_line_number(self):
        document = (
            "@prefix ex: <http://ex/> .\n"
            "ex:a ex:p ex:b .\n"
            'ex:a ex:p "unterminated .\n'
        )
        with pytest.raises(ParseError) as excinfo:
            turtle.loads(document)
        assert excinfo.value.line_number == 3
        assert "line 3" in str(excinfo.value)

    def test_undeclared_prefix_names_the_label(self):
        with pytest.raises(ParseError) as excinfo:
            turtle.loads("@prefix ex: <http://ex/> .\nex:a mystery:p ex:b .")
        assert "mystery" in str(excinfo.value)

    def test_bad_list_error_is_actionable(self):
        with pytest.raises(ParseError) as excinfo:
            turtle.loads("<http://ex/a> <http://ex/p> ( <http://ex/x> ) .")
        assert "not" in str(excinfo.value).lower()

    def test_valid_document_after_error_line_is_not_reached(self):
        """The parser stops at the first malformed statement."""
        document = (
            "<http://ex/a> <http://ex/p> <http://ex/o> .\n"
            "<http://ex/broken .\n"
            "<http://ex/b> <http://ex/p> <http://ex/o> .\n"
        )
        with pytest.raises(ParseError):
            turtle.loads(document)


class TestLoadGraph:
    @pytest.fixture
    def files(self, tmp_path):
        graph = sample()
        nt = tmp_path / "g.nt"
        ttl = tmp_path / "g.ttl"
        mystery_turtle = tmp_path / "g1.rdf"
        mystery_ntriples = tmp_path / "g2.rdf"
        ntriples.dump_path(graph, nt)
        ttl.write_text(turtle.dumps(graph, {"ex": "http://ex/"}), encoding="utf-8")
        mystery_turtle.write_text(ttl.read_text(encoding="utf-8"), encoding="utf-8")
        mystery_ntriples.write_text(nt.read_text(encoding="utf-8"), encoding="utf-8")
        return graph, {
            "nt": nt,
            "ttl": ttl,
            "mystery_turtle": mystery_turtle,
            "mystery_ntriples": mystery_ntriples,
        }

    def test_sniff_format(self, files):
        _, paths = files
        assert sniff_format(paths["nt"]) == "ntriples"
        assert sniff_format(paths["ttl"]) == "turtle"
        assert sniff_format(paths["mystery_turtle"]) == "turtle"
        assert sniff_format(paths["mystery_ntriples"]) == "ntriples"

    def test_load_graph_all_formats(self, files):
        graph, paths = files
        for path in paths.values():
            assert set(load_graph(path).triples()) == set(graph.triples())

    def test_aligner_accepts_turtle_paths(self, files):
        from repro.align import AlignConfig, Aligner

        _, paths = files
        result = Aligner(AlignConfig(method="hybrid")).align(
            paths["nt"], paths["ttl"]
        )
        assert result.unaligned_counts() == (0, 0)
