"""Unit tests for the Turtle writer."""

from __future__ import annotations

from repro.io import turtle
from repro.model import RDFGraph, blank, lit, uri
from repro.model.namespaces import RDF


def sample() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("http://ex/a"), RDF["type"], uri("http://ex/Class"))
    g.add(uri("http://ex/a"), uri("http://ex/p"), lit("x", language="en"))
    g.add(uri("http://ex/a"), uri("http://ex/q"), blank("b"))
    g.add(blank("b"), uri("http://ex/p"), lit("5", datatype="http://www.w3.org/2001/XMLSchema#integer"))
    return g


class TestTurtleWriter:
    def test_prefix_compaction(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        assert "@prefix ex: <http://ex/> ." in out
        assert "ex:a" in out
        assert "<http://ex/a>" not in out

    def test_rdf_type_becomes_a(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        assert " a ex:Class" in out.replace("\n", " ")

    def test_language_and_datatype(self):
        out = turtle.dumps(sample(), {"xsd": "http://www.w3.org/2001/XMLSchema#"})
        assert '"x"@en' in out
        assert '"5"^^xsd:integer' in out

    def test_subject_grouping_uses_semicolons(self):
        out = turtle.dumps(sample(), {"ex": "http://ex/"})
        subject_lines = [chunk for chunk in out.split("\n\n") if "ex:a " in chunk]
        assert subject_lines, out
        assert ";" in subject_lines[0]

    def test_blank_nodes_rendered(self):
        out = turtle.dumps(sample())
        assert "_:b" in out

    def test_no_prefixes_is_fine(self):
        out = turtle.dumps(sample())
        assert "<http://ex/a>" in out

    def test_empty_graph(self):
        assert turtle.dumps(RDFGraph()) == ""

    def test_uri_not_compacted_when_local_name_unsafe(self):
        g = RDFGraph()
        g.add(uri("http://ex/a b"), uri("http://ex/p"), lit("x"))
        out = turtle.dumps(g, {"ex": "http://ex/"})
        assert "<http://ex/a b>" in out
