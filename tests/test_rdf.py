"""Unit tests for RDFGraph well-formedness (repro.model.rdf)."""

from __future__ import annotations

import pytest

from repro.exceptions import RDFWellFormednessError
from repro.model.graph import TripleGraph
from repro.model.labels import BLANK, Literal, URI
from repro.model.rdf import BlankNode, RDFGraph, blank, graph_from_triples, lit, uri


class TestTermFactories:
    def test_factories(self):
        assert uri("a") == URI("a")
        assert lit("a") == Literal("a")
        assert lit("a", language="en").language == "en"
        assert blank("b") == BlankNode("b")

    def test_blank_repr(self):
        assert repr(blank("x")) == "_:x"


class TestAdd:
    def test_label_uniqueness_by_construction(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        g.add(uri("a"), uri("q"), lit("x"))
        # 'a' and "x" were each created once
        assert g.num_nodes == 4  # a, p, q, "x"

    def test_literal_subject_rejected(self):
        g = RDFGraph()
        with pytest.raises(RDFWellFormednessError):
            g.add(lit("x"), uri("p"), uri("a"))

    def test_blank_predicate_rejected(self):
        g = RDFGraph()
        with pytest.raises(RDFWellFormednessError):
            g.add(uri("a"), blank("b"), uri("c"))

    def test_literal_predicate_rejected(self):
        g = RDFGraph()
        with pytest.raises(RDFWellFormednessError):
            g.add(uri("a"), lit("p"), uri("c"))

    def test_non_term_rejected(self):
        g = RDFGraph()
        with pytest.raises(RDFWellFormednessError):
            g.term("not a term")  # type: ignore[arg-type]

    def test_blank_nodes_distinct_by_name(self):
        g = RDFGraph()
        g.add(blank("b1"), uri("p"), lit("x"))
        g.add(blank("b2"), uri("p"), lit("x"))
        assert len(g.blanks()) == 2

    def test_same_value_uri_and_literal_coexist(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("a"))
        assert g.num_nodes == 3

    def test_add_all_and_graph_from_triples(self):
        triples = [
            (uri("a"), uri("p"), lit("x")),
            (uri("a"), uri("p"), blank("b")),
        ]
        g = graph_from_triples(triples)
        assert g.num_edges == 2
        assert g.has_uri("a") and not g.has_uri("zzz")


class TestValidate:
    def test_validate_accepts_well_formed(self, figure1_graphs):
        v1, v2 = figure1_graphs
        v1.validate()
        v2.validate()

    def test_validate_catches_duplicate_labels(self):
        # Build through the low-level API to bypass construction guarantees.
        g = RDFGraph()
        g.add_node("n1", URI("a"))
        g.add_node("n2", URI("a"))
        with pytest.raises(RDFWellFormednessError):
            g.validate()

    def test_validate_catches_literal_subject(self):
        g = RDFGraph()
        g.add_node("s", Literal("x"))
        g.add_node("p", URI("p"))
        g.add_node("o", URI("o"))
        g.add_edge("s", "p", "o")
        with pytest.raises(RDFWellFormednessError):
            g.validate()

    def test_validate_catches_blank_predicate(self):
        g = RDFGraph()
        g.add_node("s", URI("s"))
        g.add_node("p", BLANK)
        g.add_node("o", URI("o"))
        g.add_edge("s", "p", "o")
        with pytest.raises(RDFWellFormednessError):
            g.validate()

    def test_copy_preserves_type_and_content(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        clone = g.copy()
        assert isinstance(clone, RDFGraph)
        assert clone.num_edges == 1
        clone.add(uri("b"), uri("p"), lit("y"))
        assert g.num_edges == 1


class TestTriples:
    def test_triples_iterates_terms(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), blank("b"))
        (triple,) = list(g.triples())
        assert triple == (uri("a"), uri("p"), blank("b"))
