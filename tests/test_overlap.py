"""Tests for the overlap heuristic — Algorithm 1 (repro.similarity.overlap)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.overlap import (
    overlap_coefficient,
    overlap_match,
    probe_budget,
    set_difference_distance,
)

object_sets = st.frozensets(st.sampled_from("abcdefgh"), max_size=8)


class TestMeasures:
    def test_overlap_known_values(self):
        assert overlap_coefficient(frozenset("ab"), frozenset("ab")) == 1.0
        assert overlap_coefficient(frozenset("ab"), frozenset("bc")) == pytest.approx(1 / 3)
        assert overlap_coefficient(frozenset("ab"), frozenset("cd")) == 0.0

    def test_empty_conventions(self):
        assert overlap_coefficient(frozenset(), frozenset()) == 1.0
        assert set_difference_distance(frozenset(), frozenset()) == 0.0

    @given(first=object_sets, second=object_sets)
    def test_diff_is_one_minus_overlap(self, first, second):
        assert set_difference_distance(first, second) == pytest.approx(
            1.0 - overlap_coefficient(first, second)
        )

    @given(first=object_sets)
    def test_self_overlap_is_one(self, first):
        assert overlap_coefficient(first, first) == 1.0


class TestProbeBudget:
    def test_paper_rule(self):
        assert probe_budget(10, 0.65, "paper") == 7
        assert probe_budget(3, 0.65, "paper") == 2

    def test_safe_rule(self):
        assert probe_budget(10, 0.65, "safe") == 4
        assert probe_budget(3, 0.65, "safe") == 2

    def test_zero_size(self):
        assert probe_budget(0, 0.65, "paper") == 0

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            probe_budget(5, 0.5, "bogus")  # type: ignore[arg-type]

    @given(size=st.integers(1, 50), theta=st.floats(0.5, 1.0))
    def test_paper_rule_safe_for_high_theta(self, size, theta):
        """For θ ≥ (k+1)/2k the paper budget covers the safe budget."""
        if theta >= (size + 1) / (2 * size):
            assert probe_budget(size, theta, "paper") >= probe_budget(
                size, theta, "safe"
            )


def word_characterizer(words: dict):
    return lambda node: frozenset(words[node])


class TestOverlapMatch:
    def test_finds_close_pairs(self):
        words = {
            "a1": {"experimental", "factor", "ontology"},
            "b1": {"experimental", "factor", "ontology", "v2"},
            "b2": {"totally", "different"},
        }
        result = overlap_match(
            ["a1"],
            ["b1", "b2"],
            theta=0.6,
            characterize=word_characterizer(words),
            distance=lambda n, m: 0.1,
        )
        assert set(result.edges) == {("a1", "b1")}
        assert result.edges[("a1", "b1")] == 0.1

    def test_distance_filter_rejects(self):
        words = {"a1": {"x", "y"}, "b1": {"x", "y"}}
        result = overlap_match(
            ["a1"],
            ["b1"],
            theta=0.5,
            characterize=word_characterizer(words),
            distance=lambda n, m: 0.9,
        )
        assert result.is_empty

    def test_empty_characterization_skipped(self):
        words = {"a1": set(), "b1": {"x"}}
        result = overlap_match(
            ["a1"], ["b1"], 0.5, word_characterizer(words), lambda n, m: 0.0
        )
        assert result.is_empty

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            overlap_match([], [], 0.0, lambda n: frozenset(), lambda n, m: 0.0)

    def test_safe_probe_finds_low_theta_candidates(self):
        """At θ < 0.5 the paper rule can miss; the safe rule cannot.

        char(a) has 5 objects, exactly the *most frequent* one is shared:
        the paper budget ⌈5·0.4⌉ = 2 probes the two rarest objects and
        misses; the safe budget 5−2+1 = 4 probes enough to find it.
        """
        words = {
            "a": {"rare1", "rare2", "rare3", "rare4", "common"},
            "b_common1": {"common", "x1", "x2"},
            "b_rare_holder": {"y1"},
        }
        # Frequencies over B: common appears once, y1 once; rare* never.
        # Overlap(a, b_common1) = 1/7 < θ, so give them more shared objects.
        words["a"] = {"common", "x1", "x2", "rare1", "rare2"}
        # overlap = 3/7 = 0.43 ≥ 0.4
        kwargs = dict(
            source_nodes=["a"],
            target_nodes=["b_common1", "b_rare_holder"],
            theta=0.4,
            characterize=word_characterizer(words),
            distance=lambda n, m: 0.0,
        )
        paper = overlap_match(probe="paper", **kwargs)
        safe = overlap_match(probe="safe", **kwargs)
        assert ("a", "b_common1") in safe.edges
        # The paper rule probes ⌈5·0.4⌉ = 2 least frequent objects
        # (rare1, rare2 — frequency 0), both missing from the index.
        assert ("a", "b_common1") not in paper.edges

    def test_partial_order_objects_take_repr_tiebreak(self):
        """Frozenset objects (where ``<`` is subset inclusion, not a total
        order) must not crash or silently depend on set iteration order —
        they take the repr tie-break path of the probe sort."""
        words = {
            "a": {frozenset({1}), frozenset({2})},
            "b1": {frozenset({1})},
        }
        result = overlap_match(
            ["a"], ["b1"], 0.5, word_characterizer(words),
            lambda n, m: 0.0, probe="safe",
        )
        assert ("a", "b1") in result.edges

    def test_candidates_verified_once(self):
        """A target reachable through several objects is tested once."""
        calls = []

        def counting_distance(n, m):
            calls.append((n, m))
            return 0.1

        words = {"a": {"x", "y"}, "b": {"x", "y"}}
        overlap_match(["a"], ["b"], 0.5, word_characterizer(words), counting_distance)
        assert calls == [("a", "b")]
