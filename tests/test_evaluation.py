"""Tests for the evaluation layer (metrics, precision, matrices, reporting)."""

from __future__ import annotations

import pytest

from repro.core.deblank import deblank_partition
from repro.core.trivial import trivial_partition
from repro.datasets.ground_truth import GroundTruth
from repro.evaluation.matrices import (
    VersionMatrix,
    difference_matrix,
    gradient_violations,
    pairwise_matrix,
)
from repro.evaluation.metrics import (
    aligned_edge_count,
    aligned_edge_ratio,
    ground_truth_entity_count,
    matched_entity_count,
    recall_against_truth,
    total_entity_count,
)
from repro.evaluation.precision import PrecisionCounts, precision_counts
from repro.evaluation.reporting import (
    format_number,
    render_bars,
    render_heatmap,
    render_matrix,
    render_stacked_fractions,
    render_table,
)
from repro.evaluation.timing import StopwatchSeries, time_call
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner


@pytest.fixture
def simple_pair():
    g1 = RDFGraph()
    g1.add(uri("a"), uri("p"), lit("x"))
    g1.add(uri("gone"), uri("p"), lit("y"))
    g2 = RDFGraph()
    g2.add(uri("a"), uri("p"), lit("x"))
    g2.add(uri("new"), uri("p"), lit("z"))
    union = combine(g1, g2)
    truth = GroundTruth(
        {uri("a"): uri("a"), uri("p"): uri("p"), lit("x"): lit("x")}
    )
    return union, truth


class TestEdgeMetrics:
    def test_self_alignment_ratio_is_one(self, figure3_graphs):
        g1, __ = figure3_graphs
        union = combine(g1, g1.copy())
        partition = deblank_partition(union, ColorInterner())
        assert aligned_edge_ratio(union, partition) == 1.0

    def test_trivial_self_alignment_below_one_with_blanks(self, figure3_graphs):
        g1, __ = figure3_graphs
        union = combine(g1, g1.copy())
        partition = trivial_partition(union, ColorInterner())
        assert aligned_edge_ratio(union, partition) < 1.0

    def test_ratio_and_count_consistent(self, simple_pair):
        union, __ = simple_pair
        partition = trivial_partition(union, ColorInterner())
        count = aligned_edge_count(union, partition)
        ratio = aligned_edge_ratio(union, partition)
        assert count == 1  # only a-p-"x" aligns
        assert ratio == pytest.approx(1 / 3)  # of edges {apx, gone-p-y, new-p-z}

    def test_empty_graphs(self):
        union = combine(RDFGraph(), RDFGraph())
        partition = trivial_partition(union, ColorInterner())
        assert aligned_edge_ratio(union, partition) == 1.0


class TestEntityCounts:
    def test_counts(self, simple_pair):
        union, truth = simple_pair
        partition = trivial_partition(union, ColorInterner())
        assert matched_entity_count(union, partition) == 3  # a, p, "x"
        assert ground_truth_entity_count(union, truth) == 3
        assert total_entity_count(union, truth) == 5 + 5 - 3
        assert recall_against_truth(union, partition, truth) == 1.0

    def test_recall_with_missed_pair(self, simple_pair):
        union, truth = simple_pair
        partition = trivial_partition(union, ColorInterner())
        harder = GroundTruth(
            {uri("a"): uri("a"), uri("gone"): uri("new")}
        )
        assert recall_against_truth(union, partition, harder) == pytest.approx(0.5)

    def test_recall_empty_truth(self, simple_pair):
        union, __ = simple_pair
        partition = trivial_partition(union, ColorInterner())
        assert recall_against_truth(union, partition, GroundTruth({})) == 1.0


class TestPrecision:
    def test_classification(self, simple_pair):
        union, truth = simple_pair
        partition = trivial_partition(union, ColorInterner())
        counts = precision_counts(union, partition, truth)
        # Every node is exact here: shared nodes align 1-1, gone/new and
        # their private literals align to nothing, matching the truth.
        assert counts.missing == 0
        assert counts.false == 0
        assert counts.inclusive == 0
        assert counts.exact == counts.total == 10

    def test_false_and_missing(self, simple_pair):
        union, __ = simple_pair
        partition = trivial_partition(union, ColorInterner())
        # Claim gone<->new in the truth: both are unaligned -> 2 missing.
        truth = GroundTruth({uri("gone"): uri("new")})
        counts = precision_counts(union, partition, truth)
        assert counts.missing == 2
        # Shared-label alignments (a, p, x on both sides) are now "false".
        assert counts.false == 6

    def test_inclusive(self):
        g1 = RDFGraph()
        g1.add(uri("a"), uri("p"), lit("x"))
        g2 = RDFGraph()
        g2.add(uri("a"), uri("p"), lit("x"))
        union = combine(g1, g2)
        colors = {node: 0 for node in union.nodes()}  # everything together
        truth = GroundTruth({uri("a"): uri("a")})
        counts = precision_counts(union, Partition(colors), truth)
        assert counts.inclusive == 2  # both 'a' nodes see extra partners

    def test_counts_add(self):
        a = PrecisionCounts(1, 2, 3, 4)
        b = PrecisionCounts(10, 20, 30, 40)
        total = a + b
        assert (total.exact, total.inclusive, total.missing, total.false) == (
            11,
            22,
            33,
            44,
        )
        assert a.fraction("exact") == pytest.approx(0.1)
        assert PrecisionCounts(0, 0, 0, 0).fraction("exact") == 0.0


class TestMatrices:
    def test_pairwise_matrix_diagonal(self, figure3_graphs):
        g1, g2 = figure3_graphs
        matrix = pairwise_matrix(
            [g1, g2],
            lambda union: aligned_edge_ratio(
                union, deblank_partition(union, ColorInterner())
            ),
        )
        assert matrix[(0, 0)] == 1.0
        assert matrix[(1, 1)] == 1.0
        assert 0 < matrix[(0, 1)] <= 1.0

    def test_symmetric_fill(self, figure3_graphs):
        g1, g2 = figure3_graphs
        calls = []

        def counting_cell(union):
            calls.append(1)
            return 1.0

        matrix = pairwise_matrix([g1, g2], counting_cell, symmetric_fill=True)
        assert len(calls) == 3  # (0,0), (0,1), (1,1)
        assert matrix[(1, 0)] == matrix[(0, 1)]

    def test_difference_matrix(self):
        a = VersionMatrix(size=1, values={(0, 0): 5.0})
        b = VersionMatrix(size=1, values={(0, 0): 3.0})
        assert difference_matrix(a, b)[(0, 0)] == 2.0
        with pytest.raises(ValueError):
            difference_matrix(a, VersionMatrix(size=2))

    def test_gradient_violations(self):
        matrix = VersionMatrix(size=3)
        for source in range(3):
            for target in range(3):
                matrix[(source, target)] = 1.0 - 0.2 * abs(source - target)
        assert gradient_violations(matrix) == []
        matrix[(0, 2)] = 2.0  # further from diagonal yet larger
        assert (0, 2) in gradient_violations(matrix)

    def test_accessors(self):
        matrix = VersionMatrix(size=2, values={(0, 0): 1.0, (1, 0): 2.0, (0, 1): 3.0, (1, 1): 4.0})
        assert matrix.diagonal() == [1.0, 4.0]
        assert matrix.row(0) == [1.0, 2.0]
        assert matrix.max_value() == 4.0 and matrix.min_value() == 1.0
        assert len(matrix.off_diagonal_pairs()) == 2


class TestReporting:
    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(5) == "5"
        assert format_number(0.5) == "0.5"
        assert format_number(1.0) == "1"
        assert format_number(1.23456, 3) == "1.235"
        assert "e" in format_number(1e-9)
        assert format_number("x") == "x"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_render_matrix(self):
        matrix = VersionMatrix(size=2, values={(0, 0): 1, (0, 1): 2, (1, 0): 3, (1, 1): 4})
        out = render_matrix(matrix)
        assert "tgt\\src" in out

    def test_render_heatmap_shape(self):
        matrix = VersionMatrix(size=2, values={(0, 0): 0.0, (0, 1): 1.0, (1, 0): 0.5, (1, 1): 1.0})
        out = render_heatmap(matrix)
        assert len(out.splitlines()) == 3

    def test_render_bars(self):
        out = render_bars({"hybrid": 2.0, "overlap": 4.0})
        assert "hybrid" in out and "#" in out
        assert render_bars({}) == "(empty)"

    def test_render_stacked_fractions(self):
        out = render_stacked_fractions(
            [("pair", {"exact": 8, "missing": 2})], ("exact", "missing"), width=10
        )
        assert "exact=8" in out and "#" in out


class TestTiming:
    def test_time_call(self):
        timed = time_call(lambda: 42)
        assert timed.value == 42 and timed.seconds >= 0.0

    def test_stopwatch_series(self):
        series = StopwatchSeries()
        value = series.measure("m", 1, lambda: "ok")
        assert value == "ok"
        series.record("m", 2, 0.5)
        assert series.names() == ["m"]
        assert series.versions() == [1, 2]
        assert series.get("m", 2) == 0.5
        rows = series.as_rows()
        assert rows[1] == {"version": 2, "m": 0.5}
