"""Tests for σEdit (repro.similarity.edit_distance) — paper Figure 7."""

from __future__ import annotations

import pytest

from repro.core.hybrid import hybrid_partition
from repro.exceptions import ExperimentError
from repro.model import RDFGraph, combine, lit, uri
from repro.partition.interner import ColorInterner
from repro.similarity.edit_distance import EditDistance


@pytest.fixture
def figure7_edit(figure7_combined):
    interner = ColorInterner()
    base = hybrid_partition(figure7_combined, interner)
    return figure7_combined, EditDistance(
        figure7_combined, base=base, interner=interner
    )


class TestFigure7Values:
    """Every number stated in Example 5 (under our σEdit reading)."""

    def test_literal_pair(self, figure7_edit):
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(lit("abc")), graph.from_target(lit("ac"))
        ) == pytest.approx(1 / 3)

    def test_u_pair(self, figure7_edit):
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(uri("u")), graph.from_target(uri("u2"))
        ) == pytest.approx(1 / 3)

    def test_v_pair(self, figure7_edit):
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(uri("v")), graph.from_target(uri("v2"))
        ) == pytest.approx(1 / 6)

    def test_w_pair_distance_propagation(self, figure7_edit):
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(uri("w")), graph.from_target(uri("w2"))
        ) == pytest.approx(1 / 4)

    def test_aligned_node_pairs_pinned_at_one(self, figure7_edit):
        """σEdit("a", "ac") = 1 even though the raw edit distance is 1/2."""
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(lit("a")), graph.from_target(lit("ac"))
        ) == 1.0

    def test_hybrid_aligned_pairs_are_zero(self, figure7_edit):
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(lit("c")), graph.from_target(lit("c"))
        ) == 0.0
        assert edit.distance(
            graph.from_source(uri("p")), graph.from_target(uri("p"))
        ) == 0.0

    def test_cross_pair_u_vprime(self, figure7_edit):
        """Example 5's aside; our reading gives 2/3 (DESIGN.md §5.1)."""
        graph, edit = figure7_edit
        assert edit.distance(
            graph.from_source(uri("u")), graph.from_target(uri("v2"))
        ) == pytest.approx(2 / 3)


class TestProperties:
    def test_distances_in_unit_interval(self, figure7_edit):
        graph, edit = figure7_edit
        for n in graph.source_nodes:
            for m in graph.target_nodes:
                assert 0.0 <= edit.distance(n, m) <= 1.0

    def test_aligned_pairs_iterator_respects_threshold(self, figure7_edit):
        graph, edit = figure7_edit
        for __, __, value in edit.aligned_pairs(theta=0.5):
            assert value <= 0.5

    def test_aligned_pairs_contains_figure7_matches(self, figure7_edit):
        graph, edit = figure7_edit
        pairs = {
            (n, m) for n, m, __ in edit.aligned_pairs(theta=0.5)
        }
        assert (graph.from_source(uri("w")), graph.from_target(uri("w2"))) in pairs
        assert (graph.from_source(lit("abc")), graph.from_target(lit("ac"))) in pairs

    def test_rounds_recorded(self, figure7_edit):
        __, edit = figure7_edit
        assert edit.rounds_used >= 1

    def test_sink_pair_distance_zero(self):
        """Two unaligned sinks have identical (empty) content."""
        g1 = RDFGraph()
        g1.add(uri("x"), uri("p"), uri("sink1"))
        g2 = RDFGraph()
        g2.add(uri("x"), uri("p"), uri("sink2"))
        union = combine(g1, g2)
        edit = EditDistance(union)
        # sink1/sink2 are blanked and aligned by hybrid already -> 0.
        assert edit.distance(
            union.from_source(uri("sink1")), union.from_target(uri("sink2"))
        ) == 0.0

    def test_max_pairs_guard(self, figure7_combined):
        with pytest.raises(ExperimentError):
            EditDistance(figure7_combined, max_pairs=1)


class TestCyclicConvergence:
    def test_cycles_converge(self):
        g1 = RDFGraph()
        g1.add(uri("a1"), uri("p"), uri("b1"))
        g1.add(uri("b1"), uri("p"), uri("a1"))
        g1.add(uri("a1"), uri("q"), lit("anchor-one"))
        g2 = RDFGraph()
        g2.add(uri("a2"), uri("p"), uri("b2"))
        g2.add(uri("b2"), uri("p"), uri("a2"))
        g2.add(uri("a2"), uri("q"), lit("anchor-two"))
        union = combine(g1, g2)
        edit = EditDistance(union, epsilon=1e-9, max_rounds=500)
        value = edit.distance(
            union.from_source(uri("a1")), union.from_target(uri("a2"))
        )
        assert 0.0 <= value <= 1.0
