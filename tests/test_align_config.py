"""AlignConfig: validation, composition and serialization."""

from __future__ import annotations

import pytest

from repro.align import AlignConfig, Aligner
from repro.align.config import PROBE_RULES, SPLITTERS
from repro.exceptions import (
    AlignError,
    ConfigError,
    ExperimentError,
    ReproError,
    ThresholdError,
    UnknownEngineError,
    UnknownMethodError,
)
from repro.similarity.string_distance import character_set, split_words


class TestDefaults:
    def test_default_config(self):
        config = AlignConfig()
        assert config.method == "hybrid"
        assert config.theta == 0.65
        assert config.engine == "reference"
        assert config.probe == "paper"
        assert config.splitter is split_words
        assert config.jobs == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            AlignConfig().theta = 0.5  # type: ignore[misc]

    def test_splitter_resolved_by_name(self):
        assert AlignConfig(splitter="chars").splitter is character_set
        for name, callable_ in SPLITTERS.items():
            assert AlignConfig(splitter=name).splitter is callable_

    def test_splitter_name_roundtrip(self):
        assert AlignConfig(splitter="qgrams").splitter_name == "qgrams"

        def custom(value: str) -> frozenset:
            return frozenset(value)

        assert AlignConfig(splitter=custom).splitter_name == "custom"

    def test_to_dict_is_json_friendly(self):
        import json

        payload = AlignConfig(method="overlap", theta=0.5).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["splitter"] == "words"


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            AlignConfig(method="bogus")

    def test_unknown_engine(self):
        with pytest.raises(UnknownEngineError):
            AlignConfig(engine="sparse")

    @pytest.mark.parametrize("theta", [-0.1, 1.1, 42, "high", None])
    def test_bad_theta(self, theta):
        with pytest.raises(ThresholdError):
            AlignConfig(theta=theta)  # type: ignore[arg-type]

    @pytest.mark.parametrize("theta", [0.0, 0.5, 1.0, 1])
    def test_theta_bounds_inclusive(self, theta):
        assert AlignConfig(theta=theta).theta == theta

    def test_bad_probe(self):
        with pytest.raises(ConfigError):
            AlignConfig(probe="aggressive")
        assert set(PROBE_RULES) == {"paper", "safe"}

    def test_bad_splitter(self):
        with pytest.raises(ConfigError):
            AlignConfig(splitter="letters")
        with pytest.raises(ConfigError):
            AlignConfig(splitter=42)  # type: ignore[arg-type]

    @pytest.mark.parametrize("jobs", [-1, 1.5, "two"])
    def test_bad_jobs(self, jobs):
        with pytest.raises(ConfigError):
            AlignConfig(jobs=jobs)  # type: ignore[arg-type]

    def test_errors_are_align_and_repro_errors(self):
        """The whole hierarchy is catchable at every historical level."""
        for bad in (
            lambda: AlignConfig(method="bogus"),
            lambda: AlignConfig(engine="sparse"),
            lambda: AlignConfig(theta=2.0),
        ):
            with pytest.raises(AlignError):
                bad()
            with pytest.raises(ReproError):
                bad()
        # Unknown method/engine stay catchable as the legacy ExperimentError.
        with pytest.raises(ExperimentError):
            AlignConfig(method="bogus")
        with pytest.raises(ExperimentError):
            AlignConfig(engine="sparse")


class TestEvolve:
    def test_evolve_returns_new_validated_config(self):
        base = AlignConfig()
        evolved = base.evolve(method="overlap", theta=0.8)
        assert base.method == "hybrid" and base.theta == 0.65
        assert evolved.method == "overlap" and evolved.theta == 0.8

    def test_evolve_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            AlignConfig().evolve(thresh=0.5)

    def test_evolve_revalidates(self):
        with pytest.raises(ThresholdError):
            AlignConfig().evolve(theta=3.0)

    def test_aligner_accepts_overrides(self):
        aligner = Aligner(AlignConfig(), method="trivial", engine="dense")
        assert aligner.config.method == "trivial"
        assert aligner.config.engine == "dense"

    def test_aligner_evolve_shares_caches(self):
        aligner = Aligner()
        sibling = aligner.evolve(theta=0.8)
        assert sibling.config.theta == 0.8
        assert sibling._blocks is aligner._blocks
        assert sibling._split_caches is aligner._split_caches
