"""Persistence backends and the VersionStore save/load round trip.

MemoryBackend and DiskBackend speak one interface; a store persisted
through either must come back with bit-identical CSR blocks and
byte-identical reports — the differential oracle re-checks the same
contract per scenario (``--axis persistence``), these tests pin the
backend mechanics (layout, read-only guard, identity pinning).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.align import AlignConfig, Aligner
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.exceptions import ExperimentError
from repro.experiments.persist import (
    MANIFEST_NAME,
    DiskBackend,
    MemoryBackend,
    describe,
    iter_report_keys,
    resolve_backend,
)
from repro.experiments.store import VersionStore

numpy = pytest.importorskip("numpy")


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DiskBackend(tmp_path / "store")


@pytest.fixture
def store() -> VersionStore:
    store = VersionStore(SyntheticGenerator.shared(SCENARIOS["small_er"]))
    store.prepare(summaries=True, csr=True)
    return store


class TestBackendInterface:
    def test_blob_roundtrip(self, backend):
        backend.put_blob("graphs/0.nt", b"<a> <b> <c> .\n")
        backend.flush()
        assert backend.get_blob("graphs/0.nt") == b"<a> <b> <c> .\n"
        assert backend.get_blob("missing") is None

    def test_array_roundtrip_readonly(self, backend):
        payload = numpy.array([1, 5, 2**40, -3], dtype=numpy.int64)
        backend.put_array("csr/0/offsets", payload)
        backend.flush()
        view = backend.get_array("csr/0/offsets")
        assert view.tobytes() == payload.tobytes()
        with pytest.raises((ValueError, TypeError)):
            view[0] = 99
        assert backend.get_array("missing") is None

    def test_empty_array(self, backend):
        backend.put_array("csr/0/objects", numpy.empty(0, dtype=numpy.int64))
        backend.flush()
        assert len(backend.get_array("csr/0/objects")) == 0

    def test_json_roundtrip(self, backend):
        identity = {"family": "efo", "scale": 0.35, "versions": 10}
        backend.put_json("store/identity", identity)
        backend.flush()
        assert backend.get_json("store/identity") == identity

    def test_overwrite_key(self, backend):
        backend.put_blob("graphs/0.nt", b"old")
        backend.put_blob("graphs/0.nt", b"new bytes")
        backend.flush()
        assert backend.get_blob("graphs/0.nt") == b"new bytes"

    def test_keys_planes(self, backend):
        backend.put_blob("b/one", b"x")
        backend.put_array("a/one", numpy.array([1], dtype=numpy.int64))
        backend.put_json("j/one", 1)
        assert backend.keys() == {
            "blob": ["b/one"], "array": ["a/one"], "json": ["j/one"],
        }


class TestDiskLayout:
    def test_layout_and_reopen(self, tmp_path):
        root = tmp_path / "archive"
        backend = DiskBackend(root)
        backend.put_blob("graphs/0.nt", b"bytes")
        backend.put_array("csr/0/offsets", numpy.array([0, 1], dtype=numpy.int64))
        backend.put_json("store/versions", 1)
        backend.flush()
        assert sorted(os.listdir(root)) == ["blobs", "blocks", MANIFEST_NAME]
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["schema"] == "repro/version-store"

        reopened = DiskBackend.open(root)
        assert reopened.readonly
        assert reopened.get_blob("graphs/0.nt") == b"bytes"
        assert reopened.get_json("store/versions") == 1

    def test_readonly_guard(self, tmp_path):
        root = tmp_path / "archive"
        writer = DiskBackend(root)
        writer.put_json("store/versions", 1)
        writer.flush()
        reader = DiskBackend.open(root)
        with pytest.raises(ExperimentError, match="read-only"):
            reader.put_blob("x", b"y")

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no persisted store"):
            DiskBackend.open(tmp_path / "nowhere")

    def test_resolve_backend(self, tmp_path):
        resolved = resolve_backend(tmp_path / "fresh")
        assert isinstance(resolved, DiskBackend) and not resolved.readonly
        memory = MemoryBackend()
        assert resolve_backend(memory) is memory
        with pytest.raises(ExperimentError, match="backend interface"):
            resolve_backend(object())
        with pytest.raises(ExperimentError):
            resolve_backend(None)


class TestStoreRoundTrip:
    def test_loaded_store_matches_original(self, store, backend):
        store.save(backend)
        loaded = VersionStore.load(backend)
        assert loaded.versions == store.versions
        assert loaded.backend is backend
        for version in range(store.versions):
            original = store.csr_block(version)
            reloaded = loaded.csr_block(version)
            assert list(reloaded.nodes) == list(original.nodes)
            assert reloaded.out_offsets.tobytes() == original.out_offsets.tobytes()
            assert (
                reloaded.out_predicates.tobytes()
                == original.out_predicates.tobytes()
            )
            assert reloaded.out_objects.tobytes() == original.out_objects.tobytes()
            # Artifacts came back warm: summaries and edge tokens are hits.
            assert version in loaded._summaries
            assert loaded.edge_tokens(version, "deblank") == store.edge_tokens(
                version, "deblank"
            )

    def test_memory_and_disk_agree_byte_for_byte(self, store, tmp_path):
        memory = MemoryBackend()
        disk = DiskBackend(tmp_path / "store")
        store.save(memory)
        store.save(disk)
        config = AlignConfig(method="deblank")
        reports = []
        for loaded in (VersionStore.load(memory), VersionStore.load(disk)):
            graphs = loaded.graphs()
            reports.append(
                Aligner(config).align(graphs[0], graphs[1]).report(config).to_json()
            )
        assert reports[0] == reports[1]

    def test_identity_pinning(self, store, backend):
        store.identity = {"family": "synthetic_er", "scale": 1.0}
        store.save(backend)
        loaded = VersionStore.load(
            backend, expect={"family": "synthetic_er", "scale": 1.0}
        )
        assert loaded.identity["family"] == "synthetic_er"
        with pytest.raises(ExperimentError, match="identity mismatch"):
            VersionStore.load(backend, expect={"family": "gtopdb"})

    def test_load_empty_backend_raises(self):
        with pytest.raises(ExperimentError, match="no persisted version store"):
            VersionStore.load(MemoryBackend())

    def test_report_roundtrip_and_keys(self, store, backend):
        config = AlignConfig(method="deblank")
        graphs = store.graphs()
        report = Aligner(config).align(graphs[0], graphs[1]).report(config)
        store.save(backend)
        store.put_report("pair-0-1", report, backend=backend)
        assert iter_report_keys(backend) == ["pair-0-1"]
        loaded = VersionStore.load(backend)
        again = loaded.get_report("pair-0-1")
        assert again.to_json() == report.to_json()
        assert loaded.get_report("missing") is None

    def test_describe_lists_identity_and_planes(self, store, backend):
        store.identity = {"family": "synthetic_er", "scale": 1.0}
        store.save(backend)
        lines = describe(backend)
        assert any(line.startswith("store: family=synthetic_er") for line in lines)
        assert any(line.startswith("array  csr/0/offsets") for line in lines)
        assert any(line.startswith("blob   graphs/0.nt") for line in lines)
