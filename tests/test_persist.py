"""Persistence backends and the VersionStore save/load round trip.

MemoryBackend and DiskBackend speak one interface; a store persisted
through either must come back with bit-identical CSR blocks and
byte-identical reports — the differential oracle re-checks the same
contract per scenario (``--axis persistence``), these tests pin the
backend mechanics (layout, read-only guard, identity pinning).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.align import AlignConfig, Aligner
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.exceptions import CorruptStoreError, ExperimentError
from repro.experiments.persist import (
    MANIFEST_NAME,
    DiskBackend,
    MemoryBackend,
    describe,
    iter_report_keys,
    resolve_backend,
)
from repro.experiments.store import VersionStore

numpy = pytest.importorskip("numpy")


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DiskBackend(tmp_path / "store")


@pytest.fixture
def store() -> VersionStore:
    store = VersionStore(SyntheticGenerator.shared(SCENARIOS["small_er"]))
    store.prepare(summaries=True, csr=True)
    return store


class TestBackendInterface:
    def test_blob_roundtrip(self, backend):
        backend.put_blob("graphs/0.nt", b"<a> <b> <c> .\n")
        backend.flush()
        assert backend.get_blob("graphs/0.nt") == b"<a> <b> <c> .\n"
        assert backend.get_blob("missing") is None

    def test_array_roundtrip_readonly(self, backend):
        payload = numpy.array([1, 5, 2**40, -3], dtype=numpy.int64)
        backend.put_array("csr/0/offsets", payload)
        backend.flush()
        view = backend.get_array("csr/0/offsets")
        assert view.tobytes() == payload.tobytes()
        with pytest.raises((ValueError, TypeError)):
            view[0] = 99
        assert backend.get_array("missing") is None

    def test_empty_array(self, backend):
        backend.put_array("csr/0/objects", numpy.empty(0, dtype=numpy.int64))
        backend.flush()
        assert len(backend.get_array("csr/0/objects")) == 0

    def test_json_roundtrip(self, backend):
        identity = {"family": "efo", "scale": 0.35, "versions": 10}
        backend.put_json("store/identity", identity)
        backend.flush()
        assert backend.get_json("store/identity") == identity

    def test_overwrite_key(self, backend):
        backend.put_blob("graphs/0.nt", b"old")
        backend.put_blob("graphs/0.nt", b"new bytes")
        backend.flush()
        assert backend.get_blob("graphs/0.nt") == b"new bytes"

    def test_keys_planes(self, backend):
        backend.put_blob("b/one", b"x")
        backend.put_array("a/one", numpy.array([1], dtype=numpy.int64))
        backend.put_json("j/one", 1)
        assert backend.keys() == {
            "blob": ["b/one"], "array": ["a/one"], "json": ["j/one"],
        }


class TestDiskLayout:
    def test_layout_and_reopen(self, tmp_path):
        root = tmp_path / "archive"
        backend = DiskBackend(root)
        backend.put_blob("graphs/0.nt", b"bytes")
        backend.put_array("csr/0/offsets", numpy.array([0, 1], dtype=numpy.int64))
        backend.put_json("store/versions", 1)
        backend.flush()
        assert sorted(os.listdir(root)) == ["blobs", "blocks", MANIFEST_NAME]
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["schema"] == "repro/version-store"

        reopened = DiskBackend.open(root)
        assert reopened.readonly
        assert reopened.get_blob("graphs/0.nt") == b"bytes"
        assert reopened.get_json("store/versions") == 1

    def test_readonly_guard(self, tmp_path):
        root = tmp_path / "archive"
        writer = DiskBackend(root)
        writer.put_json("store/versions", 1)
        writer.flush()
        reader = DiskBackend.open(root)
        with pytest.raises(ExperimentError, match="read-only"):
            reader.put_blob("x", b"y")

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no persisted store"):
            DiskBackend.open(tmp_path / "nowhere")

    def test_resolve_backend(self, tmp_path):
        resolved = resolve_backend(tmp_path / "fresh")
        assert isinstance(resolved, DiskBackend) and not resolved.readonly
        memory = MemoryBackend()
        assert resolve_backend(memory) is memory
        with pytest.raises(ExperimentError, match="backend interface"):
            resolve_backend(object())
        with pytest.raises(ExperimentError):
            resolve_backend(None)


class TestStoreRoundTrip:
    def test_loaded_store_matches_original(self, store, backend):
        store.save(backend)
        loaded = VersionStore.load(backend)
        assert loaded.versions == store.versions
        assert loaded.backend is backend
        for version in range(store.versions):
            original = store.csr_block(version)
            reloaded = loaded.csr_block(version)
            assert list(reloaded.nodes) == list(original.nodes)
            assert reloaded.out_offsets.tobytes() == original.out_offsets.tobytes()
            assert (
                reloaded.out_predicates.tobytes()
                == original.out_predicates.tobytes()
            )
            assert reloaded.out_objects.tobytes() == original.out_objects.tobytes()
            # Artifacts came back warm: summaries and edge tokens are hits.
            assert version in loaded._summaries
            assert loaded.edge_tokens(version, "deblank") == store.edge_tokens(
                version, "deblank"
            )

    def test_memory_and_disk_agree_byte_for_byte(self, store, tmp_path):
        memory = MemoryBackend()
        disk = DiskBackend(tmp_path / "store")
        store.save(memory)
        store.save(disk)
        config = AlignConfig(method="deblank")
        reports = []
        for loaded in (VersionStore.load(memory), VersionStore.load(disk)):
            graphs = loaded.graphs()
            reports.append(
                Aligner(config).align(graphs[0], graphs[1]).report(config).to_json()
            )
        assert reports[0] == reports[1]

    def test_identity_pinning(self, store, backend):
        store.identity = {"family": "synthetic_er", "scale": 1.0}
        store.save(backend)
        loaded = VersionStore.load(
            backend, expect={"family": "synthetic_er", "scale": 1.0}
        )
        assert loaded.identity["family"] == "synthetic_er"
        with pytest.raises(ExperimentError, match="identity mismatch"):
            VersionStore.load(backend, expect={"family": "gtopdb"})

    def test_load_empty_backend_raises(self):
        with pytest.raises(ExperimentError, match="no persisted version store"):
            VersionStore.load(MemoryBackend())

    def test_report_roundtrip_and_keys(self, store, backend):
        config = AlignConfig(method="deblank")
        graphs = store.graphs()
        report = Aligner(config).align(graphs[0], graphs[1]).report(config)
        store.save(backend)
        store.put_report("pair-0-1", report, backend=backend)
        assert iter_report_keys(backend) == ["pair-0-1"]
        loaded = VersionStore.load(backend)
        again = loaded.get_report("pair-0-1")
        assert again.to_json() == report.to_json()
        assert loaded.get_report("missing") is None

    def test_describe_lists_identity_and_planes(self, store, backend):
        store.identity = {"family": "synthetic_er", "scale": 1.0}
        store.save(backend)
        lines = describe(backend)
        assert any(line.startswith("store: family=synthetic_er") for line in lines)
        assert any(line.startswith("array  csr/0/offsets") for line in lines)
        assert any(line.startswith("blob   graphs/0.nt") for line in lines)


def _flip_first_byte(path) -> None:
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCorruptionDetection:
    """CRC32 checksums, manifest versioning, quarantine and rebuild."""

    def _saved(self, store, tmp_path):
        root = tmp_path / "archive"
        store.save(DiskBackend(root))
        return root

    def test_manifest_v2_records_checksums(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["version"] == 2
        for table, size_key in (
            (manifest["blobs"], "nbytes"),
            (manifest["arrays"], "count"),
        ):
            assert table, "expected persisted entries"
            for entry in table.values():
                assert isinstance(entry["crc32"], int)
                assert isinstance(entry[size_key], int)

    def test_truncated_manifest_raises(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        full = (root / MANIFEST_NAME).read_text()
        (root / MANIFEST_NAME).write_text(full[: len(full) // 2])
        with pytest.raises(CorruptStoreError, match="manifest"):
            DiskBackend.open(root)

    def test_future_manifest_version_rejected(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ExperimentError, match="version"):
            DiskBackend.open(root)

    def test_v1_manifest_accepted_size_only(self, store, tmp_path):
        # Archives written before checksumming (no crc32, version 1)
        # still open and read; verification falls back to sizes.
        root = self._saved(store, tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["version"] = 1
        for table in (manifest["blobs"], manifest["arrays"]):
            for entry in table.values():
                entry.pop("crc32", None)
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        backend = DiskBackend.open(root)
        assert backend.get_blob("graphs/0.nt") is not None
        assert backend.verify() == []

    def test_bitflip_detected_on_read(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        backend = DiskBackend.open(root)
        _flip_first_byte(root / backend._blobs["graphs/0.nt"]["file"])
        with pytest.raises(CorruptStoreError, match="CRC32 mismatch"):
            backend.get_blob("graphs/0.nt")

    def test_truncated_block_detected(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        backend = DiskBackend.open(root)
        path = root / backend._arrays["csr/0/offsets"]["file"]
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(CorruptStoreError, match="truncated"):
            backend.get_array("csr/0/offsets")

    def test_verify_checksums_off_skips_the_check(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        backend = DiskBackend.open(root, verify_checksums=False)
        _flip_first_byte(root / backend._blobs["graphs/0.nt"]["file"])
        # Corruption passes through silently — the caller opted out.
        assert backend.get_blob("graphs/0.nt") is not None

    def test_verify_walk_clean_and_corrupt(self, store, tmp_path):
        root = self._saved(store, tmp_path)
        backend = DiskBackend.open(root)
        assert backend.verify() == []
        _flip_first_byte(root / backend._arrays["csr/0/offsets"]["file"])
        problems = backend.verify()
        assert [p["key"] for p in problems] == ["csr/0/offsets"]
        assert "CRC32" in problems[0]["reason"]

    def test_verify_quarantine_moves_files_and_rewrites_manifest(
        self, store, tmp_path
    ):
        root = self._saved(store, tmp_path)
        backend = DiskBackend.open(root)
        corrupt_file = backend._arrays["csr/0/offsets"]["file"]
        _flip_first_byte(root / corrupt_file)
        problems = backend.verify(quarantine=True)
        assert len(problems) == 1
        assert not (root / corrupt_file).exists()
        assert (root / "quarantine" / os.path.basename(corrupt_file)).exists()
        # The rewritten manifest no longer lists the quarantined block
        # and the reopened archive verifies clean.
        reopened = DiskBackend.open(root)
        assert "csr/0/offsets" not in reopened._arrays
        assert reopened.verify() == []

    def test_bitflipped_csr_block_rebuilds_same_reports(self, store, tmp_path):
        # A corrupt derived block is quarantined by VersionStore.load and
        # lazily rebuilt from the graph plane; alignment reports computed
        # from the recovered store are byte-identical to a clean load.
        root = self._saved(store, tmp_path)
        probe = DiskBackend.open(root)
        _flip_first_byte(root / probe._arrays["csr/0/offsets"]["file"])

        def report(loaded) -> str:
            config = AlignConfig(method="deblank")
            graphs = loaded.graphs()
            return (
                Aligner(config).align(graphs[0], graphs[1])
                .report(config).to_json()
            )

        clean_root = self._saved(store, tmp_path / "clean")
        clean = VersionStore.load(DiskBackend.open(clean_root))
        recovered = VersionStore.load(DiskBackend.open(root))
        assert any(
            entry["key"].startswith("csr/0") for entry in recovered.quarantined
        )
        assert clean.quarantined == []
        assert report(recovered) == report(clean)
        # The rebuilt block serves reads again (shape sanity only — node
        # ordering follows the re-parsed graph, not the original).
        rebuilt = recovered.csr_block(0)
        assert len(rebuilt.nodes) == len(store.csr_block(0).nodes)

    def test_corrupt_graph_blob_is_fatal(self, store, tmp_path):
        # Graphs are the archive's source of truth: nothing to rebuild
        # from, so load refuses instead of degrading.
        root = self._saved(store, tmp_path)
        probe = DiskBackend.open(root)
        _flip_first_byte(root / probe._blobs["graphs/0.nt"]["file"])
        with pytest.raises(CorruptStoreError, match="source of truth"):
            VersionStore.load(DiskBackend.open(root))
