"""Unit tests for partition alignments (repro.partition.alignment)."""

from __future__ import annotations

import pytest

from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.alignment import (
    PartitionAlignment,
    align,
    has_crossover_property,
    unaligned_nodes,
    unaligned_non_literals,
)
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner
from repro.core.trivial import trivial_partition


@pytest.fixture
def simple_union():
    g1 = RDFGraph()
    g1.add(uri("a"), uri("p"), lit("x"))
    g1.add(uri("only1"), uri("p"), lit("x"))
    g2 = RDFGraph()
    g2.add(uri("a"), uri("p"), lit("x"))
    g2.add(uri("only2"), uri("p"), lit("y"))
    return combine(g1, g2)


class TestTrivialAlignment:
    def test_label_equality_pairs(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        alignment = align(simple_union, part)
        a1 = simple_union.from_source(uri("a"))
        a2 = simple_union.from_target(uri("a"))
        assert alignment.aligned(a1, a2)
        assert alignment.partners(a1) == {a2}

    def test_unaligned_sets(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        alignment = align(simple_union, part)
        assert simple_union.from_source(uri("only1")) in alignment.unaligned_source()
        assert simple_union.from_target(uri("only2")) in alignment.unaligned_target()
        assert simple_union.from_target(lit("y")) in alignment.unaligned_target()
        assert alignment.unaligned() == alignment.unaligned_source() | alignment.unaligned_target()

    def test_counts(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        alignment = align(simple_union, part)
        # shared labels: a, p, "x"
        assert alignment.matched_class_count() == 3
        assert alignment.pair_count() == 3
        assert set(alignment.pairs()) == {
            (simple_union.from_source(t), simple_union.from_target(t))
            for t in (uri("a"), uri("p"), lit("x"))
        }

    def test_crossover_property_holds(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        assert align(simple_union, part).has_crossover_property()


class TestFatClasses:
    def test_many_to_many_class(self, simple_union):
        # Force only1 and only2 into the same class as a.
        interner = ColorInterner()
        part = trivial_partition(simple_union, interner)
        fat = part.with_colors(
            {
                simple_union.from_source(uri("only1")): part[
                    simple_union.from_source(uri("a"))
                ],
                simple_union.from_target(uri("only2")): part[
                    simple_union.from_source(uri("a"))
                ],
            }
        )
        alignment = align(simple_union, fat)
        source_a = simple_union.from_source(uri("a"))
        assert alignment.partners(source_a) == {
            simple_union.from_target(uri("a")),
            simple_union.from_target(uri("only2")),
        }
        # 2x2 pairs from the fat class plus the p-p and "x"-"x" classes.
        assert alignment.pair_count() == 6
        assert alignment.has_crossover_property()


class TestModuleFunctions:
    def test_unaligned_nodes_function(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        assert unaligned_nodes(simple_union, part) == align(
            simple_union, part
        ).unaligned()

    def test_unaligned_non_literals_excludes_literals(self, simple_union):
        part = trivial_partition(simple_union, ColorInterner())
        un = unaligned_non_literals(simple_union, part)
        assert simple_union.from_target(lit("y")) not in un
        assert simple_union.from_source(uri("only1")) in un


class TestCrossoverFunction:
    def test_crossover_positive(self):
        pairs = {("n", "m"), ("n", "m2"), ("n2", "m"), ("n2", "m2")}
        assert has_crossover_property(pairs)

    def test_crossover_negative(self):
        pairs = {("n", "m"), ("n", "m2"), ("n2", "m")}
        assert not has_crossover_property(pairs)

    def test_crossover_trivial_cases(self):
        assert has_crossover_property(set())
        assert has_crossover_property({("n", "m")})
        assert has_crossover_property({("n", "m"), ("n2", "m2")})
