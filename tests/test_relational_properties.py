"""Property tests for the relational substrate and the direct mapping."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.ground_truth import GroundTruth
from repro.model.namespaces import RDF_TYPE
from repro.relational.database import RelationalDatabase
from repro.relational.direct_mapping import direct_mapping, row_uri
from repro.relational.schema import Column, ColumnType, ForeignKey, Table, make_schema

_SCHEMA = make_schema(
    [
        Table(
            name="person",
            columns=(
                Column("person_id", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("nickname", ColumnType.TEXT, nullable=True),
            ),
            primary_key=("person_id",),
        ),
        Table(
            name="message",
            columns=(
                Column("message_id", ColumnType.INTEGER),
                Column("author_id", ColumnType.INTEGER),
                Column("body", ColumnType.TEXT),
            ),
            primary_key=("message_id",),
            foreign_keys=(ForeignKey(("author_id",), "person"),),
        ),
    ]
)

names = st.text(alphabet="abcdef ", min_size=1, max_size=12)


@st.composite
def databases(draw) -> RelationalDatabase:
    db = RelationalDatabase(_SCHEMA)
    person_count = draw(st.integers(1, 6))
    for person_id in range(1, person_count + 1):
        row = {"person_id": person_id, "name": draw(names)}
        if draw(st.booleans()):
            row["nickname"] = draw(names)
        db.insert("person", row)
    message_count = draw(st.integers(0, 8))
    for message_id in range(1, message_count + 1):
        db.insert(
            "message",
            {
                "message_id": message_id,
                "author_id": draw(st.integers(1, person_count)),
                "body": draw(names),
            },
        )
    return db


COMMON = dict(max_examples=40, deadline=None)


@settings(**COMMON)
@given(db=databases())
def test_export_is_well_formed(db):
    graph, __ = direct_mapping(db, "http://x/")
    graph.validate()


@settings(**COMMON)
@given(db=databases())
def test_every_row_has_a_type_triple_and_entity(db):
    graph, entities = direct_mapping(db, "http://x/")
    for table in db.schema:
        class_uri = entities[("table", table.name)]
        for key, __ in db.rows(table.name):
            subject = row_uri("http://x/", table, key)
            assert entities[("row", table.name, key)] == subject
            assert graph.has_edge(subject, RDF_TYPE, class_uri)


@settings(**COMMON)
@given(db=databases())
def test_fk_edges_match_database_references(db):
    graph, entities = direct_mapping(db, "http://x/")
    reference_predicate = entities[("reference", "message", ("author_id",))]
    exported = {
        (s, o)
        for s, p, o in graph.edges()
        if p == reference_predicate
    }
    expected = set()
    person = db.schema.table("person")
    message = db.schema.table("message")
    for key, row in db.rows("message"):
        expected.add(
            (
                row_uri("http://x/", message, key),
                row_uri("http://x/", person, (row["author_id"],)),
            )
        )
    assert exported == expected


@settings(**COMMON)
@given(db=databases())
def test_prefix_isolation(db):
    """Two exports share no URIs except the rdf vocabulary."""
    graph1, __ = direct_mapping(db, "http://x/v1/")
    graph2, __ = direct_mapping(db, "http://x/v2/")
    uris1 = {graph1.label(node).value for node in graph1.uris()}
    uris2 = {graph2.label(node).value for node in graph2.uris()}
    assert uris1 & uris2 <= {RDF_TYPE.value}


@settings(**COMMON)
@given(db=databases())
def test_ground_truth_is_total_on_shared_rows(db):
    """Exporting the same instance twice pairs every minted URI."""
    __, entities1 = direct_mapping(db, "http://x/v1/")
    __, entities2 = direct_mapping(db, "http://x/v2/")
    truth = GroundTruth.from_entity_maps(entities1, entities2)
    assert len(truth) == len(entities1) == len(entities2)


@settings(**COMMON)
@given(db=databases())
def test_edge_count_formula(db):
    """Edges = rows (types) + non-null non-key values + non-null FKs."""
    graph, __ = direct_mapping(db, "http://x/")
    expected = db.total_rows()  # one type triple per row
    for table in db.schema:
        fk_columns = {c for fk in table.foreign_keys for c in fk.columns}
        for __key, row in db.rows(table.name):
            for column in table.columns:
                if column.name in fk_columns or column.name in table.primary_key:
                    continue
                if row.get(column.name) is not None:
                    expected += 1
            for fk in table.foreign_keys:
                if all(row.get(c) is not None for c in fk.columns):
                    expected += 1
    # Duplicate literal values collapse nodes but never edges (subjects and
    # predicates differ per row), so the count is exact.
    assert graph.num_edges == expected
