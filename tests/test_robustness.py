"""The fault-injection harness and the retry/degradation machinery.

Unit coverage for :mod:`repro.robustness` plus the CLI's resilience
surface.  The contract:

* fault plans are deterministic (seeded, occurrence-counted, picklable)
  and injection is a no-op when no plan is armed;
* transient errors retry under an exponential-backoff budget, permanent
  errors propagate immediately, and spent budgets degrade with a
  structured out-of-band :class:`DegradationEvent`;
* an injected-then-recovered run returns exactly the clean result
  (hypothesis pins this across fault counts and payloads);
* ``rdf-align store verify`` exits 0 on a clean archive, 1 on
  corruption, and ``--quarantine`` isolates the damage; Ctrl-C exits
  130 after unlinking shared-memory segments.

The pool-level recovery state machine (crash → retry → degrade, under
real SIGKILLed workers) lives in ``tests/test_shm.py``; the end-to-end
byte-identity oracle is ``repro.testing.differential --axis faults``.
"""

from __future__ import annotations

import errno
import pickle
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cli as cli
from repro.align import AlignConfig
from repro.exceptions import ConfigError, TransientError, WorkerCrashError
from repro.robustness import (
    DegradationEvent,
    FaultClock,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_plan,
    call_with_retry,
    drain_events,
    filter_bytes,
    fire,
    inject,
    is_transient,
    record_event,
)
from repro.robustness.retry import EVENTS


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="worker.cell", kind="meteor")

    def test_site_and_index_filters(self):
        spec = FaultSpec(site="worker.cell", kind="oserror", index=3)
        assert spec.matches("worker.cell", 3, None, 0)
        assert not spec.matches("worker.cell", 4, None, 0)
        assert not spec.matches("cell.serial", 3, None, 0)

    def test_key_substring_filter(self):
        spec = FaultSpec(site="backend.read", kind="bitflip", key="graphs/")
        assert spec.matches("backend.read", None, "graphs/0.nt", None)
        assert not spec.matches("backend.read", None, "csr/0/offsets", None)
        assert not spec.matches("backend.read", None, None, None)

    def test_attempt_window_defaults_to_first_attempt(self):
        spec = FaultSpec(site="worker.cell", kind="sigkill")
        assert spec.matches("worker.cell", 0, None, 0)
        assert not spec.matches("worker.cell", 0, None, 1)
        persistent = FaultSpec(site="worker.cell", kind="sigkill", attempts=None)
        assert persistent.matches("worker.cell", 0, None, 7)

    def test_plan_round_trips_through_pickle(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="worker.cell", kind="hang", seconds=0.5),
                FaultSpec(site="backend.read", kind="bitflip", key="csr/"),
            ),
            name="pickled",
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.clock().counts == [0, 0]


class TestFaultClock:
    def _spec(self, nth=0, times=1):
        return FaultSpec(site="s", kind="oserror", nth=nth, times=times)

    def test_window_nth_times(self):
        clock = FaultClock(counts=[0])
        spec = self._spec(nth=1, times=2)
        admitted = [clock.admit(0, spec) for _ in range(5)]
        assert admitted == [False, True, True, False, False]

    def test_times_none_is_forever(self):
        clock = FaultClock(counts=[0])
        spec = self._spec(nth=0, times=None)
        assert all(clock.admit(0, spec) for _ in range(10))


class TestInjection:
    def test_fire_is_noop_without_plan(self):
        assert active_plan() is None
        fire("worker.cell", index=0)  # must not raise

    def test_inject_arms_and_restores(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="cell.serial", kind="oserror",
                             attempts=None),),
        )
        with inject(plan):
            assert active_plan() is plan
            with pytest.raises(OSError) as caught:
                fire("cell.serial", index=0)
            assert caught.value.errno == errno.EIO
        assert active_plan() is None

    def test_inject_restores_on_exception(self):
        plan = FaultPlan(specs=())
        with pytest.raises(RuntimeError, match="boom"):
            with inject(plan):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_bitflip_changes_exactly_one_byte(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="backend.read", kind="bitflip", seed=3),),
        )
        payload = bytes(range(64))
        with inject(plan):
            corrupted = filter_bytes("backend.read", "k", payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, corrupted))
                 if a != b]
        assert len(diffs) == 1
        assert corrupted[diffs[0]] == payload[diffs[0]] ^ 0xFF

    def test_truncate_halves_payload(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="backend.read", kind="truncate"),),
        )
        with inject(plan):
            assert filter_bytes("backend.read", "k", b"12345678") == b"1234"

    def test_payload_faults_leave_empty_payloads_alone(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="backend.read", kind="bitflip"),),
        )
        with inject(plan):
            assert filter_bytes("backend.read", "k", b"") == b""


class TestRetryPolicy:
    def test_backoff_schedule_doubles_under_cap(self):
        policy = RetryPolicy(retries=5, base_delay=0.1, cap=0.5)
        assert policy.delay(0) == 0.0
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]
        assert policy.attempts == 6

    def test_from_config_reads_align_config(self):
        config = AlignConfig(retries=4, cell_timeout=7.5)
        policy = RetryPolicy.from_config(config)
        assert (policy.retries, policy.cell_timeout) == (4, 7.5)
        assert RetryPolicy.from_config(None).retries == RetryPolicy.retries
        assert RetryPolicy.from_config(config, retries=0).retries == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(cell_timeout=0)


class TestCallWithRetry:
    def _flaky(self, failures, error=None):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise (error or OSError(errno.EIO, "flaky"))
            return "ok"

        return fn, calls

    def test_transient_failures_are_absorbed_with_backoff(self):
        fn, calls = self._flaky(2)
        slept: list[float] = []
        policy = RetryPolicy(retries=3, base_delay=0.25, cap=10.0)
        assert call_with_retry(fn, policy=policy, sleep=slept.append) == "ok"
        assert calls["n"] == 3
        assert slept == [0.25, 0.5]

    def test_budget_exhaustion_reraises_the_last_error(self):
        fn, calls = self._flaky(10)
        policy = RetryPolicy(retries=2, base_delay=0.0)
        with pytest.raises(OSError):
            call_with_retry(fn, policy=policy, sleep=lambda _: None)
        assert calls["n"] == 3

    def test_missing_file_is_not_transient(self):
        fn, calls = self._flaky(1, error=FileNotFoundError("gone"))
        with pytest.raises(FileNotFoundError):
            call_with_retry(fn, policy=RetryPolicy(retries=5),
                            sleep=lambda _: None)
        assert calls["n"] == 1

    def test_permanent_errors_propagate_immediately(self):
        fn, calls = self._flaky(1, error=ValueError("wrong input"))
        with pytest.raises(ValueError):
            call_with_retry(fn, policy=RetryPolicy(retries=5),
                            sleep=lambda _: None)
        assert calls["n"] == 1

    def test_taxonomy(self):
        assert is_transient(TransientError("t"))
        assert is_transient(WorkerCrashError("w"))
        assert is_transient(OSError(errno.EIO, "io"))
        assert not is_transient(FileNotFoundError("missing"))
        assert not is_transient(ValueError("permanent"))


class TestDegradationEvents:
    def test_record_and_drain(self):
        drain_events()
        sink: list[DegradationEvent] = []
        event = DegradationEvent(
            reason="worker-crash", attempts=3, cells=(1, 4), error="X()")
        record_event(event, sink)
        assert sink == [event]
        assert drain_events() == [event]
        assert EVENTS == []
        assert event.to_dict() == {
            "reason": "worker-crash", "attempts": 3,
            "cells": [1, 4], "error": "X()",
        }


class TestConfigKnobs:
    def test_defaults_and_to_dict(self):
        config = AlignConfig()
        assert config.retries == 2
        assert config.cell_timeout is None
        assert config.verify_checksums is True
        exported = config.to_dict()
        assert exported["retries"] == 2
        assert exported["cell_timeout"] is None
        assert exported["verify_checksums"] is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"retries": True},
            {"retries": 1.5},
            {"cell_timeout": 0},
            {"cell_timeout": -2.0},
            {"cell_timeout": True},
            {"verify_checksums": "yes"},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AlignConfig(**kwargs)


def _flip_byte(path) -> None:
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
    from repro.experiments.store import VersionStore

    pytest.importorskip("numpy")
    root = tmp_path_factory.mktemp("cli-store") / "archive"
    store = VersionStore(SyntheticGenerator.shared(SCENARIOS["small_er"]))
    store.prepare(summaries=True, csr=True)
    store.save(root)
    return root


class TestStoreVerifyCLI:
    def test_clean_store_exits_zero(self, archive, capsys):
        assert cli.main(["store", "verify", str(archive)]) == 0
        assert "store OK" in capsys.readouterr().out

    def test_corruption_exits_one_and_quarantine_heals(
        self, archive, tmp_path, capsys
    ):
        import shutil

        from repro.experiments.persist import DiskBackend

        root = tmp_path / "corrupt"
        shutil.copytree(archive, root)
        probe = DiskBackend.open(root)
        _flip_byte(root / probe._arrays["csr/0/offsets"]["file"])

        assert cli.main(["store", "verify", str(root)]) == 1
        err = capsys.readouterr().err
        assert "CORRUPT" in err and "csr/0/offsets" in err

        assert cli.main(["store", "verify", str(root), "--quarantine"]) == 1
        assert "quarantine" in capsys.readouterr().err
        # The damage is isolated: the archive now verifies clean.
        assert cli.main(["store", "verify", str(root)]) == 0


class TestCLIInterrupt:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "store", interrupted)
        assert cli.main(["store", "verify", "ignored"]) == 130
        assert "interrupted" in capsys.readouterr().err


# -- properties ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=256),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_bitflip_always_breaks_the_checksum(payload, seed):
    # CRC32 detects any single flipped byte, so a bitflip fault can never
    # slip past a verifying backend read.
    plan = FaultPlan(
        specs=(FaultSpec(site="backend.read", kind="bitflip", seed=seed),),
    )
    with inject(plan):
        corrupted = filter_bytes("backend.read", "k", payload)
    assert zlib.crc32(corrupted) != zlib.crc32(payload)
    # Determinism: a fresh clock yields byte-identical corruption.
    with inject(plan):
        assert filter_bytes("backend.read", "k", payload) == corrupted


@settings(max_examples=60, deadline=None)
@given(
    failures=st.integers(min_value=0, max_value=4),
    value=st.integers(),
)
def test_recovered_run_equals_clean_run(failures, value):
    # However many transient faults precede success, the recovered
    # result is exactly the clean one — and the backoff schedule is the
    # policy's, no more and no less.
    policy = RetryPolicy(retries=4, base_delay=0.01, cap=1.0)
    state = {"n": 0}

    def fn():
        state["n"] += 1
        if state["n"] <= failures:
            raise TransientError(f"injected #{state['n']}")
        return value

    slept: list[float] = []
    assert call_with_retry(fn, policy=policy, sleep=slept.append) == value
    assert slept == [policy.delay(n) for n in range(1, failures + 1)]
