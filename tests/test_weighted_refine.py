"""Tests for weighted refinement and Propagate (repro.similarity.weighted_refine)."""

from __future__ import annotations

import pytest

from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.alignment import align
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner
from repro.partition.weighted import WeightedPartition, zero_weighted
from repro.similarity.weighted_refine import propagate, reweight


class TestReweight:
    def test_sink_keeps_weight(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        weights = {node: 0.5 for node in g.nodes()}
        assert reweight(g, weights, lit("x")) == 0.5

    def test_average_over_out_pairs(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        g.add(uri("a"), uri("q"), lit("y"))
        weights = {
            uri("a"): 0.0,
            uri("p"): 0.0,
            uri("q"): 0.0,
            lit("x"): 0.2,
            lit("y"): 0.4,
        }
        # ((0⊕0.2) + (0⊕0.4)) / 2 = 0.3
        assert reweight(g, weights, uri("a")) == pytest.approx(0.3)

    def test_predicate_weight_contributes(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        weights = {uri("a"): 0.0, uri("p"): 0.3, lit("x"): 0.2}
        assert reweight(g, weights, uri("a")) == pytest.approx(0.5)

    def test_result_capped_at_one(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        weights = {uri("a"): 0.0, uri("p"): 0.9, lit("x"): 0.9}
        assert reweight(g, weights, uri("a")) == 1.0


class TestPropagate:
    def test_propagate_trivial_equals_hybrid(self, figure3_combined):
        """Paper: Propagate((λTrivial, 0)) = (λHybrid, 0).

        Holds on the paper's own Figure 3 example (the typical case); see
        DESIGN.md §5.10 for the content-coincidence counterexample where
        the trivial-base identity fails in general.
        """
        graph = figure3_combined
        interner = ColorInterner()
        weighted = propagate(
            graph, zero_weighted(trivial_partition(graph, interner)), interner
        )
        hybrid_interner = ColorInterner()
        hybrid = hybrid_partition(graph, hybrid_interner)
        assert set(align(graph, weighted.partition).pairs()) == set(
            align(graph, hybrid).pairs()
        )
        assert all(w == 0.0 for w in weighted.weights().values())

    def test_propagate_deblank_equals_hybrid(self, figure3_combined):
        graph = figure3_combined
        interner = ColorInterner()
        weighted = propagate(
            graph, zero_weighted(deblank_partition(graph, interner)), interner
        )
        hybrid_interner = ColorInterner()
        hybrid = hybrid_partition(graph, hybrid_interner)
        assert set(align(graph, weighted.partition).pairs()) == set(
            align(graph, hybrid).pairs()
        )

    def test_weights_propagate_from_enriched_neighbors(self):
        """The Figure 8 mechanism: w inherits half the weight of its children."""
        g1 = RDFGraph()
        g1.add(uri("w1"), uri("r"), uri("u1"))
        g2 = RDFGraph()
        g2.add(uri("w2"), uri("r"), uri("u2"))
        union = combine(g1, g2)
        interner = ColorInterner()
        # Start from the trivial partition (w and u unaligned on both sides)
        # and manually pretend u1/u2 were enriched with weight 0.3 each.
        weighted = zero_weighted(trivial_partition(union, interner))
        shared = interner.component_color(1, 0)
        weighted = weighted.with_updates(
            {union.from_source(uri("u1")): shared, union.from_target(uri("u2")): shared},
            {union.from_source(uri("u1")): 0.3, union.from_target(uri("u2")): 0.3},
        )
        result = propagate(union, weighted, interner)
        # w has one out edge (r, u): weight = (0 ⊕ 0.3) / 1 = 0.3.
        assert result.weight(union.from_source(uri("w1"))) == pytest.approx(0.3)
        assert result.partition[union.from_source(uri("w1"))] == result.partition[
            union.from_target(uri("w2"))
        ]

    def test_propagate_converges_on_cycles(self):
        g1 = RDFGraph()
        g1.add(uri("a1"), uri("p"), uri("b1"))
        g1.add(uri("b1"), uri("p"), uri("a1"))
        g2 = RDFGraph()
        g2.add(uri("a2"), uri("p"), uri("b2"))
        g2.add(uri("b2"), uri("p"), uri("a2"))
        union = combine(g1, g2)
        interner = ColorInterner()
        weighted = propagate(
            union, zero_weighted(trivial_partition(union, interner)), interner
        )
        for node in union.nodes():
            assert 0.0 <= weighted.weight(node) <= 1.0
