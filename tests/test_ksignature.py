"""Property and unit tests of hash-signature k-bisimulation.

The contract under test (:mod:`repro.core.ksignature`):

1.  at large ``k`` the signature partition equals the ``BisimRefine``
    fixpoint — on random graphs including blank-heavy cycles, for both
    payload engines, over all nodes and over the blank subset;
2.  the reference and dense payload builders are *byte-identical* (same
    interned colors, not merely equivalent partitions), and the
    shared-memory shard pool reproduces the serial colors for every
    jobs count;
3.  the iterates are monotone in ``k`` and ``k=0`` is the label
    partition;
4.  relabeling URIs through a bijection leaves the k-class size
    multiset invariant at every ``k`` (signatures see structure, not
    names);
5.  a degenerate (collision-forcing) hasher is *detected* by the
    verification pass — :class:`~repro.exceptions.
    SignatureCollisionError` — never silently merged;
6.  the ``AlignConfig.k`` knob validates and the method family
    (``bisim``/``kbisim``/``kbisim_deblank``) plugs into the session
    API and the report schema.
"""

from __future__ import annotations

from hashlib import blake2b

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.align import AlignConfig, Aligner
from repro.core.bisimulation import bisimulation_partition
from repro.core.deblank import deblank_partition
from repro.core.ksignature import (
    SIGNATURE_ENGINES,
    SignatureStats,
    SignatureVerifier,
    default_signature_hasher,
    graph_diameter,
    ksignature_partition,
    signature_digest,
)
from repro.exceptions import (
    ConfigError,
    ExperimentError,
    SignatureCollisionError,
    UnknownEngineError,
)
from repro.experiments.ksig_shard import (
    pooled_available,
    pooled_ksignature_partition,
)
from repro.model import RDFGraph, blank, lit, uri
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

COMMON = dict(max_examples=30, deadline=None)

_URIS = [f"n{i}" for i in range(6)]
_PREDICATES = ["p", "q", "r"]
_VALUES = ["alpha", "beta", "gamma"]
_BLANKS = [f"b{i}" for i in range(5)]


@st.composite
def rdf_graphs(draw) -> RDFGraph:
    """A small random RDF graph with URIs, literals and blanks."""
    graph = RDFGraph()
    edge_count = draw(st.integers(3, 14))
    for _ in range(edge_count):
        subject_kind = draw(st.sampled_from(["uri", "blank"]))
        subject = (
            uri(draw(st.sampled_from(_URIS)))
            if subject_kind == "uri"
            else blank(draw(st.sampled_from(_BLANKS)))
        )
        predicate = uri(draw(st.sampled_from(_PREDICATES)))
        object_kind = draw(st.sampled_from(["uri", "blank", "literal"]))
        if object_kind == "uri":
            obj = uri(draw(st.sampled_from(_URIS)))
        elif object_kind == "blank":
            obj = blank(draw(st.sampled_from(_BLANKS)))
        else:
            obj = lit(draw(st.sampled_from(_VALUES)))
        graph.add(subject, predicate, obj)
    return graph


@st.composite
def blank_cycle_graphs(draw) -> RDFGraph:
    """Blank-heavy graphs built around an explicit blank cycle.

    Cyclic blank structure is the regime where bounded refinement and
    the fixpoint can genuinely disagree at small ``k`` — exactly what
    the large-``k`` equivalence property must survive.
    """
    graph = RDFGraph()
    length = draw(st.integers(2, 5))
    ring = [blank(f"c{i}") for i in range(length)]
    for index, node in enumerate(ring):
        graph.add(node, uri("p"), ring[(index + 1) % length])
    extras = draw(st.integers(0, 6))
    for _ in range(extras):
        subject = draw(st.sampled_from(ring))
        predicate = uri(draw(st.sampled_from(_PREDICATES)))
        object_kind = draw(st.sampled_from(["uri", "blank", "literal"]))
        if object_kind == "uri":
            obj = uri(draw(st.sampled_from(_URIS)))
        elif object_kind == "blank":
            obj = draw(st.sampled_from(ring))
        else:
            obj = lit(draw(st.sampled_from(_VALUES)))
        graph.add(subject, predicate, obj)
    return graph


def _large_k(graph: RDFGraph) -> int:
    """A bound no productive refinement chain can exhaust."""
    return graph.num_nodes + 1


# ---------------------------------------------------------------------------
# 1. Large-k equivalence with the fixpoint engines
# ---------------------------------------------------------------------------
class TestFixpointEquivalence:
    @settings(**COMMON)
    @given(graph=rdf_graphs(), engine=st.sampled_from(SIGNATURE_ENGINES))
    def test_large_k_equals_full_bisimulation(self, graph, engine):
        stats = SignatureStats()
        partition = ksignature_partition(
            graph, k=_large_k(graph), engine=engine, stats=stats
        )
        assert stats.converged
        assert partition.equivalent_to(bisimulation_partition(graph))

    @settings(**COMMON)
    @given(graph=blank_cycle_graphs(), engine=st.sampled_from(SIGNATURE_ENGINES))
    def test_large_k_equals_fixpoint_on_blank_cycles(self, graph, engine):
        partition = ksignature_partition(
            graph, k=_large_k(graph), engine=engine
        )
        assert partition.equivalent_to(bisimulation_partition(graph))

    @settings(**COMMON)
    @given(graph=rdf_graphs())
    def test_large_k_blank_subset_equals_deblank(self, graph):
        partition = ksignature_partition(
            graph, k=_large_k(graph), subset=graph.blanks()
        )
        assert partition.equivalent_to(deblank_partition(graph))


# ---------------------------------------------------------------------------
# 2. Engine byte-parity and pooled determinism
# ---------------------------------------------------------------------------
class TestEngineParity:
    @settings(**COMMON)
    @given(graph=rdf_graphs(), k=st.integers(0, 5))
    def test_engines_intern_identical_colors(self, graph, k):
        reference = ksignature_partition(
            graph, ColorInterner(), k=k, engine="reference"
        )
        dense = ksignature_partition(graph, ColorInterner(), k=k, engine="dense")
        assert reference.as_dict() == dense.as_dict()

    @pytest.mark.skipif(not pooled_available(), reason="no shared memory")
    @pytest.mark.parametrize("engine", SIGNATURE_ENGINES)
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_pooled_colors_match_serial(self, engine, jobs):
        graph = RDFGraph()
        ring = [blank(f"b{i}") for i in range(6)]
        for index, node in enumerate(ring):
            graph.add(node, uri("p"), ring[(index + 1) % len(ring)])
        graph.add(uri("a"), uri("q"), ring[0])
        graph.add(uri("c"), uri("q"), ring[3])
        serial = ksignature_partition(graph, ColorInterner(), k=4, engine=engine)
        pooled = pooled_ksignature_partition(
            graph, ColorInterner(), k=4, engine=engine, jobs=jobs
        )
        assert pooled.as_dict() == serial.as_dict()

    @pytest.mark.skipif(not pooled_available(), reason="no shared memory")
    def test_pooled_run_leaks_no_segments(self):
        from repro.experiments.shm import list_segments

        graph = RDFGraph()
        graph.add(uri("a"), uri("p"), blank("b"))
        graph.add(blank("b"), uri("p"), lit("x"))
        pooled_ksignature_partition(graph, k=2, jobs=2)
        assert list_segments() == []


# ---------------------------------------------------------------------------
# 3. Monotonicity in k and the k=0 floor
# ---------------------------------------------------------------------------
class TestMonotonicity:
    @settings(**COMMON)
    @given(graph=rdf_graphs())
    def test_iterates_refine_monotonically(self, graph):
        previous = None
        for k in range(5):
            current = ksignature_partition(graph, k=k)
            if previous is not None:
                assert current.finer_than(previous)
            previous = current

    @settings(**COMMON)
    @given(graph=rdf_graphs())
    def test_k_zero_is_the_label_partition(self, graph):
        interner = ColorInterner()
        expected = label_partition(graph, ColorInterner())
        assert ksignature_partition(graph, interner, k=0).equivalent_to(expected)

    @settings(**COMMON)
    @given(graph=rdf_graphs())
    def test_rounds_never_exceed_node_count(self, graph):
        """Every productive round strictly grows the class count, so at
        most ``num_nodes`` rounds can run before the confirming one."""
        stats = SignatureStats()
        ksignature_partition(graph, k=_large_k(graph), stats=stats)
        assert stats.rounds <= graph.num_nodes + 1


# ---------------------------------------------------------------------------
# 4. URI-bijection invariance
# ---------------------------------------------------------------------------
class TestRelabelInvariance:
    @settings(**COMMON)
    @given(
        graph=rdf_graphs(),
        permutation=st.permutations(_URIS + _PREDICATES),
        k=st.integers(0, 4),
    )
    def test_bijective_uri_relabeling_keeps_class_sizes(
        self, graph, permutation, k
    ):
        mapping = dict(zip(_URIS + _PREDICATES, permutation))

        def rename(term):
            if term in graph.blanks():
                return term
            label = graph.label(term)
            renamed = mapping.get(label)
            return uri(renamed) if renamed is not None else term

        relabeled = RDFGraph()
        for s, p, o in graph.triples():
            relabeled.add(rename(s), rename(p), rename(o))

        def class_sizes(partition) -> list[int]:
            return sorted(len(members) for members in partition.classes().values())

        original = ksignature_partition(graph, k=k)
        mirrored = ksignature_partition(relabeled, k=k)
        assert class_sizes(original) == class_sizes(mirrored)


# ---------------------------------------------------------------------------
# 5. Collision detection
# ---------------------------------------------------------------------------
class TestCollisionDetection:
    @settings(**COMMON)
    @given(graph=rdf_graphs(), engine=st.sampled_from(SIGNATURE_ENGINES))
    def test_constant_hasher_is_detected_not_merged(self, graph, engine):
        """With >= 2 label classes a constant signature must collide in
        round one (distinct payloads, one hash value) and raise."""
        initial = label_partition(graph, ColorInterner())
        assume(len(initial.classes()) >= 2)
        with pytest.raises(SignatureCollisionError):
            ksignature_partition(
                graph, k=2, engine=engine, hasher=lambda payload: 7
            )

    def test_one_bit_hasher_collides_on_three_classes(self):
        graph = RDFGraph()
        graph.add(uri("a"), uri("p"), lit("x"))
        graph.add(uri("b"), uri("q"), lit("y"))
        graph.add(uri("c"), uri("r"), lit("z"))

        def one_bit(payload: bytes) -> int:
            return blake2b(payload, digest_size=8).digest()[-1] & 1

        with pytest.raises(SignatureCollisionError):
            ksignature_partition(graph, k=1, hasher=one_bit)

    def test_verifier_accepts_consistent_and_rejects_colliding(self):
        verifier = SignatureVerifier()
        payload_a, payload_b = b"key-a", b"key-b"
        sig = default_signature_hasher(payload_a)
        verifier.check([sig], signature_digest(payload_a))
        verifier.check([sig], signature_digest(payload_a))  # idempotent
        with pytest.raises(SignatureCollisionError):
            verifier.check([sig], signature_digest(payload_b))

    def test_cross_round_collisions_are_caught(self):
        """The verifier map spans rounds: a later-round signature that
        reuses an earlier round's value for a *different* payload must
        raise.  The recycling hasher is deterministic per payload but
        cycles through only five values, so the first productive round
        passes cleanly and the next round's fresh payloads collide."""
        assigned: dict[bytes, int] = {}

        def recycling(payload: bytes) -> int:
            if payload not in assigned:
                assigned[payload] = len(assigned) % 5 + 1
            return assigned[payload]

        graph = RDFGraph()
        graph.add(blank("b1"), uri("p"), lit("x"))
        graph.add(blank("b2"), uri("p"), blank("b1"))
        graph.add(blank("b3"), uri("p"), blank("b2"))
        with pytest.raises(SignatureCollisionError):
            ksignature_partition(graph, k=4, hasher=recycling)


# ---------------------------------------------------------------------------
# 6. Validation, diameter and the session surface
# ---------------------------------------------------------------------------
class TestSurface:
    def test_unknown_engine_refused(self):
        with pytest.raises(UnknownEngineError):
            ksignature_partition(RDFGraph(), engine="turbo")

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_bad_k_refused(self, bad):
        with pytest.raises(ExperimentError):
            ksignature_partition(RDFGraph(), k=bad)

    def test_csr_requires_dense_engine(self):
        from repro.model.csr import CSRGraph

        graph = RDFGraph()
        graph.add(uri("a"), uri("p"), lit("x"))
        with pytest.raises(ExperimentError):
            ksignature_partition(graph, csr=CSRGraph(graph), engine="reference")

    @pytest.mark.parametrize("bad", [-1, 2.5, True])
    def test_config_k_validation(self, bad):
        with pytest.raises(ConfigError):
            AlignConfig(k=bad)

    def test_config_k_round_trips(self):
        config = AlignConfig(method="kbisim", k=7)
        assert config.to_dict()["k"] == 7
        assert config.evolve(k=2).k == 2

    def test_graph_diameter(self):
        assert graph_diameter(RDFGraph()) == 0
        chain = RDFGraph()
        chain.add(uri("a"), uri("p"), uri("b"))
        chain.add(uri("b"), uri("p"), uri("c"))
        chain.add(uri("c"), uri("p"), lit("x"))
        assert graph_diameter(chain) == 3

    def test_kbisim_method_matches_bisim_at_large_k(self):
        source = RDFGraph()
        source.add(uri("a"), uri("p"), blank("b1"))
        source.add(blank("b1"), uri("p"), blank("b2"))
        source.add(blank("b2"), uri("q"), lit("x"))
        target = RDFGraph()
        target.add(uri("a"), uri("p"), blank("z1"))
        target.add(blank("z1"), uri("p"), blank("z2"))
        target.add(blank("z2"), uri("q"), lit("x"))
        k = source.num_nodes + target.num_nodes
        bounded = Aligner(AlignConfig(method="kbisim", k=k)).align(source, target)
        anchor = Aligner(AlignConfig(method="bisim")).align(source, target)
        assert set(bounded.alignment.pairs()) == set(anchor.alignment.pairs())
        assert bounded.details["signature_converged"]
        report = bounded.report(AlignConfig(method="kbisim", k=k))
        assert report.parameters["k"] == k
        assert report.diagnostics["signature_rounds"] >= 1

    def test_kbisim_deblank_method_matches_deblank_at_large_k(self):
        source = RDFGraph()
        source.add(uri("a"), uri("p"), blank("b1"))
        source.add(blank("b1"), uri("q"), lit("x"))
        target = RDFGraph()
        target.add(uri("a"), uri("p"), blank("c1"))
        target.add(blank("c1"), uri("q"), lit("x"))
        bounded = Aligner(
            AlignConfig(method="kbisim_deblank", k=8)
        ).align(source, target)
        anchor = Aligner(AlignConfig(method="deblank")).align(source, target)
        assert set(bounded.alignment.pairs()) == set(anchor.alignment.pairs())

    def test_method_registry_flags(self):
        from repro.align import get_method

        assert get_method("kbisim").uses_k
        assert get_method("kbisim_deblank").uses_k
        assert not get_method("bisim").uses_k
        assert not get_method("bisim").label_floor
        assert not get_method("kbisim").label_floor
        assert get_method("kbisim_deblank").label_floor
        assert get_method("kbisim").finer_than == "bisim"
        assert get_method("kbisim_deblank").finer_than == "deblank"
