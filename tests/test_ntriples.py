"""Unit and property tests for the N-Triples reader/writer."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.io import ntriples
from repro.model import RDFGraph, blank, lit, uri
from repro.model.graph import isomorphic_by_labels


class TestParseLine:
    def test_simple_triple(self):
        triple = ntriples.parse_line('<http://a> <http://p> <http://b> .')
        assert triple == (uri("http://a"), uri("http://p"), uri("http://b"))

    def test_literal_object(self):
        triple = ntriples.parse_line('<http://a> <http://p> "hello" .')
        assert triple[2] == lit("hello")

    def test_language_tag(self):
        triple = ntriples.parse_line('<http://a> <http://p> "hi"@en-GB .')
        assert triple[2] == lit("hi", language="en-GB")

    def test_datatype(self):
        triple = ntriples.parse_line('<a> <p> "5"^^<http://int> .')
        assert triple[2] == lit("5", datatype="http://int")

    def test_blank_nodes(self):
        triple = ntriples.parse_line("_:x <p> _:y .")
        assert triple == (blank("x"), uri("p"), blank("y"))

    def test_escapes_in_literal(self):
        triple = ntriples.parse_line(r'<a> <p> "tab\there\nnl \"q\" \\" .')
        assert triple[2] == lit('tab\there\nnl "q" \\')

    def test_unicode_escapes(self):
        triple = ntriples.parse_line(r'<a> <p> "é\U0001F600" .')
        assert triple[2] == lit("é😀")

    def test_comment_and_empty_lines(self):
        assert ntriples.parse_line("# comment") is None
        assert ntriples.parse_line("   ") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<a> <p> <b>",  # missing dot
            '<a> <p> "unterminated .',
            "<a <p> <b> .",
            "<a> <p> .",
            '"lit" <p> <b> .',  # literal subject
            "<a> _:b <c> .",  # blank predicate
            "<a> <p> <b> . trailing",
            r'<a> <p> "\q" .',  # unknown escape
            r'<a> <p> "\u12" .',  # truncated escape
            "_: <p> <b> .",  # empty blank label
            '<a> <p> "x"@ .',  # empty language
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ParseError):
            ntriples.parse_line(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            ntriples.parse_line("<a> <p> <b>", line_number=42)
        assert excinfo.value.line_number == 42
        assert "42" in str(excinfo.value)


class TestDocumentIO:
    def test_loads_skips_comments(self):
        text = "# header\n<a> <p> <b> .\n\n<a> <p> \"x\" .\n"
        graph = ntriples.loads(text)
        assert graph.num_edges == 2

    def test_load_stream(self):
        stream = io.StringIO("<a> <p> <b> .\n")
        assert ntriples.load(stream).num_edges == 1

    def test_dumps_sorted_and_deterministic(self):
        g = RDFGraph()
        g.add(uri("b"), uri("p"), lit("x"))
        g.add(uri("a"), uri("p"), lit("x"))
        out = ntriples.dumps(g)
        assert out.index("<a>") < out.index("<b>")
        assert out == ntriples.dumps(g)

    def test_dump_and_load_path(self, tmp_path, figure1_graphs):
        v1, __ = figure1_graphs
        path = tmp_path / "v1.nt"
        ntriples.dump_path(v1, path)
        loaded = ntriples.load_path(path)
        loaded.validate()
        assert isomorphic_by_labels(v1, loaded)

    def test_empty_graph_serializes_to_empty(self):
        assert ntriples.dumps(RDFGraph()) == ""


class TestRoundTrip:
    def test_figure1_round_trip(self, figure1_graphs):
        for graph in figure1_graphs:
            text = ntriples.dumps(graph)
            again = ntriples.loads(text)
            assert isomorphic_by_labels(graph, again)
            assert ntriples.dumps(again) == text

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",)),
                max_size=20,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_literal_values_round_trip(self, values):
        g = RDFGraph()
        for index, value in enumerate(values):
            g.add(uri(f"s{index}"), uri("p"), lit(value))
        again = ntriples.loads(ntriples.dumps(g))
        assert {t[2] for t in again.triples() if isinstance(t[2], type(lit("")))} == {
            lit(v) for v in values
        }

    def test_format_term_rejects_non_terms(self):
        with pytest.raises(TypeError):
            ntriples.format_term(42)  # type: ignore[arg-type]
