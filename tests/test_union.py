"""Unit tests for CombinedGraph (repro.model.union)."""

from __future__ import annotations

import pytest

from repro.exceptions import AlignmentError
from repro.model import RDFGraph, blank, combine, combine_many, lit, uri
from repro.model.union import SOURCE, TARGET


@pytest.fixture
def versions() -> tuple[RDFGraph, RDFGraph]:
    g1 = RDFGraph()
    g1.add(uri("a"), uri("p"), lit("x"))
    g2 = RDFGraph()
    g2.add(uri("a"), uri("p"), lit("y"))
    return g1, g2


class TestDisjointness:
    def test_same_labels_stay_distinct(self, versions):
        union = combine(*versions)
        assert union.num_nodes == 6
        assert union.num_edges == 2

    def test_side_tracking(self, versions):
        union = combine(*versions)
        n = union.from_source(uri("a"))
        m = union.from_target(uri("a"))
        assert n != m
        assert union.side(n) == SOURCE
        assert union.side(m) == TARGET
        assert union.original(n) == uri("a")

    def test_side_node_sets_partition_nodes(self, versions):
        union = combine(*versions)
        assert union.source_nodes | union.target_nodes == set(union.nodes())
        assert not union.source_nodes & union.target_nodes
        assert union.side_nodes(SOURCE) == union.source_nodes
        assert union.side_nodes(TARGET) == union.target_nodes

    def test_labels_preserved(self, versions):
        union = combine(*versions)
        assert union.label(union.from_source(lit("x"))) == lit("x")

    def test_source_target_accessors(self, versions):
        g1, g2 = versions
        union = combine(g1, g2)
        assert union.source is g1
        assert union.target is g2


class TestErrors:
    def test_unknown_node_side(self, versions):
        union = combine(*versions)
        with pytest.raises(AlignmentError):
            union.side("nope")

    def test_from_source_rejects_target_only_node(self, versions):
        union = combine(*versions)
        with pytest.raises(AlignmentError):
            union.from_source(lit("y"))

    def test_bad_side_constant(self, versions):
        union = combine(*versions)
        with pytest.raises(AlignmentError):
            union.side_nodes(3)


class TestCombineMany:
    def test_consecutive_pairs(self):
        graphs = []
        for i in range(4):
            g = RDFGraph()
            g.add(uri(f"a{i}"), uri("p"), lit(f"x{i}"))
            graphs.append(g)
        unions = combine_many(graphs)
        assert len(unions) == 3
        assert unions[0].source is graphs[0]
        assert unions[2].target is graphs[3]

    def test_blanks_both_sides(self):
        g1 = RDFGraph()
        g1.add(blank("b"), uri("p"), lit("x"))
        g2 = RDFGraph()
        g2.add(blank("b"), uri("p"), lit("x"))
        union = combine(g1, g2)
        assert len(union.blanks()) == 2
