"""Unit and property tests for the ⊕ operators (repro.oplus)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oplus import (
    OPERATORS,
    oplus,
    oplus_max,
    oplus_probabilistic,
    oplus_sum,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestCappedAddition:
    def test_basic(self):
        assert oplus(0.2, 0.3) == pytest.approx(0.5)
        assert oplus(0.8, 0.7) == 1.0
        assert oplus(0.0, 0.0) == 0.0

    def test_fold(self):
        assert oplus_sum([0.1, 0.2, 0.3]) == pytest.approx(0.6)
        assert oplus_sum([]) == 0.0
        assert oplus_sum([0.9, 0.9]) == 1.0

    def test_operator_table(self):
        assert OPERATORS["capped"] is oplus
        assert set(OPERATORS) == {"capped", "probabilistic", "max"}


@pytest.mark.parametrize("name,operator", sorted(OPERATORS.items()))
class TestOperatorLaws:
    """All ⊕ variants must satisfy the paper's requirements."""

    @given(x=unit, y=unit)
    def test_commutative(self, name, operator, x, y):
        assert operator(x, y) == pytest.approx(operator(y, x))

    @given(x=unit, y=unit, z=unit)
    def test_associative(self, name, operator, x, y, z):
        assert operator(operator(x, y), z) == pytest.approx(
            operator(x, operator(y, z))
        )

    @given(x=unit)
    def test_zero_is_neutral(self, name, operator, x):
        assert operator(x, 0.0) == pytest.approx(x)

    @given(x=unit, y=unit)
    def test_bounded(self, name, operator, x, y):
        assert 0.0 <= operator(x, y) <= 1.0

    @given(x=unit, y=unit, z=unit)
    def test_monotone(self, name, operator, x, y, z):
        if y <= z:
            assert operator(x, y) <= operator(x, z) + 1e-12


@given(x=unit, y=unit)
def test_probabilistic_below_capped(x, y):
    assert oplus_probabilistic(x, y) <= oplus(x, y) + 1e-12


@given(x=unit, y=unit)
def test_max_below_capped(x, y):
    assert oplus_max(x, y) <= oplus(x, y)
