"""Unit tests for the W3C Direct Mapping (repro.relational.direct_mapping)."""

from __future__ import annotations

from decimal import Decimal

import pytest

from repro.model.labels import Literal, URI
from repro.model.namespaces import RDF_TYPE, XSD_DECIMAL, XSD_INTEGER
from repro.relational.database import RelationalDatabase
from repro.relational.direct_mapping import (
    direct_mapping,
    row_uri,
    value_literal,
)
from repro.relational.schema import Column, ColumnType, ForeignKey, Table, make_schema


@pytest.fixture
def schema():
    return make_schema(
        [
            Table(
                name="ligand",
                columns=(
                    Column("ligand_id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                    Column("mass", ColumnType.DECIMAL, nullable=True),
                ),
                primary_key=("ligand_id",),
            ),
            Table(
                name="interaction",
                columns=(
                    Column("pair", ColumnType.TEXT),
                    Column("ligand_id", ColumnType.INTEGER),
                ),
                primary_key=("pair",),
                foreign_keys=(ForeignKey(("ligand_id",), "ligand"),),
            ),
        ]
    )


@pytest.fixture
def db(schema):
    database = RelationalDatabase(schema)
    database.insert(
        "ligand", {"ligand_id": 685, "name": "calcitonin", "mass": Decimal("3431.9")}
    )
    database.insert("interaction", {"pair": "a/b", "ligand_id": 685})
    return database


class TestExport:
    def test_row_uri_single_key(self, schema):
        table = schema.table("ligand")
        assert row_uri("http://x/ver1/", table, (685,)) == URI(
            "http://x/ver1/ligand/685"
        )

    def test_row_uri_escapes_separators(self, schema):
        table = schema.table("interaction")
        assert row_uri("http://x/", table, ("a/b",)) == URI("http://x/interaction/a%2Fb")

    def test_type_triples(self, db):
        graph, __ = direct_mapping(db, "http://x/")
        assert graph.has_edge(
            URI("http://x/ligand/685"), RDF_TYPE, URI("http://x/ligand")
        )

    def test_value_triples_typed(self, db):
        graph, __ = direct_mapping(db, "http://x/")
        assert graph.has_edge(
            URI("http://x/ligand/685"),
            URI("http://x/ligand#name"),
            Literal("calcitonin"),
        )
        assert graph.has_edge(
            URI("http://x/ligand/685"),
            URI("http://x/ligand#mass"),
            Literal("3431.9", datatype=XSD_DECIMAL),
        )

    def test_keys_not_exported_by_default(self, db):
        """Paper framing: only non-key data values and FKs are kept."""
        graph, __ = direct_mapping(db, "http://x/")
        assert URI("http://x/ligand#ligand_id") not in graph

    def test_keys_exported_on_request(self, db):
        graph, entities = direct_mapping(db, "http://x/", include_keys=True)
        assert graph.has_edge(
            URI("http://x/ligand/685"),
            URI("http://x/ligand#ligand_id"),
            Literal("685", datatype=XSD_INTEGER),
        )
        assert ("attribute", "ligand", "ligand_id") in entities

    def test_fk_triples_point_at_row_uris(self, db):
        graph, __ = direct_mapping(db, "http://x/")
        assert graph.has_edge(
            URI("http://x/interaction/a%2Fb"),
            URI("http://x/interaction#ref-ligand_id"),
            URI("http://x/ligand/685"),
        )

    def test_fk_columns_not_exported_as_literals(self, db):
        graph, __ = direct_mapping(db, "http://x/")
        assert URI("http://x/interaction#ligand_id") not in graph

    def test_graph_is_well_formed(self, db):
        graph, __ = direct_mapping(db, "http://x/")
        graph.validate()

    def test_no_types_option(self, db):
        graph, __ = direct_mapping(db, "http://x/", include_types=False)
        assert not any(p == RDF_TYPE for __, p, __o in graph.edges())


class TestEntityMap:
    def test_row_entities(self, db):
        __, entities = direct_mapping(db, "http://x/")
        assert entities[("row", "ligand", (685,))] == URI("http://x/ligand/685")

    def test_schema_entities(self, db):
        __, entities = direct_mapping(db, "http://x/")
        assert entities[("table", "ligand")] == URI("http://x/ligand")
        assert entities[("attribute", "ligand", "name")] == URI("http://x/ligand#name")
        assert entities[("reference", "interaction", ("ligand_id",))] == URI(
            "http://x/interaction#ref-ligand_id"
        )

    def test_two_prefixes_share_no_uris(self, db):
        graph1, __ = direct_mapping(db, "http://x/ver1/")
        graph2, __ = direct_mapping(db, "http://x/ver2/")
        uris1 = {graph1.label(n).value for n in graph1.uris()}
        uris2 = {graph2.label(n).value for n in graph2.uris()}
        shared = uris1 & uris2
        # Only the version-independent rdf:type vocabulary is shared.
        assert shared == {RDF_TYPE.value}

    def test_ground_truth_joins_on_entities(self, db):
        from repro.datasets.ground_truth import GroundTruth

        __, entities1 = direct_mapping(db, "http://x/ver1/")
        __, entities2 = direct_mapping(db, "http://x/ver2/")
        truth = GroundTruth.from_entity_maps(entities1, entities2)
        assert truth.partner_of_source(URI("http://x/ver1/ligand/685")) == URI(
            "http://x/ver2/ligand/685"
        )


class TestValueLiteral:
    def test_integer(self):
        column = Column("n", ColumnType.INTEGER)
        assert value_literal(column, 5) == Literal("5", datatype=XSD_INTEGER)

    def test_decimal(self):
        column = Column("n", ColumnType.DECIMAL)
        assert value_literal(column, Decimal("1.50")) == Literal(
            "1.50", datatype=XSD_DECIMAL
        )

    def test_text(self):
        column = Column("n", ColumnType.TEXT)
        assert value_literal(column, "x") == Literal("x")
