"""Shared-memory segments and the worker pool's cleanup guarantees.

The contract under test (repro.experiments.shm + CSRGraph.to_shared):

* published payloads round-trip bit-identically — CSR snapshots
  included, empty graphs and zero-length arrays included;
* a :class:`ShmRegistry` unlinks everything it owns on context exit,
  on exception, and idempotently;
* a worker crashing mid-cell (SIGKILL) surfaces as
  ``WorkerCrashError`` and still leaves ``/dev/shm`` clean;
* under every seeded :class:`FaultPlan` (crash, crash-forever, hang)
  ``run_store_cells`` recovers or degrades to serial with results
  identical to a clean run — and never leaks a segment.
"""

from __future__ import annotations

import os
import signal
from array import array

import pytest

from repro.align import AlignConfig
from repro.exceptions import WorkerCrashError
from repro.experiments.cells import edge_ratio_cell
from repro.experiments.parallel import (
    SharedStorePool,
    fork_available,
    run_store_cells,
)
from repro.robustness import FaultPlan, FaultSpec, inject
from repro.experiments.shm import (
    ShmRegistry,
    attach_bytes,
    attach_index_array,
    attach_pickle,
    attach_segment,
    list_segments,
    shm_available,
)
from repro.experiments.store import VersionStore
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.model import RDFGraph, blank, lit, uri
from repro.model.csr import CSRGraph

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory is unavailable"
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="the crash test pins the fork start method"
)


@pytest.fixture
def small_graph() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("a"), uri("p"), blank("b1"))
    g.add(uri("a"), uri("q"), lit("x"))
    g.add(blank("b1"), uri("p"), lit("x"))
    return g


class TestRegistryRoundTrip:
    def test_bytes_roundtrip(self):
        with ShmRegistry() as registry:
            manifest = registry.publish_bytes(b"hello shared world")
            assert attach_bytes(manifest) == b"hello shared world"
        assert list_segments() == []

    def test_empty_bytes_publish_no_segment(self):
        with ShmRegistry() as registry:
            manifest = registry.publish_bytes(b"")
            assert manifest == {"name": None, "nbytes": 0}
            assert registry.names() == []
            assert attach_segment(manifest) is None
            assert attach_bytes(manifest) == b""

    def test_pickle_roundtrip(self):
        value = {"pairs": [(0, 1), (1, 2)], "theta": 0.65}
        with ShmRegistry() as registry:
            assert attach_pickle(registry.publish_pickle(value)) == value

    def test_index_array_roundtrip_is_bit_identical(self):
        payload = array("q", [0, 3, 5, 2**40, -7])
        keepalive: list = []
        with ShmRegistry() as registry:
            manifest = registry.publish_array(payload)
            assert manifest["count"] == len(payload)
            view = attach_index_array(manifest, keepalive)
            assert view.tobytes() == payload.tobytes()
            assert not view.flags.writeable
            del view  # the segment buffer must not outlive the registry
            for segment in keepalive:
                segment.close()

    def test_zero_length_array(self):
        keepalive: list = []
        with ShmRegistry() as registry:
            manifest = registry.publish_array(array("q", []))
            view = attach_index_array(manifest, keepalive)
            assert len(view) == 0 and keepalive == []


class TestCSRSharedRoundTrip:
    def _roundtrip(self, csr: CSRGraph) -> None:
        keepalive: list = []
        with ShmRegistry() as registry:
            clone = CSRGraph.from_shared(csr.to_shared(registry), keepalive)
            assert clone.nodes == csr.nodes
            assert clone.index == csr.index
            assert clone.out_offsets.tobytes() == csr.out_offsets.tobytes()
            assert clone.out_predicates.tobytes() == csr.out_predicates.tobytes()
            assert clone.out_objects.tobytes() == csr.out_objects.tobytes()
            del clone  # views die before the registry unlinks the segments
            for segment in keepalive:
                segment.close()
        assert list_segments() == []

    def test_snapshot_bit_identical(self, small_graph):
        self._roundtrip(CSRGraph(small_graph))

    def test_empty_graph(self):
        self._roundtrip(CSRGraph(RDFGraph()))

    def test_nodes_without_edges(self):
        # Zero-length pair arrays with a non-empty node table.
        g = RDFGraph()
        g.add(uri("solo"), uri("p"), lit("x"))
        csr = CSRGraph(g)
        object_only = CSRGraph.from_parts(
            csr.nodes, array("q", [0] * (len(csr.nodes) + 1)),
            array("q", []), array("q", []),
        )
        self._roundtrip(object_only)


class TestCleanupGuarantees:
    def test_unlink_on_exception(self):
        with pytest.raises(RuntimeError, match="mid-publish"):
            with ShmRegistry() as registry:
                registry.publish_bytes(b"doomed")
                assert list_segments() != []
                raise RuntimeError("mid-publish")
        assert list_segments() == []

    def test_unlink_is_idempotent(self):
        registry = ShmRegistry()
        registry.publish_bytes(b"payload")
        registry.unlink()
        registry.unlink()
        assert list_segments() == []

    def test_attacher_exit_does_not_destroy_segment(self):
        # The owner, not an attacher, unlinks: after a worker-side
        # attach/close cycle the segment must still be readable.
        with ShmRegistry() as registry:
            manifest = registry.publish_bytes(b"still here")
            assert attach_bytes(manifest) == b"still here"
            assert attach_bytes(manifest) == b"still here"
        assert list_segments() == []


def _crash_cell(store, config, item):
    """A cell that dies the hard way (no Python-level cleanup runs)."""
    os.kill(os.getpid(), signal.SIGKILL)


def _fault_store() -> VersionStore:
    store = VersionStore(SyntheticGenerator.shared(SCENARIOS["small_er"]))
    store.prepare(summaries=True, tokens=("trivial", "deblank"), csr=True)
    return store


@needs_fork
class TestWorkerCrash:
    def test_killed_worker_raises_and_leaks_no_segments(self):
        # The raw pool (no retry budget) surfaces a SIGKILLed worker as
        # WorkerCrashError and still leaves /dev/shm clean.
        store = _fault_store()
        with pytest.raises(WorkerCrashError):
            with SharedStorePool(store, jobs=2, context="fork") as pool:
                pool.map(_crash_cell, [(0, 1), (1, 2)])
        assert list_segments() == []


@needs_fork
class TestFaultPlanLeaks:
    """No leaked segments under every FaultPlan, and recovery is exact."""

    PAIRS = [(0, 1), (1, 2)]

    def _clean(self, store):
        return run_store_cells(store, edge_ratio_cell, self.PAIRS, jobs=1)

    def _run(self, store, plan, config, events):
        with inject(plan):
            return run_store_cells(
                store, edge_ratio_cell, self.PAIRS,
                jobs=2, context="fork", force=True,
                config=config, events=events,
            )

    def test_sigkill_once_recovers(self):
        store = _fault_store()
        clean = self._clean(store)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.cell", kind="sigkill",
                    index=0, attempts=(0,), times=1,
                ),
            ),
            name="sigkill-once",
        )
        events: list = []
        config = AlignConfig(retries=2)
        assert self._run(store, plan, config, events) == clean
        assert events == []  # the retry absorbed the crash
        assert list_segments() == []

    def test_sigkill_exhausted_degrades_to_serial(self):
        store = _fault_store()
        clean = self._clean(store)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.cell", kind="sigkill",
                    index=0, attempts=None, times=None,
                ),
            ),
            name="sigkill-forever",
        )
        events: list = []
        config = AlignConfig(retries=1)
        assert self._run(store, plan, config, events) == clean
        assert len(events) == 1
        assert events[0].reason == "worker-crash"
        assert list_segments() == []

    def test_hung_cell_times_out_and_recovers(self):
        store = _fault_store()
        clean = self._clean(store)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.cell", kind="hang", seconds=30.0,
                    index=0, attempts=(0,), times=1,
                ),
            ),
            name="hang-once",
        )
        events: list = []
        config = AlignConfig(retries=2, cell_timeout=1.5)
        assert self._run(store, plan, config, events) == clean
        assert events == []
        assert list_segments() == []
