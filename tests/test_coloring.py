"""Unit tests for partitions-as-colorings (repro.partition.coloring)."""

from __future__ import annotations

import pytest

from repro.exceptions import PartitionError
from repro.model import RDFGraph, blank, lit, uri
from repro.partition.coloring import (
    Partition,
    discrete_partition,
    label_partition,
    relation_from_partition,
)
from repro.partition.interner import ColorInterner


class TestPartitionBasics:
    def test_mapping_protocol(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        assert p["a"] == 0 and p.color("c") == 1
        assert len(p) == 3 and set(p) == {"a", "b", "c"}

    def test_missing_node_raises(self):
        with pytest.raises(PartitionError):
            Partition({"a": 0})["zzz"]

    def test_classes(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        assert p.classes() == {0: frozenset({"a", "b"}), 1: frozenset({"c"})}
        assert p.num_classes == 2
        assert p.class_of("a") == {"a", "b"}
        assert p.same_class("a", "b") and not p.same_class("a", "c")

    def test_with_colors_does_not_mutate(self):
        p = Partition({"a": 0, "b": 0})
        q = p.with_colors({"b": 5})
        assert p["b"] == 0 and q["b"] == 5

    def test_as_dict_copy(self):
        p = Partition({"a": 0})
        d = p.as_dict()
        d["a"] = 9
        assert p["a"] == 0


class TestEquivalenceAndRefinement:
    def test_equivalence_ignores_color_values(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        q = Partition({"a": 7, "b": 7, "c": 3})
        assert p.equivalent_to(q) and q.equivalent_to(p)

    def test_non_equivalent(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        q = Partition({"a": 0, "b": 1, "c": 1})
        assert not p.equivalent_to(q)

    def test_equivalence_requires_same_nodes(self):
        assert not Partition({"a": 0}).equivalent_to(Partition({"b": 0}))

    def test_finer_than_is_reflexive(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        assert p.finer_than(p)

    def test_finer_than_proper(self):
        coarse = Partition({"a": 0, "b": 0, "c": 0})
        fine = Partition({"a": 0, "b": 0, "c": 1})
        assert fine.finer_than(coarse)
        assert not coarse.finer_than(fine)

    def test_finer_than_incomparable(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        q = Partition({"a": 0, "b": 1, "c": 1})
        assert not p.finer_than(q) and not q.finer_than(p)


class TestDerivedPartitions:
    def test_label_partition_groups_blanks(self):
        g = RDFGraph()
        g.add(blank("b1"), uri("p"), lit("x"))
        g.add(blank("b2"), uri("p"), lit("x"))
        interner = ColorInterner()
        part = label_partition(g, interner)
        assert part.same_class(blank("b1"), blank("b2"))
        assert not part.same_class(uri("p"), blank("b1"))

    def test_label_partition_shares_colors_across_equal_labels(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        interner = ColorInterner()
        part = label_partition(g, interner)
        assert part.num_classes == 3

    def test_discrete_partition(self):
        interner = ColorInterner()
        part = discrete_partition(["a", "b", "c"], interner)
        assert part.num_classes == 3

    def test_relation_from_partition(self):
        p = Partition({"a": 0, "b": 0, "c": 1})
        rel = relation_from_partition(p)
        assert ("a", "b") in rel and ("b", "a") in rel
        assert ("a", "a") in rel
        assert ("a", "c") not in rel
