"""Unit tests for weighted partitions (repro.partition.weighted)."""

from __future__ import annotations

import pytest

from repro.exceptions import PartitionError
from repro.model import RDFGraph, combine, lit, uri
from repro.partition.coloring import Partition
from repro.partition.interner import ColorInterner
from repro.partition.weighted import (
    WeightedPartition,
    align_threshold,
    zero_weighted,
)


def make_weighted() -> WeightedPartition:
    partition = Partition({"a": 0, "b": 0, "c": 1})
    return WeightedPartition(partition, {"a": 0.1, "b": 0.3, "c": 0.0})


class TestConstruction:
    def test_weights_must_cover_all_nodes(self):
        with pytest.raises(PartitionError):
            WeightedPartition(Partition({"a": 0, "b": 0}), {"a": 0.0})

    def test_weights_must_be_in_unit_interval(self):
        with pytest.raises(PartitionError):
            WeightedPartition(Partition({"a": 0}), {"a": 1.5})
        with pytest.raises(PartitionError):
            WeightedPartition(Partition({"a": 0}), {"a": -0.1})

    def test_zero_weighted(self):
        xi = zero_weighted(Partition({"a": 0, "b": 1}))
        assert xi.weight("a") == 0.0 and xi.weight("b") == 0.0

    def test_accessors(self):
        xi = make_weighted()
        assert xi.color("a") == 0
        assert xi.weight("b") == 0.3
        assert len(xi) == 3 and set(xi) == {"a", "b", "c"}
        with pytest.raises(PartitionError):
            xi.weight("zzz")


class TestDistance:
    def test_same_cluster_combines_weights(self):
        xi = make_weighted()
        assert xi.distance("a", "b") == pytest.approx(0.4)

    def test_different_cluster_is_one(self):
        xi = make_weighted()
        assert xi.distance("a", "c") == 1.0

    def test_distance_caps_at_one(self):
        xi = WeightedPartition(Partition({"a": 0, "b": 0}), {"a": 0.8, "b": 0.7})
        assert xi.distance("a", "b") == 1.0


class TestUpdates:
    def test_with_updates_immutable(self):
        xi = make_weighted()
        updated = xi.with_updates({"c": 0}, {"c": 0.5})
        assert xi.color("c") == 1 and updated.color("c") == 0
        assert xi.weight("c") == 0.0 and updated.weight("c") == 0.5

    def test_blank_out(self):
        xi = make_weighted()
        interner = ColorInterner()
        blanked = xi.blank_out(["a", "b"], interner)
        assert blanked.color("a") == blanked.color("b") == interner.blank_color()
        assert blanked.weight("a") == 0.0


class TestAlignThreshold:
    def test_threshold_filters_pairs(self):
        g1 = RDFGraph()
        g1.add(uri("a"), uri("p"), lit("x"))
        g2 = RDFGraph()
        g2.add(uri("a"), uri("p"), lit("x"))
        union = combine(g1, g2)
        colors = {node: 0 for node in union.nodes()}
        near = {node: 0.01 for node in union.nodes()}
        xi = WeightedPartition(Partition(colors), near)
        assert len(align_threshold(union, xi, theta=0.5)) == 9  # 3x3 pairs
        far = {node: 0.6 for node in union.nodes()}
        xi_far = WeightedPartition(Partition(colors), far)
        assert align_threshold(union, xi_far, theta=0.5) == set()
