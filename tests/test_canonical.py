"""Tests for canonical serialization (repro.io.canonical)."""

from __future__ import annotations

import random

import pytest

from repro.io.canonical import canonical_blank_labels, canonical_dumps
from repro.io.ntriples import loads
from repro.model import RDFGraph, blank, lit, uri
from repro.model.graph import isomorphic_by_labels


def relabel_blanks(graph: RDFGraph, prefix: str) -> RDFGraph:
    """An isomorphic copy with fresh blank identifiers and shuffled order."""
    mapping = {}

    def rename(term):
        if hasattr(term, "name") and term.__class__.__name__ == "BlankNode":
            if term not in mapping:
                mapping[term] = blank(f"{prefix}{len(mapping)}")
            return mapping[term]
        return term

    triples = [tuple(map(rename, triple)) for triple in graph.triples()]
    random.Random(hash(prefix) & 0xFFFF).shuffle(triples)
    copy = RDFGraph()
    copy.add_all(triples)
    return copy


class TestCanonicalLabels:
    def test_no_blanks_empty_mapping(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        assert canonical_blank_labels(g) == {}

    def test_distinct_content_distinct_labels(self):
        g = RDFGraph()
        g.add(blank("x"), uri("p"), lit("one"))
        g.add(blank("y"), uri("p"), lit("two"))
        labels = canonical_blank_labels(g)
        assert labels[blank("x")] != labels[blank("y")]

    def test_context_disambiguates_empty_blanks(self):
        g = RDFGraph()
        g.add(uri("s1"), uri("p"), blank("x"))
        g.add(uri("s2"), uri("q"), blank("y"))
        labels = canonical_blank_labels(g)
        assert labels[blank("x")] != labels[blank("y")]

    def test_all_blanks_named(self):
        g = RDFGraph()
        for i in range(5):
            g.add(blank(f"b{i}"), uri("p"), blank(f"b{(i + 1) % 5}"))
        labels = canonical_blank_labels(g)
        assert len(labels) == 5
        assert len(set(labels.values())) == 5


class TestCanonicalDumps:
    def test_invariant_under_blank_renaming(self, figure1_graphs):
        v1, __ = figure1_graphs
        renamed = relabel_blanks(v1, "zz")
        assert canonical_dumps(v1) == canonical_dumps(renamed)

    def test_invariant_under_insertion_order(self, figure2_graph):
        shuffled = relabel_blanks(figure2_graph, "qq")
        assert canonical_dumps(figure2_graph) == canonical_dumps(shuffled)

    def test_bisimilar_duplicates_are_interchangeable(self):
        """Two identical records on the same subject: automorphic blanks."""
        def build(first: str, second: str) -> RDFGraph:
            g = RDFGraph()
            for name in (first, second):
                g.add(uri("s"), uri("cite"), blank(name))
                g.add(blank(name), uri("src"), lit("PubMed"))
            return g

        assert canonical_dumps(build("a", "b")) == canonical_dumps(build("b", "a"))

    def test_cycle_is_deterministic(self):
        def build(names: list[str]) -> RDFGraph:
            g = RDFGraph()
            for i, name in enumerate(names):
                g.add(blank(name), uri("p"), blank(names[(i + 1) % len(names)]))
            g.add(uri("anchor"), uri("q"), blank(names[0]))
            return g

        assert canonical_dumps(build(["x", "y", "z"])) == canonical_dumps(
            build(["m", "n", "o"])
        )

    def test_round_trip_parses_to_isomorphic_graph(self, figure1_graphs):
        v1, __ = figure1_graphs
        again = loads(canonical_dumps(v1))
        assert isomorphic_by_labels(v1, again)

    def test_different_graphs_differ(self):
        g1 = RDFGraph()
        g1.add(blank("b"), uri("p"), lit("one"))
        g2 = RDFGraph()
        g2.add(blank("b"), uri("p"), lit("two"))
        assert canonical_dumps(g1) != canonical_dumps(g2)

    @pytest.mark.parametrize("seed", range(4))
    def test_invariance_on_generated_ontologies(self, seed):
        from repro.datasets import EFOGenerator

        graph = EFOGenerator(scale=0.1, seed=seed).graph(1)
        renamed = relabel_blanks(graph, f"s{seed}")
        assert canonical_dumps(graph) == canonical_dumps(renamed)

    def test_empty_graph(self):
        assert canonical_dumps(RDFGraph()) == ""
