"""Unit tests for the CSR graph snapshot (repro.model.csr)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.model import RDFGraph, blank, lit, uri
from repro.model.csr import CSRGraph, csr_snapshot, subset_mask


@pytest.fixture
def small_graph() -> RDFGraph:
    g = RDFGraph()
    g.add(uri("a"), uri("p"), blank("b1"))
    g.add(uri("a"), uri("q"), lit("x"))
    g.add(blank("b1"), uri("p"), lit("x"))
    return g


class TestSnapshot:
    def test_node_indexing_roundtrip(self, small_graph):
        csr = csr_snapshot(small_graph)
        assert csr.num_nodes == small_graph.num_nodes
        for node in small_graph.nodes():
            assert csr.nodes[csr.dense_id(node)] == node

    def test_pair_arrays_cover_all_edges(self, small_graph):
        csr = CSRGraph(small_graph)
        assert csr.num_pairs == small_graph.num_edges
        assert len(csr.out_offsets) == csr.num_nodes + 1
        assert csr.out_offsets[-1] == csr.num_pairs
        rebuilt = set()
        for dense, node in enumerate(csr.nodes):
            start, end = csr.out_slice(dense)
            for position in range(start, end):
                rebuilt.add(
                    (
                        node,
                        csr.nodes[csr.out_predicates[position]],
                        csr.nodes[csr.out_objects[position]],
                    )
                )
        assert rebuilt == set(small_graph.edges())

    def test_out_degree_matches_graph(self, small_graph):
        csr = CSRGraph(small_graph)
        for node in small_graph.nodes():
            assert csr.out_degree(csr.dense_id(node)) == small_graph.out_degree(node)

    def test_unknown_node_raises(self, small_graph):
        csr = CSRGraph(small_graph)
        with pytest.raises(GraphError):
            csr.dense_id(uri("missing"))
        with pytest.raises(GraphError):
            csr.dense_ids([uri("a"), uri("missing")])

    def test_snapshot_is_frozen(self, small_graph):
        csr = CSRGraph(small_graph)
        small_graph.add(uri("late"), uri("p"), lit("y"))
        assert csr.num_nodes == small_graph.num_nodes - 2  # late uri + literal
        assert csr.num_pairs == small_graph.num_edges - 1


class TestColorsAndSubsets:
    def test_gather_colors_orders_by_dense_id(self, small_graph):
        csr = CSRGraph(small_graph)
        coloring = {node: i * 10 for i, node in enumerate(csr.nodes)}
        assert csr.gather_colors(coloring) == [i * 10 for i in range(csr.num_nodes)]

    def test_gather_colors_missing_node(self, small_graph):
        csr = CSRGraph(small_graph)
        with pytest.raises(GraphError):
            csr.gather_colors({})
        assert csr.gather_colors({}, default=7) == [7] * csr.num_nodes

    def test_subset_mask_full_and_partial(self, small_graph):
        csr = CSRGraph(small_graph)
        assert subset_mask(csr, None) == list(range(csr.num_nodes))
        blanks = subset_mask(csr, small_graph.blanks())
        assert blanks == sorted(csr.dense_id(n) for n in small_graph.blanks())

    def test_subgraph_pairs_full_subset_is_identity(self, small_graph):
        csr = CSRGraph(small_graph)
        offsets, predicates, objects = csr.subgraph_pairs(
            subset_mask(csr, None)
        )
        assert offsets is csr.out_offsets
        assert predicates is csr.out_predicates
        assert objects is csr.out_objects

    def test_subgraph_pairs_restricts_to_subjects(self, small_graph):
        csr = CSRGraph(small_graph)
        subset = subset_mask(csr, small_graph.blanks())
        offsets, predicates, objects = csr.subgraph_pairs(subset)
        assert len(offsets) == len(subset) + 1
        assert offsets[-1] == len(predicates) == len(objects)
        total = sum(csr.out_degree(dense) for dense in subset)
        assert offsets[-1] == total
