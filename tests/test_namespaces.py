"""Tests for namespaces (repro.model.namespaces)."""

from __future__ import annotations

import pytest

from repro.model.labels import URI
from repro.model.namespaces import (
    DCT,
    Namespace,
    OBO_NEW,
    OBO_OLD,
    RDF,
    RDF_TYPE,
    RDFS_LABEL,
    SKOS,
    XSD_INTEGER,
)


class TestNamespace:
    def test_term_minting(self):
        ns = Namespace("http://example.org/ns#")
        assert ns.term("thing") == URI("http://example.org/ns#thing")
        assert ns["thing"] == ns.term("thing")

    def test_containment(self):
        ns = Namespace("http://example.org/ns#")
        assert ns["a"] in ns
        assert URI("http://other.org/a") not in ns

    def test_local_name(self):
        ns = Namespace("http://example.org/ns#")
        assert ns.local_name(ns["abc"]) == "abc"
        with pytest.raises(ValueError):
            ns.local_name(URI("http://other.org/a"))

    def test_prefix_property_and_repr(self):
        ns = Namespace("http://x/")
        assert ns.prefix == "http://x/"
        assert "http://x/" in repr(ns)


class TestWellKnownTerms:
    def test_rdf_type(self):
        assert RDF_TYPE == RDF["type"]
        assert RDF_TYPE.value.endswith("#type")

    def test_rdfs_label(self):
        assert RDFS_LABEL.value == "http://www.w3.org/2000/01/rdf-schema#label"

    def test_xsd_integer_is_string(self):
        assert isinstance(XSD_INTEGER, str)
        assert XSD_INTEGER.endswith("integer")

    def test_obo_prefixes_match_paper(self):
        """The paper's example rename: purl.org/obo/owl → purl.obolibrary.org."""
        assert OBO_OLD.prefix == "http://purl.org/obo/owl/"
        assert OBO_NEW.prefix == "http://purl.obolibrary.org/obo/"

    def test_dataset_vocabularies(self):
        assert SKOS["broader"].value.startswith("http://www.w3.org/2004")
        assert DCT["subject"].value.startswith("http://purl.org/dc/terms/")
