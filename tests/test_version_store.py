"""VersionStore: per-version snapshot cache for batch execution.

The store's central claim is that the expensive per-cell artifacts can be
composed from per-version ones: the union's deblanking partition from
per-version blank-class quotients, Figure 10's aligned-edge ratios from
per-version edge-token sets, the union CSR snapshot from per-version
blocks.  These tests pin each composition against the legacy per-cell
computation, and the caching behaviour itself (artifacts are built once).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align import AlignConfig
from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.datasets.efo import EFOGenerator
from repro.datasets.gtopdb import GtoPdbGenerator
from repro.evaluation.metrics import aligned_edge_counts
from repro.experiments.store import (
    VersionStore,
    blank_summary,
    joint_quotient_colors,
)
from repro.model import CombinedGraph, RDFGraph, blank, combine, lit, uri
from repro.model.csr import CSRGraph
from repro.partition.interner import ColorInterner
from repro.similarity.overlap_alignment import overlap_partition

from .conftest import random_rdf_graph


class _ListGenerator:
    """Minimal generator protocol over a fixed list of graphs."""

    def __init__(self, graphs):
        self._graphs = list(graphs)

        class config:  # noqa: N801 - mimics the dataclass attribute
            versions = len(self._graphs)

        self.config = config

    def graph(self, index):
        return self._graphs[index]


def store_of(*graphs) -> VersionStore:
    return VersionStore(_ListGenerator(graphs), versions=len(graphs))


# ----------------------------------------------------------------------
# Deblank composition
# ----------------------------------------------------------------------
class TestDeblankComposition:
    def test_matches_legacy_on_efo_pairs(self):
        generator = EFOGenerator(scale=0.15, seed=234, versions=4)
        store = VersionStore(generator)
        for source in range(4):
            for target in range(source, 4):
                union = combine(generator.graph(source), generator.graph(target))
                legacy = deblank_partition(union, ColorInterner())
                composed = store.deblank_partition(
                    source, target, ColorInterner(), union
                )
                assert composed.equivalent_to(legacy)

    def test_unequal_depth_chains(self):
        """Sides stabilizing at different refinement depths still compose."""

        def chain(length: int, tail: str) -> RDFGraph:
            graph = RDFGraph()
            nodes = [blank(f"c{i}") for i in range(length)]
            for first, second in zip(nodes, nodes[1:]):
                graph.add(first, uri("p"), second)
            graph.add(nodes[-1], uri("p"), lit(tail))
            return graph

        first, second = chain(3, "x"), chain(7, "x")
        store = store_of(first, second)
        union = combine(first, second)
        legacy = deblank_partition(union, ColorInterner())
        composed = store.deblank_partition(0, 1, ColorInterner(), union)
        assert composed.equivalent_to(legacy)

    def test_blank_cycles(self):
        """Cyclic blank structures (no finite unrolling) compose too."""

        def cycle(length: int) -> RDFGraph:
            graph = RDFGraph()
            nodes = [blank(f"y{i}") for i in range(length)]
            for index, node in enumerate(nodes):
                graph.add(node, uri("p"), nodes[(index + 1) % length])
            return graph

        first, second = cycle(2), cycle(3)
        store = store_of(first, second)
        union = combine(first, second)
        legacy = deblank_partition(union, ColorInterner())
        composed = store.deblank_partition(0, 1, ColorInterner(), union)
        assert composed.equivalent_to(legacy)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_graphs(self, seed):
        rng = random.Random(seed)
        first = random_rdf_graph(
            rng,
            num_uris=rng.randrange(2, 6),
            num_literals=rng.randrange(1, 4),
            num_blanks=rng.randrange(0, 6),
            num_edges=rng.randrange(4, 24),
            uri_prefix="a",
        )
        second = random_rdf_graph(
            rng,
            num_uris=rng.randrange(2, 6),
            num_literals=rng.randrange(1, 4),
            num_blanks=rng.randrange(0, 6),
            num_edges=rng.randrange(4, 24),
            # Half the runs share the URI universe (alignable), half not.
            uri_prefix="a" if rng.random() < 0.5 else "b",
        )
        store = store_of(first, second)
        union = combine(first, second)
        legacy = deblank_partition(union, ColorInterner())
        composed = store.deblank_partition(0, 1, ColorInterner(), union)
        assert composed.equivalent_to(legacy)

    def test_self_pair_is_complete(self):
        graph = random_rdf_graph(random.Random(7))
        store = store_of(graph)
        union = combine(graph, graph)
        composed = store.deblank_partition(0, 0, ColorInterner(), union)
        legacy = deblank_partition(union, ColorInterner())
        assert composed.equivalent_to(legacy)


# ----------------------------------------------------------------------
# Fast aligned-edge metrics
# ----------------------------------------------------------------------
class TestAlignedEdgeFastPath:
    @pytest.fixture(scope="class")
    def efo(self):
        generator = EFOGenerator(scale=0.15, seed=234, versions=4)
        return generator, VersionStore(generator)

    def test_trivial_matches_legacy(self, efo):
        generator, store = efo
        for source in range(4):
            for target in range(source, 4):
                union = combine(generator.graph(source), generator.graph(target))
                legacy = aligned_edge_counts(
                    union, trivial_partition(union, ColorInterner())
                )
                assert store.aligned_edge_stats(source, target, "trivial") == legacy

    def test_deblank_matches_legacy(self, efo):
        generator, store = efo
        for source in range(4):
            for target in range(source, 4):
                union = combine(generator.graph(source), generator.graph(target))
                legacy = aligned_edge_counts(
                    union, deblank_partition(union, ColorInterner())
                )
                assert store.aligned_edge_stats(source, target, "deblank") == legacy

    def test_deblank_diagonal_is_complete(self, efo):
        _, store = efo
        aligned, total = store.aligned_edge_stats(2, 2, "deblank")
        assert aligned == total

    def test_trivial_diagonal_below_one(self, efo):
        """Blanks keep the trivial self-alignment incomplete (Figure 10)."""
        _, store = efo
        aligned, total = store.aligned_edge_stats(2, 2, "trivial")
        assert aligned < total

    def test_unknown_method_rejected(self, efo):
        _, store = efo
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            store.edge_tokens(0, "hybrid")


# ----------------------------------------------------------------------
# Cell contexts (hybrid + overlap over shared snapshots)
# ----------------------------------------------------------------------
class TestCellContext:
    @pytest.fixture(scope="class")
    def gtopdb(self):
        generator = GtoPdbGenerator(scale=0.2, seed=2016, versions=3)
        return generator, VersionStore(generator)

    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_hybrid_matches_legacy(self, gtopdb, engine):
        generator, store = gtopdb
        union, _ = generator.combined(0, 1)
        legacy = hybrid_partition(union, ColorInterner(), engine=engine)
        context = store.cell_context(0, 1, AlignConfig(engine=engine))
        assert context.hybrid.equivalent_to(legacy)

    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_overlap_matches_legacy(self, gtopdb, engine):
        generator, store = gtopdb
        union, _ = generator.combined(1, 2)
        interner = ColorInterner()
        csr = CSRGraph(union) if engine == "dense" else None
        legacy = overlap_partition(
            union,
            theta=0.65,
            interner=interner,
            base=hybrid_partition(union, interner, engine=engine, csr=csr),
            engine=engine,
            csr=csr,
        )
        weighted, trace = store.overlap_result(
            1, 2, AlignConfig(theta=0.65, engine=engine)
        )
        assert weighted.partition.equivalent_to(legacy.partition)
        assert trace.total_rounds >= 1

    def test_union_csr_matches_direct_snapshot(self, gtopdb):
        generator, store = gtopdb
        union, _ = generator.combined(0, 1)
        direct = CSRGraph(union)
        assembled = store.union_csr(0, 1)
        assert assembled.nodes == direct.nodes
        assert list(assembled.out_offsets) == list(direct.out_offsets)
        for dense_id in range(direct.num_nodes):
            start, end = direct.out_slice(dense_id)
            assert set(
                zip(direct.out_predicates[start:end], direct.out_objects[start:end])
            ) == set(
                zip(
                    assembled.out_predicates[start:end],
                    assembled.out_objects[start:end],
                )
            )

    def test_overlap_result_does_not_disturb_siblings(self, gtopdb):
        """Different thetas over one context give theta-pure results."""
        _, store = gtopdb
        low_first, _ = store.overlap_result(0, 1, AlignConfig(theta=0.45))
        high, _ = store.overlap_result(0, 1, AlignConfig(theta=0.95))
        # Recompute theta=0.45 on a fresh store: identical match structure.
        fresh = VersionStore(store.generator)
        low_fresh, _ = fresh.overlap_result(0, 1, AlignConfig(theta=0.45))
        assert low_first.partition.equivalent_to(low_fresh.partition)


# ----------------------------------------------------------------------
# Caching behaviour
# ----------------------------------------------------------------------
class TestCaching:
    def test_artifacts_are_built_once(self):
        generator = EFOGenerator(scale=0.1, seed=234, versions=3)
        store = VersionStore(generator)
        first = store.summary(1)
        assert store.summary(1) is first
        block = store.csr_block(1)
        assert store.csr_block(1) is block
        tokens = store.edge_tokens(1, "deblank")
        assert store.edge_tokens(1, "deblank") is tokens
        union = store.union(0, 1)
        assert store.union(0, 1) is union
        context = store.cell_context(0, 1)
        assert store.cell_context(0, 1) is context
        overlap = store.overlap_result(0, 1)
        assert store.overlap_result(0, 1) is overlap
        stats = store.cache_stats()
        for kind in ("summary", "csr_block", "edge_tokens", "union", "context",
                     "overlap"):
            hits, misses = stats[kind]
            assert hits >= 1, kind
            assert misses >= 1, kind

    @settings(max_examples=20, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1, max_size=12
        )
    )
    def test_cache_hit_property(self, accesses):
        """Any re-request of a pair artifact is a hit and the same object."""
        generator = EFOGenerator(scale=0.1, seed=234, versions=3)
        store = VersionStore(generator)
        seen = {}
        for source, target in accesses:
            stats = store.aligned_edge_stats(source, target, "deblank")
            if (source, target) in seen:
                assert seen[(source, target)] == stats
            seen[(source, target)] = stats
        # Every summary was computed at most once per version.
        assert store.misses.get("summary", 0) <= 3
        assert store.misses.get("joint", 0) <= len(set(accesses))

    def test_shared_store_is_per_configuration(self):
        first = VersionStore.shared("efo", scale=0.1, seed=234, versions=3)
        again = VersionStore.shared("efo", scale=0.1, seed=234, versions=3)
        other = VersionStore.shared("efo", scale=0.1, seed=235, versions=3)
        assert first is again
        assert first is not other
        assert first.generator is EFOGenerator.shared(
            scale=0.1, seed=234, versions=3
        )

    def test_clear_shared_generators_clears_stores_too(self):
        from repro.datasets import clear_shared_generators

        before = VersionStore.shared("efo", scale=0.1, seed=236, versions=2)
        clear_shared_generators()
        after = VersionStore.shared("efo", scale=0.1, seed=236, versions=2)
        assert after is not before
        assert after.generator is not before.generator

    def test_context_cache_is_bounded(self):
        generator = EFOGenerator(scale=0.1, seed=234, versions=6)
        store = VersionStore(generator)
        for source in range(6):
            for target in range(source, 6):
                store.cell_context(source, target)
        assert len(store._contexts) <= VersionStore.CONTEXT_CACHE_SIZE
        assert len(store._unions) <= VersionStore.UNION_CACHE_SIZE

    def test_unknown_family_rejected(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            VersionStore.shared("nope", scale=1.0, seed=1, versions=2)


# ----------------------------------------------------------------------
# Quotient internals
# ----------------------------------------------------------------------
class TestQuotientInternals:
    def test_summary_of_blank_free_graph_is_empty(self):
        graph = RDFGraph()
        graph.add(uri("a"), uri("p"), lit("x"))
        summary = blank_summary(graph)
        assert summary.num_classes == 0
        assert joint_quotient_colors(summary, summary) == ([], [])

    def test_bisimilar_duplicates_share_a_class(self):
        graph = RDFGraph()
        for name in ("b1", "b2"):
            record = blank(name)
            graph.add(uri("s"), uri("cite"), record)
            graph.add(record, uri("src"), lit("PubMed"))
        summary = blank_summary(graph)
        assert summary.num_classes == 1
        assert len(summary.classes) == 2

    def test_joint_colors_align_equal_contents(self):
        def record_graph(marker: str) -> RDFGraph:
            graph = RDFGraph()
            record = blank(f"r-{marker}")
            graph.add(uri("s"), uri("cite"), record)
            graph.add(record, uri("src"), lit("PubMed"))
            return graph

        first = blank_summary(record_graph("a"))
        second = blank_summary(record_graph("b"))
        colors_first, colors_second = joint_quotient_colors(first, second)
        assert colors_first == colors_second

    def test_joint_colors_separate_different_contents(self):
        def record_graph(value: str) -> RDFGraph:
            graph = RDFGraph()
            record = blank("r")
            graph.add(uri("s"), uri("cite"), record)
            graph.add(record, uri("src"), lit(value))
            return graph

        first = blank_summary(record_graph("PubMed"))
        second = blank_summary(record_graph("DOI"))
        colors_first, colors_second = joint_quotient_colors(first, second)
        assert colors_first != colors_second
