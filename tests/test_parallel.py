"""Parallel experiment execution: determinism and sharding semantics.

The contract of :mod:`repro.experiments.parallel` is that ``jobs > 1``
changes wall-clock time only: results (matrices, figure rows, rendered
reports, traces) are byte-identical to the serial run, because cells are
pure functions of prepared per-version artifacts and the merge order is
the submission order.
"""

from __future__ import annotations

import pytest

from repro.align import AlignConfig
from repro.core.deblank import deblank_partition
from repro.datasets.efo import EFOGenerator
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.evaluation.matrices import pairwise_matrix
from repro.evaluation.metrics import aligned_edge_ratio
from repro.experiments import figure10, figure13, figure15, parallel
from repro.experiments.cells import edge_ratio_cell, method_counts_cell
from repro.experiments.parallel import (
    effective_jobs,
    fork_available,
    pool_overhead,
    run_sharded,
    run_store_cells,
)
from repro.experiments.shm import list_segments, shm_available
from repro.experiments.store import VersionStore
from repro.model.csr import CSRGraph
from repro.model.union import CombinedGraph
from repro.partition.interner import ColorInterner
from repro.similarity.overlap_alignment import OverlapTrace, overlap_partition

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel pool needs the fork start method"
)


class TestRunSharded:
    def test_serial_matches_map(self):
        assert run_sharded(lambda x: x * x, range(6), jobs=1) == [
            0, 1, 4, 9, 16, 25,
        ]

    @needs_fork
    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert run_sharded(lambda x: x * 3, items, jobs=4) == [x * 3 for x in items]

    @needs_fork
    def test_parallel_matches_serial_for_closures(self):
        offset = 17
        task = lambda x: x + offset  # noqa: E731 - closures must survive the fork
        assert run_sharded(task, range(8), jobs=3) == run_sharded(
            task, range(8), jobs=1
        )

    @needs_fork
    def test_worker_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"cell {x}")

        with pytest.raises(ValueError):
            run_sharded(boom, range(4), jobs=2)

    def test_effective_jobs(self):
        assert effective_jobs(1, cells=10) == 1
        assert effective_jobs(8, cells=3) == 3
        assert effective_jobs(None, cells=1) == 1
        assert effective_jobs(0, cells=2) <= 2


class TestOverheadScheduling:
    """effective_jobs refuses to shard below the measured pool overhead."""

    @pytest.fixture(autouse=True)
    def four_cpus_and_pinned_overhead(self, monkeypatch):
        # Pin both sides of the economics so the decisions are exact:
        # the machine "has" 4 CPUs and a pool "costs" 0.5 s to start.
        monkeypatch.setattr(parallel, "usable_cpus", lambda: 4)
        monkeypatch.setattr(parallel, "_MEASURED_OVERHEAD", 0.5)

    def test_refuses_when_saving_below_overhead(self):
        # 10 cells x 1 ms x (1 - 1/4) = 7.5 ms of projected saving
        # against 500 ms of overhead: not worth a pool.
        assert effective_jobs(4, cells=10, est_cell_seconds=0.001) == 1

    def test_shards_when_saving_beats_overhead(self):
        # 10 cells x 1 s x (1 - 1/4) = 7.5 s >> 0.5 s: shard away.
        assert effective_jobs(4, cells=10, est_cell_seconds=1.0) == 4

    def test_breakeven_is_refused(self):
        # Saving exactly equal to the overhead still refuses (<=).
        est = 0.5 / (10 * (1 - 1 / 4))
        assert effective_jobs(4, cells=10, est_cell_seconds=est) == 1

    def test_single_usable_cpu_refuses_estimated_work(self, monkeypatch):
        monkeypatch.setattr(parallel, "usable_cpus", lambda: 1)
        assert effective_jobs(4, cells=100, est_cell_seconds=10.0) == 1

    def test_no_estimate_keeps_plain_clamping(self):
        # Without an estimate the historical clamp-only behavior holds.
        assert effective_jobs(4, cells=10) == 4

    def test_pool_overhead_is_measured_once(self, monkeypatch):
        monkeypatch.setattr(parallel, "_MEASURED_OVERHEAD", None)
        first = pool_overhead()
        assert first > 0.0
        assert pool_overhead() == first  # cached, not re-measured


@pytest.mark.skipif(not shm_available(), reason="needs POSIX shared memory")
class TestRunStoreCells:
    """The shm pool path: serial/fork/spawn parity and cleanup."""

    @pytest.fixture(scope="class")
    def store(self):
        store = VersionStore(SyntheticGenerator.shared(SCENARIOS["small_er"]))
        store.prepare(summaries=True, tokens=("trivial", "deblank"))
        return store

    @pytest.fixture(scope="class")
    def pairs(self, store):
        return [
            (source, target)
            for source in range(store.versions)
            for target in range(source, store.versions)
        ]

    def test_serial_path(self, store, pairs):
        rows = run_store_cells(store, edge_ratio_cell, pairs, jobs=1)
        assert rows == [edge_ratio_cell(store, None, pair) for pair in pairs]

    def test_empty_items(self, store):
        assert run_store_cells(store, edge_ratio_cell, [], jobs=4) == []

    @needs_fork
    def test_fork_pool_matches_serial(self, store, pairs):
        serial = run_store_cells(store, edge_ratio_cell, pairs, jobs=1)
        pooled = run_store_cells(
            store, edge_ratio_cell, pairs, jobs=2, context="fork", force=True
        )
        assert pooled == serial
        assert list_segments() == []

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_pool_matches_serial(self, store, pairs):
        """The no-fork (Windows-style) fallback: attach under spawn."""
        config = AlignConfig(theta=0.65)
        serial = run_store_cells(
            store, method_counts_cell, pairs[:4], jobs=1, config=config
        )
        pooled = run_store_cells(
            store, method_counts_cell, pairs[:4],
            jobs=2, config=config, context="spawn", force=True,
        )
        assert pooled == serial
        assert list_segments() == []

    @needs_fork
    def test_autotune_refuses_tiny_workload(self, store, pairs, monkeypatch):
        # With a realistic overhead and millisecond cells, the autotuned
        # path must fall back to serial rather than fork at a loss.
        monkeypatch.setattr(parallel, "usable_cpus", lambda: 4)
        monkeypatch.setattr(parallel, "_MEASURED_OVERHEAD", 10.0)
        calls: list = []
        monkeypatch.setattr(
            parallel, "SharedStorePool",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(
                AssertionError("pool started despite refusal")
            ),
        )
        rows = run_store_cells(store, edge_ratio_cell, pairs, jobs=4)
        assert rows == [edge_ratio_cell(store, None, pair) for pair in pairs]
        assert calls == []


@needs_fork
class TestPairwiseMatrixDeterminism:
    @pytest.fixture(scope="class")
    def graphs(self):
        return EFOGenerator(scale=0.12, seed=234, versions=4).graphs()

    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_jobs4_byte_identical_to_serial(self, graphs, engine):
        def cell(union: CombinedGraph) -> float:
            interner = ColorInterner()
            csr = CSRGraph(union) if engine == "dense" else None
            kwargs = {"csr": csr} if csr is not None else {}
            partition = deblank_partition(union, interner, engine=engine, **kwargs)
            return aligned_edge_ratio(union, partition)

        serial = pairwise_matrix(graphs, cell, symmetric_fill=True, jobs=1)
        parallel = pairwise_matrix(graphs, cell, symmetric_fill=True, jobs=4)
        assert parallel.values == serial.values
        assert repr(sorted(parallel.values.items())) == repr(
            sorted(serial.values.items())
        )

    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_overlap_traces_identical(self, graphs, engine):
        """The full Algorithm 2 diagnostics match serial, cell for cell."""

        def cell(pair):
            source, target = pair
            union = CombinedGraph(graphs[source], graphs[target])
            interner = ColorInterner()
            csr = CSRGraph(union) if engine == "dense" else None
            trace = OverlapTrace()
            weighted = overlap_partition(
                union, theta=0.65, interner=interner, trace=trace,
                engine=engine, csr=csr,
            )
            return (
                trace.literal_matches,
                tuple(trace.rounds),
                trace.stopped_by_round_limit,
                tuple(stats.rounds for stats in trace.weight_stats),
                weighted.partition.num_classes,
            )

        pairs = [(0, 1), (1, 2), (2, 3)]
        assert run_sharded(cell, pairs, jobs=3) == [cell(pair) for pair in pairs]


@needs_fork
class TestFigureDeterminism:
    def test_figure10_parallel_identical(self):
        serial = figure10.run(scale=0.12, versions=4, config=AlignConfig(jobs=1))
        parallel = figure10.run(scale=0.12, versions=4, config=AlignConfig(jobs=3))
        assert parallel.rows == serial.rows
        assert parallel.render() == serial.render()

    def test_figure13_parallel_identical(self):
        serial = figure13.run(scale=0.2, versions=4, config=AlignConfig(jobs=1))
        parallel = figure13.run(scale=0.2, versions=4, config=AlignConfig(jobs=2))
        assert parallel.rows == serial.rows
        assert parallel.render() == serial.render()

    def test_figure13_dense_parallel_identical(self):
        dense = AlignConfig(engine="dense")
        serial = figure13.run(scale=0.2, versions=4, config=dense.evolve(jobs=1))
        parallel = figure13.run(scale=0.2, versions=4, config=dense.evolve(jobs=2))
        assert parallel.rows == serial.rows

    def test_figure15_parallel_identical(self):
        serial = figure15.run(
            scale=0.2, versions=4, source_version=2, config=AlignConfig(jobs=1)
        )
        parallel = figure15.run(
            scale=0.2, versions=4, source_version=2, config=AlignConfig(jobs=3)
        )
        assert parallel.rows == serial.rows
        assert parallel.render() == serial.render()

    def test_jobs_not_in_report_parameters(self):
        """`jobs` must never leak into reports — it would break identity."""
        result = figure10.run(scale=0.12, versions=4, config=AlignConfig(jobs=2))
        assert "jobs" not in result.parameters
