"""Tests for the overlap alignment — Algorithm 2 (paper Figures 7/8, Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core.hybrid import hybrid_partition
from repro.model import RDFGraph, combine, lit, uri
from repro.oplus import oplus
from repro.partition.alignment import align
from repro.partition.interner import ColorInterner
from repro.similarity.edit_distance import EditDistance
from repro.similarity.overlap_alignment import (
    OverlapTrace,
    non_literal_distance,
    out_color_characterizer,
    overlap_partition,
)
from repro.partition.weighted import zero_weighted
from repro.similarity.string_distance import character_set


@pytest.fixture
def figure8(figure7_combined):
    """The overlap weighted partition of the Figure 7 graphs."""
    interner = ColorInterner()
    trace = OverlapTrace()
    weighted = overlap_partition(
        figure7_combined,
        theta=0.65,
        interner=interner,
        splitter=character_set,
        trace=trace,
    )
    return figure7_combined, weighted, trace


class TestFigure8:
    """The pairwise σξ values decorating the paper's Figure 8."""

    def test_literal_pair_distance(self, figure8):
        graph, weighted, __ = figure8
        assert weighted.distance(
            graph.from_source(lit("abc")), graph.from_target(lit("ac"))
        ) == pytest.approx(1 / 3)

    def test_w_pair_distance(self, figure8):
        graph, weighted, __ = figure8
        assert weighted.distance(
            graph.from_source(uri("w")), graph.from_target(uri("w2"))
        ) == pytest.approx(1 / 4)

    def test_u_pair_distance(self, figure8):
        graph, weighted, __ = figure8
        assert weighted.distance(
            graph.from_source(uri("u")), graph.from_target(uri("u2"))
        ) == pytest.approx(1 / 3)

    def test_v_pair_distance(self, figure8):
        graph, weighted, __ = figure8
        assert weighted.distance(
            graph.from_source(uri("v")), graph.from_target(uri("v2"))
        ) == pytest.approx(1 / 6)

    def test_example6_cross_cluster_pair(self, figure8):
        """Example 6: u and v′ are in different clusters, so σξ = 1."""
        graph, weighted, __ = figure8
        assert weighted.distance(
            graph.from_source(uri("u")), graph.from_target(uri("v2"))
        ) == 1.0

    def test_unmatched_literal_stays_unaligned(self, figure8):
        graph, weighted, __ = figure8
        alignment = align(graph, weighted.partition)
        assert not alignment.partners(graph.from_source(lit("b")))

    def test_trace_records_rounds(self, figure8):
        __, __, trace = figure8
        assert trace.literal_matches == 1
        assert trace.rounds[-1] == 0  # terminated because nothing new
        assert not trace.stopped_by_round_limit


class TestTheorem1:
    def test_overlap_approximates_edit_distance(self, figure8):
        """Same overlap cluster ⇒ σEdit(n, m) ≤ ω(n) ⊕ ω(m)."""
        graph, weighted, __ = figure8
        interner = ColorInterner()
        edit = EditDistance(
            graph, base=hybrid_partition(graph, interner), interner=interner
        )
        alignment = align(graph, weighted.partition)
        for source, target in alignment.pairs():
            bound = oplus(weighted.weight(source), weighted.weight(target))
            assert edit.distance(source, target) <= bound + 1e-9


class TestSigmaNL:
    def test_same_color_edges_couple(self, figure7_combined):
        graph = figure7_combined
        interner = ColorInterner()
        weighted = zero_weighted(hybrid_partition(graph, interner))
        sigma = non_literal_distance(graph, weighted)
        # u has 3 out edges, u2 has 2; the (p,a) and (q,c) pairs couple at
        # weight 0, the (p,b) edge stays uncoupled: R/f = 1/3.
        value = sigma(graph.from_source(uri("u")), graph.from_target(uri("u2")))
        assert value == pytest.approx(1 / 3)

    def test_sinks_have_zero_distance(self):
        g1 = RDFGraph()
        g1.add(uri("x"), uri("p"), uri("s1"))
        g2 = RDFGraph()
        g2.add(uri("x"), uri("p"), uri("s2"))
        union = combine(g1, g2)
        interner = ColorInterner()
        weighted = zero_weighted(hybrid_partition(union, interner))
        sigma = non_literal_distance(union, weighted)
        assert sigma(union.from_source(uri("s1")), union.from_target(uri("s2"))) == 0.0

    def test_out_color_characterizer(self, figure7_combined):
        graph = figure7_combined
        interner = ColorInterner()
        weighted = zero_weighted(hybrid_partition(graph, interner))
        characterize = out_color_characterizer(graph, weighted)
        u_chars = characterize(graph.from_source(uri("u")))
        u2_chars = characterize(graph.from_target(uri("u2")))
        assert len(u_chars) == 3 and len(u2_chars) == 2
        assert len(u_chars & u2_chars) == 2


class TestAlgorithmBehaviour:
    def test_overlap_refines_hybrid(self, figure7_combined):
        """Every hybrid-aligned pair stays aligned by overlap."""
        graph = figure7_combined
        interner = ColorInterner()
        base = hybrid_partition(graph, interner)
        weighted = overlap_partition(
            graph, interner=interner, base=base, splitter=character_set
        )
        hybrid_pairs = set(align(graph, base).pairs())
        overlap_pairs = set(align(graph, weighted.partition).pairs())
        assert hybrid_pairs <= overlap_pairs

    def test_theta_one_rejected_pairs(self, figure7_combined):
        """A very strict threshold aligns nothing new beyond hybrid."""
        graph = figure7_combined
        interner = ColorInterner()
        base = hybrid_partition(graph, interner)
        weighted = overlap_partition(
            graph, theta=0.05, interner=interner, base=base, splitter=character_set
        )
        assert set(align(graph, weighted.partition).pairs()) == set(
            align(graph, base).pairs()
        )

    def test_self_alignment_has_no_unaligned_nodes(self, figure7_graphs):
        g1, __ = figure7_graphs
        union = combine(g1, g1.copy())
        weighted = overlap_partition(union, splitter=character_set)
        assert not align(union, weighted.partition).unaligned()

    def test_weights_zero_for_hybrid_aligned(self, figure8):
        graph, weighted, __ = figure8
        assert weighted.weight(graph.from_source(lit("c"))) == 0.0
        assert weighted.weight(graph.from_source(uri("p"))) == 0.0
