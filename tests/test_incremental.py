"""Incremental (worklist) refinement ≡ batch refinement."""

from __future__ import annotations

import random

import pytest

from repro.core.bisimulation import bisimulation_partition
from repro.core.incremental import incremental_refine_fixpoint
from repro.core.refinement import bisim_refine_fixpoint
from repro.exceptions import PartitionError
from repro.model import RDFGraph, blank, combine, lit, uri
from repro.partition.coloring import Partition, label_partition
from repro.partition.interner import ColorInterner

from .conftest import random_rdf_graph


class TestEquivalenceWithBatch:
    def test_figure2_full_bisimulation(self, figure2_graph):
        batch = bisimulation_partition(figure2_graph)
        interner = ColorInterner()
        incremental = incremental_refine_fixpoint(
            figure2_graph, label_partition(figure2_graph, interner), None, interner
        )
        assert incremental.equivalent_to(batch)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_full_bisimulation(self, seed):
        graph = random_rdf_graph(random.Random(seed), num_edges=30)
        interner_a = ColorInterner()
        batch = bisim_refine_fixpoint(
            graph, label_partition(graph, interner_a), None, interner_a
        )
        interner_b = ColorInterner()
        incremental = incremental_refine_fixpoint(
            graph, label_partition(graph, interner_b), None, interner_b
        )
        assert incremental.equivalent_to(batch)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_deblank_subset(self, seed):
        rng = random.Random(seed)
        union = combine(
            random_rdf_graph(rng, num_edges=20, uri_prefix="x"),
            random_rdf_graph(rng, num_edges=20, uri_prefix="x"),
        )
        interner_a = ColorInterner()
        batch = bisim_refine_fixpoint(
            union, label_partition(union, interner_a), union.blanks(), interner_a
        )
        interner_b = ColorInterner()
        incremental = incremental_refine_fixpoint(
            union, label_partition(union, interner_b), union.blanks(), interner_b
        )
        assert incremental.equivalent_to(batch)


class TestPrecondition:
    def test_mixed_class_rejected(self):
        g = RDFGraph()
        g.add(uri("a"), uri("p"), lit("x"))
        g.add(uri("b"), uri("p"), lit("x"))
        # Initial partition putting subset node 'a' and non-subset node 'b'
        # into one class violates the precondition.
        part = Partition({node: 0 for node in g.nodes()})
        with pytest.raises(PartitionError):
            incremental_refine_fixpoint(g, part, [uri("a")], ColorInterner())

    def test_cycles_handled(self):
        g = RDFGraph()
        g.add(blank("x1"), uri("p"), blank("x2"))
        g.add(blank("x2"), uri("p"), blank("x1"))
        g.add(blank("y"), uri("p"), blank("y"))
        g.add(blank("z"), uri("q"), lit("v"))
        interner = ColorInterner()
        incremental = incremental_refine_fixpoint(
            g, label_partition(g, interner), g.blanks(), interner
        )
        batch_interner = ColorInterner()
        batch = bisim_refine_fixpoint(
            g, label_partition(g, batch_interner), g.blanks(), batch_interner
        )
        assert incremental.equivalent_to(batch)
        assert incremental.same_class(blank("x1"), blank("y"))
        assert not incremental.same_class(blank("x1"), blank("z"))
