"""Tests for the high-level facade (repro.api) and the CLI (repro.cli)."""

from __future__ import annotations

import warnings

import pytest

from repro import align_many, align_versions
from repro.api import METHOD_ORDER
from repro.cli import main
from repro.io import ntriples
from repro.model import blank, lit, uri
from repro.similarity.string_distance import character_set


class TestAlignVersions:
    def test_methods_form_hierarchy(self, figure3_graphs):
        source, target = figure3_graphs
        pair_sets = {}
        for method in ("trivial", "deblank", "hybrid"):
            result = align_versions(source, target, method=method)
            pair_sets[method] = set(result.alignment.pairs())
        assert pair_sets["trivial"] <= pair_sets["deblank"] <= pair_sets["hybrid"]

    def test_overlap_returns_weighted(self, figure7_graphs):
        source, target = figure7_graphs
        result = align_versions(
            source, target, method="overlap", splitter=character_set
        )
        assert result.weighted is not None
        assert result.trace is not None
        assert result.matched_entities() > 0

    def test_figure1_story(self, figure1_graphs):
        """The paper's opening example end to end."""
        source, target = figure1_graphs
        result = align_versions(source, target, method="hybrid")
        graph = result.graph
        # Bisimulation aligns the address records b1/b3.
        assert result.alignment.aligned(
            graph.from_source(blank("b1")), graph.from_target(blank("b3"))
        )
        # Hybrid aligns the renamed university URI.
        assert result.alignment.aligned(
            graph.from_source(uri("ed-uni")), graph.from_target(uri("uoe"))
        )

    def test_figure1_name_record_needs_similarity(self, figure1_graphs):
        """The name record b2/b4 is beyond bisimulation (Figure 1).

        σEdit aligns it: the matching couples the first/last names
        ((0.5 + 0 + 1)/3 = 0.5), while the overlap *heuristic* cannot even
        propose the pair ("Sławek" and "Sławomir" share no words, so the
        candidate filter rejects it) — the approximation-incompleteness
        trade-off the paper describes in the introduction.
        """
        from repro.similarity.edit_distance import EditDistance

        source, target = figure1_graphs
        hybrid = align_versions(source, target, method="hybrid")
        graph = hybrid.graph
        b2 = graph.from_source(blank("b2"))
        b4 = graph.from_target(blank("b4"))
        assert not hybrid.alignment.aligned(b2, b4)

        edit = EditDistance(graph, base=hybrid.partition, interner=hybrid.interner)
        assert edit.distance(b2, b4) == pytest.approx(0.5)
        assert (b2, b4) in {(n, m) for n, m, __ in edit.aligned_pairs(theta=0.5)}

        overlap = align_versions(source, target, method="overlap", theta=0.7)
        graph = overlap.graph
        assert not overlap.alignment.aligned(
            graph.from_source(blank("b2")), graph.from_target(blank("b4"))
        )

    def test_unknown_method(self, figure3_graphs):
        from repro.exceptions import ExperimentError, UnknownMethodError

        # The precise new type, still catchable as the legacy one.
        with pytest.raises(UnknownMethodError):
            align_versions(*figure3_graphs, method="bogus")  # type: ignore[arg-type]
        with pytest.raises(ExperimentError):
            align_versions(*figure3_graphs, method="bogus")  # type: ignore[arg-type]

    def test_unknown_engine(self, figure3_graphs):
        from repro.exceptions import ExperimentError, UnknownEngineError

        with pytest.raises(UnknownEngineError):
            align_versions(*figure3_graphs, engine="sparse")  # type: ignore[arg-type]
        with pytest.raises(ExperimentError):
            align_versions(*figure3_graphs, engine="sparse")  # type: ignore[arg-type]

    def test_theta_out_of_range(self, figure3_graphs):
        from repro.exceptions import ThresholdError

        with pytest.raises(ThresholdError):
            align_versions(*figure3_graphs, method="overlap", theta=1.5)

    def test_unaligned_counts(self, figure3_graphs):
        result = align_versions(*figure3_graphs, method="trivial")
        unaligned_source, unaligned_target = result.unaligned_counts()
        assert unaligned_source > 0 and unaligned_target > 0

    def test_method_order_constant(self):
        assert METHOD_ORDER == (
            "trivial", "deblank", "hybrid", "overlap",
            "bisim", "kbisim", "kbisim_deblank",
        )


class TestDeprecatedFacade:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self):
        """Reset the once-per-process latch around each test."""
        from repro import api

        previous = api._DEPRECATION_WARNED
        api._DEPRECATION_WARNED = False
        yield
        api._DEPRECATION_WARNED = previous

    def test_facade_warns_exactly_once(self, figure3_graphs):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            align_versions(*figure3_graphs, method="trivial")
            align_versions(*figure3_graphs, method="trivial")
            align_many(figure3_graphs[0], [figure3_graphs[1]], method="trivial")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "Aligner" in str(deprecations[0].message)

    def test_session_api_never_warns(self, figure3_graphs):
        from repro.align import AlignConfig, Aligner

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Aligner(AlignConfig(method="trivial")).align(*figure3_graphs)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestAlignMany:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    @pytest.mark.parametrize("engine", ["reference", "dense"])
    def test_matches_align_versions(self, method, engine):
        from repro.datasets.gtopdb import GtoPdbGenerator

        graphs = GtoPdbGenerator(scale=0.12, seed=2016, versions=4).graphs()
        batch = align_many(graphs[0], graphs[1:], method=method, engine=engine)
        assert len(batch) == 3
        for target, result in zip(graphs[1:], batch):
            single = align_versions(graphs[0], target, method=method, engine=engine)
            assert result.partition.equivalent_to(single.partition)
            assert result.matched_entities() == single.matched_entities()
            assert result.unaligned_counts() == single.unaligned_counts()

    def test_empty_target_list(self, figure3_graphs):
        assert align_many(figure3_graphs[0], []) == []

    def test_bad_engine_fails_fast(self, figure3_graphs):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            align_many(figure3_graphs[0], [figure3_graphs[1]], engine="nope")

    def test_overlap_batch_shares_literal_characterization(self, figure1_graphs):
        source, target = figure1_graphs
        batch = align_many(source, [target, target], method="overlap")
        single = align_versions(source, target, method="overlap")
        for result in batch:
            assert result.partition.equivalent_to(single.partition)
            assert result.weighted is not None
            assert result.trace is not None


class TestCLI:
    @pytest.fixture
    def version_files(self, tmp_path, figure1_graphs):
        source, target = figure1_graphs
        source_path = tmp_path / "v1.nt"
        target_path = tmp_path / "v2.nt"
        ntriples.dump_path(source, source_path)
        ntriples.dump_path(target, target_path)
        return str(source_path), str(target_path)

    def test_align_summary(self, version_files, capsys):
        assert main(["align", *version_files, "--method", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "matched_entities=" in out

    def test_align_pairs_output(self, version_files, tmp_path, capsys):
        output = str(tmp_path / "pairs.tsv")
        assert main(["align", *version_files, "--pairs", "--output", output]) == 0
        content = open(output).read()
        assert "\t" in content

    def test_stats(self, version_files, capsys):
        assert main(["stats", version_files[0]]) == 0
        assert "edges:" in capsys.readouterr().out

    def test_generate_and_stats_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "g.nt")
        code = main(
            ["generate", "gtopdb", "--graph-version", "1", "--scale", "0.1", "--out", out]
        )
        assert code == 0
        assert main(["stats", out]) == 0

    def test_missing_file_reports_error(self, capsys):
        assert main(["stats", "/nonexistent/file.nt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_delta_command(self, version_files, capsys):
        assert main(["delta", *version_files, "--method", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "delta summary:" in out
        assert "renamed" in out  # ed-uni -> uoe

    def test_experiment_command(self, tmp_path, capsys):
        code = main(
            [
                "experiment",
                "figure12",
                "--scale",
                "0.15",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "figure12.txt").exists()

    def test_align_report_round_trips(self, version_files, tmp_path, capsys):
        from repro.align import AlignmentReport

        report_path = str(tmp_path / "report.json")
        code = main(
            ["align", *version_files, "--method", "hybrid", "--report", report_path]
        )
        assert code == 0
        assert "wrote report" in capsys.readouterr().out
        report = AlignmentReport.load(report_path)
        assert report.method == "hybrid"
        assert AlignmentReport.validate(report.to_dict()) == []
        assert AlignmentReport.from_json(report.to_json()) == report

    def test_align_baseline_method(self, version_files, tmp_path, capsys):
        """The registry's baselines are CLI-selectable end to end."""
        report_path = str(tmp_path / "flooding.json")
        code = main(
            [
                "align",
                *version_files,
                "--method",
                "similarity_flooding",
                "--report",
                report_path,
            ]
        )
        assert code == 0
        assert "method=similarity_flooding" in capsys.readouterr().out
        from repro.align import AlignmentReport

        report = AlignmentReport.load(report_path)
        assert report.method == "similarity_flooding"
        assert report.diagnostics["rounds"] >= 1

    def test_align_turtle_input(self, tmp_path, figure1_graphs, capsys):
        from repro.io import turtle

        source, target = figure1_graphs
        source_path = tmp_path / "v1.ttl"
        target_path = tmp_path / "v2.ttl"
        source_path.write_text(turtle.dumps(source), encoding="utf-8")
        target_path.write_text(turtle.dumps(target), encoding="utf-8")
        code = main(["align", str(source_path), str(target_path), "--pairs"])
        assert code == 0
        assert "matched_entities=" in capsys.readouterr().out

    def test_align_bad_theta_reports_error(self, version_files, capsys):
        assert main(["align", *version_files, "--theta", "1.5"]) == 1
        assert "theta" in capsys.readouterr().err
