"""The capped addition operator ``⊕`` (paper Section 4.1).

Distances live in ``[0, 1]``; combining two of them must stay in range and
remain compatible with the triangle inequality.  The paper's rudimentary
definition, which we adopt as the default, is ``x ⊕ y = min(x + y, 1)``.

Alternative operators satisfying the same requirement are provided for the
ablation benchmarks: the probabilistic sum and the max (Łukasiewicz-style
co-norms); all are monotone, commutative, associative, have 0 as the
neutral element and are bounded by 1.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Iterable

#: Signature of a combination operator.
OplusOperator = Callable[[float, float], float]


def oplus(x: float, y: float) -> float:
    """``x ⊕ y = min(x + y, 1)`` — the paper's operator."""
    total = x + y
    return total if total < 1.0 else 1.0


def oplus_probabilistic(x: float, y: float) -> float:
    """Probabilistic sum ``x + y − x·y`` (always ≤ min(x+y, 1))."""
    return x + y - x * y


def oplus_max(x: float, y: float) -> float:
    """``max(x, y)`` — the Chebyshev-style combination."""
    return x if x >= y else y


def oplus_sum(values: Iterable[float], operator: OplusOperator = oplus) -> float:
    """Fold ``⊕`` over many values (``⊕{...}`` in the paper's notation).

    The empty combination is 0, the neutral element.
    """
    return reduce(operator, values, 0.0)


#: Named operators for configuration and the ablation benches.
OPERATORS: dict[str, OplusOperator] = {
    "capped": oplus,
    "probabilistic": oplus_probabilistic,
    "max": oplus_max,
}
