"""Hash-consing of colors.

The paper observes that the color assigned to a node by bisimulation
refinement "is essentially a derivation tree rooted at the node, and ...
can be compactly presented as a DAG and implemented with a simple hashing
technique".  :class:`ColorInterner` is that technique: every structural
color key (an arbitrary hashable value, typically a tuple referencing
previously interned colors) is mapped to a small integer, and equal keys
always map to the same integer.  Colors therefore compare in O(1) and the
DAG of derivation trees is stored only once.

Key conventions used across the library (see
:mod:`repro.partition.derivation` which pretty-prints them):

* ``("label", label)`` — a node label used as a color,
* ``("node", node_id)`` — a unique per-node color (trivial partition's
  blank nodes),
* ``("blank",)`` — the neutral blank color ``⊥``,
* ``("recolor", color, ((p_color, o_color), ...))`` — one refinement step
  (paper equation (1)),
* ``("component", generation, index)`` — an enrichment component
  (paper Section 4.4).
"""

from __future__ import annotations

from typing import Hashable, Iterator

#: Interned colors are plain ints.
Color = int

#: The key of the neutral blank color.
BLANK_KEY: tuple[str] = ("blank",)


class ColorInterner:
    """Bijection between structural color keys and dense integer colors."""

    __slots__ = ("_by_key", "_keys")

    def __init__(self) -> None:
        self._by_key: dict[Hashable, Color] = {}
        self._keys: list[Hashable] = []

    def intern(self, key: Hashable) -> Color:
        """Return the color for *key*, allocating one on first sight."""
        color = self._by_key.get(key)
        if color is None:
            color = len(self._keys)
            self._by_key[key] = color
            self._keys.append(key)
        return color

    def key(self, color: Color) -> Hashable:
        """The structural key that produced *color*."""
        return self._keys[color]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._keys)

    def clone(self) -> "ColorInterner":
        """An independent copy with the same key → color bijection.

        Lets several alignment runs branch off one shared base partition
        (e.g. one hybrid base, many overlap thresholds) without their
        freshly minted colors interfering: each run interns into its own
        copy, so a run's results depend only on the shared base, never on
        which sibling ran first.
        """
        copy = ColorInterner()
        copy._by_key = dict(self._by_key)
        copy._keys = list(self._keys)
        return copy

    # -- convenience constructors --------------------------------------
    def label_color(self, label: Hashable) -> Color:
        """The color of a node label (used by the initial partition)."""
        return self.intern(("label", label))

    def node_color(self, node: Hashable) -> Color:
        """A color unique to *node* (trivial partition of blank nodes)."""
        return self.intern(("node", node))

    def blank_color(self) -> Color:
        """The neutral blank color ``⊥`` (hybrid alignment's reset color)."""
        return self.intern(BLANK_KEY)

    def recolor(self, current: Color, out_pairs: tuple[tuple[Color, Color], ...]) -> Color:
        """The color of one refinement step (paper equation (1))."""
        return self.intern(("recolor", current, out_pairs))

    def component_color(self, generation: int, index: int) -> Color:
        """A fresh color for an enrichment component."""
        return self.intern(("component", generation, index))

    def __repr__(self) -> str:
        return f"<ColorInterner colors={len(self._keys)}>"
