"""Partitions of a graph, represented as colorings (paper Section 2.2).

A *partition* of a graph ``G`` is a function ``λ : N_G → C`` assigning a
color to every node; its equivalence classes are the sets of nodes sharing
a color.  Two partitions are *equivalent* (``λ1 ≡ λ2``) when they induce
the same equivalence relation — the color values themselves are mere
representation, which is why refinement functions must be invariant under
recoloring (paper Definition 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..exceptions import PartitionError
from ..model.graph import NodeId, TripleGraph
from ..model.labels import is_blank
from .interner import Color, ColorInterner


class Partition(Mapping[NodeId, Color]):
    """An immutable-by-convention node coloring.

    Behaves as a read-only mapping from node to color; mutation goes
    through :meth:`with_colors` which returns a new partition.
    """

    __slots__ = ("_colors", "_classes")

    def __init__(self, colors: Mapping[NodeId, Color]) -> None:
        self._colors: dict[NodeId, Color] = dict(colors)
        self._classes: dict[Color, frozenset[NodeId]] | None = None

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, node: NodeId) -> Color:
        try:
            return self._colors[node]
        except KeyError:
            raise PartitionError(f"partition does not cover node {node!r}") from None

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._colors)

    def __len__(self) -> int:
        return len(self._colors)

    # Concrete views instead of the Mapping-ABC defaults: the ABC versions
    # route every element through ``__getitem__`` (and its try/except),
    # which dominates profiles of the refinement hot paths.
    def keys(self):
        return self._colors.keys()

    def values(self):
        return self._colors.values()

    def items(self):
        return self._colors.items()

    # -- structure ---------------------------------------------------------
    def color(self, node: NodeId) -> Color:
        """``λ(node)``."""
        return self[node]

    def classes(self) -> dict[Color, frozenset[NodeId]]:
        """Equivalence classes keyed by color (computed once, cached)."""
        if self._classes is None:
            buckets: dict[Color, set[NodeId]] = {}
            for node, color in self._colors.items():
                buckets.setdefault(color, set()).add(node)
            self._classes = {c: frozenset(members) for c, members in buckets.items()}
        return self._classes

    @property
    def num_classes(self) -> int:
        """Number of distinct colors in use."""
        return len(set(self._colors.values()))

    def class_of(self, node: NodeId) -> frozenset[NodeId]:
        """All nodes sharing *node*'s color."""
        return self.classes()[self[node]]

    def same_class(self, first: NodeId, second: NodeId) -> bool:
        """``(first, second) ∈ R_λ``."""
        return self[first] == self[second]

    # -- relations between partitions ---------------------------------------
    def equivalent_to(self, other: "Partition") -> bool:
        """``λ1 ≡ λ2``: same equivalence classes, colors notwithstanding."""
        if set(self._colors) != set(other._colors):
            return False
        forward: dict[Color, Color] = {}
        backward: dict[Color, Color] = {}
        for node, color in self._colors.items():
            other_color = other._colors[node]
            if forward.setdefault(color, other_color) != other_color:
                return False
            if backward.setdefault(other_color, color) != color:
                return False
        return True

    def finer_than(self, other: "Partition") -> bool:
        """``R_self ⊆ R_other``: every class of *self* fits in one of *other*.

        Reflexive: a partition is finer than itself.
        """
        if set(self._colors) != set(other._colors):
            return False
        image: dict[Color, Color] = {}
        for node, color in self._colors.items():
            other_color = other._colors[node]
            if image.setdefault(color, other_color) != other_color:
                return False
        return True

    # -- derivation -----------------------------------------------------------
    def with_colors(self, updates: Mapping[NodeId, Color]) -> "Partition":
        """A new partition with some nodes recolored."""
        colors = dict(self._colors)
        colors.update(updates)
        return Partition(colors)

    def as_dict(self) -> dict[NodeId, Color]:
        """A mutable copy of the underlying coloring."""
        return dict(self._colors)

    def __repr__(self) -> str:
        return f"<Partition nodes={len(self._colors)} classes={self.num_classes}>"


def label_partition(graph: TripleGraph, interner: ColorInterner) -> Partition:
    """The node labeling function ``ℓ_G`` viewed as a partition.

    Groups nodes by label; in particular all blank nodes land in one class
    (they share the blank label).  This is the initial partition of the
    deblanking and full-bisimulation refinements.
    """
    colors: dict[NodeId, Color] = {}
    blank_color = interner.blank_color()
    for node, label in graph.labels().items():
        if is_blank(label):
            colors[node] = blank_color
        else:
            colors[node] = interner.label_color(label)
    return Partition(colors)


def discrete_partition(nodes: Iterable[NodeId], interner: ColorInterner) -> Partition:
    """The finest partition: every node alone in its class."""
    return Partition({node: interner.node_color(node) for node in nodes})


def relation_from_partition(partition: Partition) -> set[tuple[NodeId, NodeId]]:
    """Materialize ``R_λ`` as a set of pairs.

    Quadratic in class sizes — intended for tests and small graphs only.
    """
    pairs: set[tuple[NodeId, NodeId]] = set()
    for members in partition.classes().values():
        for first in members:
            for second in members:
                pairs.add((first, second))
    return pairs
