"""Alignments of two graph versions (paper Section 3.1).

Given a partition ``λ`` of the combined graph ``G = G1 ⊎ G2``, the induced
alignment is ``Align(λ) = {(n, m) ∈ N1 × N2 | λ(n) = λ(m)}``.  Alignments
of this form are exactly the binary relations with the *crossover
property*: if ``(n, m)``, ``(n, m′)`` and ``(n′, m)`` are aligned then so
is ``(n′, m′)``.

A node of one version is *unaligned* when its class contains no node of
the other version; the progressive methods (Deblank → Hybrid → Overlap)
work on exactly those nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..model.graph import NodeId
from ..model.union import SOURCE, TARGET, CombinedGraph
from .coloring import Partition
from .interner import Color


@dataclass(frozen=True, slots=True)
class ClassSides:
    """A partition class split into its source-side and target-side nodes."""

    source: frozenset[NodeId]
    target: frozenset[NodeId]

    @property
    def is_matched(self) -> bool:
        """Does the class witness an alignment (nodes on both sides)?"""
        return bool(self.source) and bool(self.target)


class PartitionAlignment:
    """The alignment ``Align(λ)`` of a combined graph's two versions.

    The full pair set can be quadratic in class sizes; this class therefore
    exposes counting and per-node queries in addition to (lazy) pair
    iteration.
    """

    __slots__ = ("_graph", "_partition", "_sides", "_unaligned_source", "_unaligned_target")

    def __init__(self, graph: CombinedGraph, partition: Partition) -> None:
        self._graph = graph
        self._partition = partition
        sides: dict[Color, ClassSides] = {}
        for color, members in partition.classes().items():
            source = frozenset(n for n in members if n in graph.source_nodes)
            target = frozenset(n for n in members if n in graph.target_nodes)
            sides[color] = ClassSides(source=source, target=target)
        self._sides = sides
        self._unaligned_source: frozenset[NodeId] | None = None
        self._unaligned_target: frozenset[NodeId] | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CombinedGraph:
        return self._graph

    @property
    def partition(self) -> Partition:
        return self._partition

    def class_sides(self) -> dict[Color, ClassSides]:
        """Every class with its side split."""
        return dict(self._sides)

    # -- membership ------------------------------------------------------
    def aligned(self, source_node: NodeId, target_node: NodeId) -> bool:
        """Is the pair (given as combined-graph ids) in ``Align(λ)``?"""
        return (
            self._graph.side(source_node) == SOURCE
            and self._graph.side(target_node) == TARGET
            and self._partition[source_node] == self._partition[target_node]
        )

    def partners(self, node: NodeId) -> frozenset[NodeId]:
        """All opposite-side nodes aligned with *node* (possibly empty)."""
        sides = self._sides[self._partition[node]]
        if self._graph.side(node) == SOURCE:
            return sides.target
        return sides.source

    def pairs(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over all aligned pairs (may be large for fat classes)."""
        for sides in self._sides.values():
            for source_node in sides.source:
                for target_node in sides.target:
                    yield source_node, target_node

    # -- counting ----------------------------------------------------------
    def pair_count(self) -> int:
        """``|Align(λ)|`` without materializing pairs."""
        return sum(
            len(s.source) * len(s.target) for s in self._sides.values() if s.is_matched
        )

    def matched_class_count(self) -> int:
        """Number of classes containing nodes of both versions.

        This is the deduplicated "number of aligned nodes" of the paper's
        Figure 13: each matched class stands for one entity.
        """
        return sum(1 for s in self._sides.values() if s.is_matched)

    # -- unaligned nodes ----------------------------------------------------
    # The partition is immutable after __init__, so the side scans are
    # computed once and cached; frozensets keep repeat callers from
    # mutating the cache.
    def unaligned_source(self) -> frozenset[NodeId]:
        """``Unaligned_1(λ)``: source nodes with no target partner."""
        if self._unaligned_source is None:
            out: set[NodeId] = set()
            for sides in self._sides.values():
                if not sides.target:
                    out.update(sides.source)
            self._unaligned_source = frozenset(out)
        return self._unaligned_source

    def unaligned_target(self) -> frozenset[NodeId]:
        """``Unaligned_2(λ)``: target nodes with no source partner."""
        if self._unaligned_target is None:
            out: set[NodeId] = set()
            for sides in self._sides.values():
                if not sides.source:
                    out.update(sides.target)
            self._unaligned_target = frozenset(out)
        return self._unaligned_target

    def unaligned(self) -> frozenset[NodeId]:
        """``Unaligned(λ) = Unaligned_1(λ) ∪ Unaligned_2(λ)``."""
        return self.unaligned_source() | self.unaligned_target()

    # -- properties ----------------------------------------------------------
    def has_crossover_property(self) -> bool:
        """Check the crossover property on the materialized pair set.

        Partition alignments always satisfy it (paper Section 3.1); the
        check runs on the actual pairs so tests exercise the theorem rather
        than the data structure.
        """
        return has_crossover_property(set(self.pairs()))

    def __repr__(self) -> str:
        return (
            f"<PartitionAlignment classes={len(self._sides)} "
            f"matched={self.matched_class_count()}>"
        )


def has_crossover_property(pairs: set[tuple[NodeId, NodeId]]) -> bool:
    """Does an arbitrary pair set satisfy the crossover property?

    ``(n, m), (n, m′), (n′, m) ∈ A ⇒ (n′, m′) ∈ A``.  Alignments induced by
    partitions always do; alignments induced by distance functions with a
    threshold (paper Section 4.1) need not.
    """
    partners_of_source: dict[NodeId, set[NodeId]] = {}
    partners_of_target: dict[NodeId, set[NodeId]] = {}
    for source_node, target_node in pairs:
        partners_of_source.setdefault(source_node, set()).add(target_node)
        partners_of_target.setdefault(target_node, set()).add(source_node)
    for source_node, target_node in pairs:
        for other_source in partners_of_target[target_node]:
            if partners_of_source[other_source] != partners_of_source[source_node]:
                # other_source shares target_node with source_node, so by
                # crossover they must share *all* partners.
                return False
    return True


def align(graph: CombinedGraph, partition: Partition) -> PartitionAlignment:
    """Build ``Align(λ)`` for *partition* over *graph*."""
    return PartitionAlignment(graph, partition)


def unaligned_nodes(graph: CombinedGraph, partition: Partition) -> set[NodeId]:
    """``Unaligned(λ)`` computed directly from a partition."""
    return PartitionAlignment(graph, partition).unaligned()


def unaligned_non_literals(graph: CombinedGraph, partition: Partition) -> set[NodeId]:
    """``UN(λ) = Unaligned(λ) \\ Literals(G)`` (paper equation (4))."""
    return {
        node
        for node in unaligned_nodes(graph, partition)
        if not graph.is_literal_node(node)
    }
