"""Derivation trees of interned colors (paper Figures 4–6).

Every color produced by the refinement process is "essentially a derivation
tree rooted at the node"; the interner stores that tree as a DAG of keys.
This module reconstructs the tree for inspection: it is what lets the
example scripts reproduce the paper's Figure 4 (fixpoint color computation)
and Figures 5–6 (colors of blank nodes under Deblank/Hybrid) as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .interner import Color, ColorInterner


@dataclass(frozen=True)
class DerivationTree:
    """A (truncated) expansion of a color into its derivation tree.

    ``head`` is a human-readable description of the root, ``children`` are
    the subtrees of the out-pairs that make up a refinement step, kept as
    (predicate subtree, object subtree) pairs.
    """

    head: str
    children: tuple[tuple["DerivationTree", "DerivationTree"], ...] = field(
        default_factory=tuple
    )
    truncated: bool = False

    @property
    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(
            max(p.depth, o.depth) for p, o in self.children
        )

    def size(self) -> int:
        """Number of tree nodes (root counts as 1)."""
        return 1 + sum(p.size() + o.size() for p, o in self.children)


def _describe(key: Hashable) -> str:
    if not isinstance(key, tuple) or not key:
        return repr(key)
    tag = key[0]
    if tag == "label":
        return str(key[1])
    if tag == "node":
        return f"node:{key[1]!r}"
    if tag == "blank":
        return "⊥"
    if tag == "component":
        return f"component#{key[2]}@{key[1]}"
    if tag == "recolor":
        return "recolor"
    return repr(key)


def derivation_tree(
    interner: ColorInterner, color: Color, max_depth: int = 10
) -> DerivationTree:
    """Expand *color* into its derivation tree, cut off at *max_depth*.

    Recolor keys unfold into their constituent colors; all other keys are
    leaves.  The cutoff makes cyclic color references (which arise on
    cyclic graphs before the fixpoint is reached) safe to print.
    """
    key = interner.key(color)
    if not (isinstance(key, tuple) and key and key[0] == "recolor"):
        return DerivationTree(head=_describe(key))
    _, base_color, out_pairs = key
    base_key = interner.key(base_color)
    head = _describe(base_key) if not (
        isinstance(base_key, tuple) and base_key and base_key[0] == "recolor"
    ) else "recolor"
    if max_depth <= 0:
        return DerivationTree(head=head, truncated=True)
    children = tuple(
        (
            derivation_tree(interner, p_color, max_depth - 1),
            derivation_tree(interner, o_color, max_depth - 1),
        )
        for p_color, o_color in out_pairs
    )
    return DerivationTree(head=head, children=children)


def render_tree(tree: DerivationTree, indent: str = "") -> str:
    """Pretty-print a derivation tree, one node per line."""
    suffix = " …" if tree.truncated else ""
    lines = [f"{indent}{tree.head}{suffix}"]
    for predicate_tree, object_tree in tree.children:
        lines.append(render_tree(predicate_tree, indent + "  ├p "))
        lines.append(render_tree(object_tree, indent + "  └o "))
    return "\n".join(lines)


def render_color(interner: ColorInterner, color: Color, max_depth: int = 10) -> str:
    """Convenience: expand and render a color in one call."""
    return render_tree(derivation_tree(interner, color, max_depth))
