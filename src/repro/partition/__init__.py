"""Partitions, colors, alignments and weighted partitions."""

from .alignment import (
    ClassSides,
    PartitionAlignment,
    align,
    has_crossover_property,
    unaligned_nodes,
    unaligned_non_literals,
)
from .coloring import (
    Partition,
    discrete_partition,
    label_partition,
    relation_from_partition,
)
from .derivation import DerivationTree, derivation_tree, render_color, render_tree
from .interner import BLANK_KEY, Color, ColorInterner
from .weighted import WeightedPartition, align_threshold, zero_weighted

__all__ = [
    "BLANK_KEY",
    "ClassSides",
    "Color",
    "ColorInterner",
    "DerivationTree",
    "Partition",
    "PartitionAlignment",
    "WeightedPartition",
    "align",
    "align_threshold",
    "derivation_tree",
    "discrete_partition",
    "has_crossover_property",
    "label_partition",
    "relation_from_partition",
    "render_color",
    "render_tree",
    "unaligned_nodes",
    "unaligned_non_literals",
    "zero_weighted",
]
