"""Weighted partitions (paper Section 4.3).

A weighted partition ``ξ = (λ, ω)`` attaches to every node a weight
``ω(n) ∈ [0, 1]`` interpreted as the node's distance from the *center* of
its cluster.  By the triangle inequality, the distance between two nodes
in the same cluster is then estimated as ``ω(n) ⊕ ω(m)`` (equation (5)),
and 1 across clusters.  The induced alignment keeps same-cluster pairs
whose estimate stays below a threshold ``θ``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..exceptions import PartitionError
from ..model.graph import NodeId
from ..model.union import SOURCE, CombinedGraph
from ..oplus import oplus
from .alignment import PartitionAlignment
from .coloring import Partition
from .interner import Color, ColorInterner


class WeightedPartition:
    """``ξ = (λ, ω)``: a partition plus a per-node weight function."""

    __slots__ = ("_partition", "_weights")

    def __init__(self, partition: Partition, weights: Mapping[NodeId, float]) -> None:
        self._partition = partition
        self._weights = dict(weights)
        missing = set(partition) - set(self._weights)
        if missing:
            raise PartitionError(
                f"weight function does not cover {len(missing)} nodes (e.g. "
                f"{next(iter(missing))!r})"
            )
        for node, weight in self._weights.items():
            if not 0.0 <= weight <= 1.0:
                raise PartitionError(f"weight of {node!r} is {weight}, outside [0, 1]")

    # ------------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The underlying coloring ``λ``."""
        return self._partition

    def color(self, node: NodeId) -> Color:
        return self._partition[node]

    def weight(self, node: NodeId) -> float:
        """``ω(node)``."""
        try:
            return self._weights[node]
        except KeyError:
            raise PartitionError(f"no weight for node {node!r}") from None

    def weights(self) -> Mapping[NodeId, float]:
        return dict(self._weights)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._partition)

    def __len__(self) -> int:
        return len(self._partition)

    # -- the induced distance function (equation (5)) -----------------------
    def distance(self, first: NodeId, second: NodeId) -> float:
        """``σ_ξ``: ``ω(n) ⊕ ω(m)`` within a cluster, 1 across clusters."""
        if self._partition[first] != self._partition[second]:
            return 1.0
        return oplus(self._weights[first], self._weights[second])

    # -- derivation ----------------------------------------------------------
    def with_updates(
        self,
        color_updates: Mapping[NodeId, Color] | None = None,
        weight_updates: Mapping[NodeId, float] | None = None,
    ) -> "WeightedPartition":
        """A new weighted partition with some colors/weights replaced."""
        partition = (
            self._partition.with_colors(color_updates)
            if color_updates
            else self._partition
        )
        weights = dict(self._weights)
        if weight_updates:
            weights.update(weight_updates)
        return WeightedPartition(partition, weights)

    def blank_out(self, nodes: Iterable[NodeId], interner: ColorInterner) -> "WeightedPartition":
        """``Blank(ξ, X)``: neutral color and weight 0 for every node in X.

        (Paper equation (3) extended to weighted partitions in Section 4.5.)
        """
        node_list = list(nodes)
        blank = interner.blank_color()
        return self.with_updates(
            color_updates={node: blank for node in node_list},
            weight_updates={node: 0.0 for node in node_list},
        )

    def __repr__(self) -> str:
        return (
            f"<WeightedPartition nodes={len(self._partition)} "
            f"classes={self._partition.num_classes}>"
        )


def zero_weighted(partition: Partition) -> WeightedPartition:
    """``(λ, 0)``: the weighted partition with the constant-zero weights."""
    return WeightedPartition(partition, {node: 0.0 for node in partition})


def align_threshold(
    graph: CombinedGraph, weighted: WeightedPartition, theta: float
) -> set[tuple[NodeId, NodeId]]:
    """``Align_θ(ξ)``: same-cluster cross-version pairs with ``ω ⊕ ω < θ``."""
    alignment = PartitionAlignment(graph, weighted.partition)
    return {
        (source_node, target_node)
        for source_node, target_node in alignment.pairs()
        if oplus(weighted.weight(source_node), weighted.weight(target_node)) < theta
    }
