"""Generated-scenario test harnesses (differential oracle).

This package keeps the four interchangeable execution paths honest —
reference/dense engines × serial/parallel jobs × every registered
method — by running them all on synthetic scenarios
(:mod:`repro.datasets.synthetic`) and asserting cross-cutting
invariants.  See :mod:`repro.testing.differential` (also runnable as
``python -m repro.testing.differential``).

The submodule is loaded lazily so that ``python -m
repro.testing.differential`` does not import it twice (once as a
package attribute, once as ``__main__``'s target).
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .differential import (  # noqa: F401
        DifferentialReport,
        Divergence,
        Refusal,
        run_differential,
        run_scenarios,
    )

__all__ = [
    "DifferentialReport",
    "Divergence",
    "Refusal",
    "run_differential",
    "run_scenarios",
]


def __getattr__(name: str):
    if name in __all__:
        from . import differential

        return getattr(differential, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
