"""Cross-engine / cross-jobs differential oracle over synthetic scenarios.

The system has four interchangeable execution paths — reference/dense
engines × serial/parallel jobs × legacy facade/session API — whose
equivalence used to be pinned only on hand-built fixtures.  This module
runs **every registered method** on a generated multi-version history
(:mod:`repro.datasets.synthetic`) across engines and job counts and
asserts the cross-cutting invariants:

* **engine parity** — the reference and dense engines produce
  byte-identical reports (modulo the ``engine`` marker itself);
* **jobs determinism** — sharding the version pairs over worker
  processes (:func:`repro.experiments.parallel.run_sharded`) yields
  byte-identical report JSON to the serial run, for every jobs count;
* **well-formedness** — alignments are structurally sound (pairs lie in
  the version sides, matched/unaligned sets are consistent, stats add
  up) and respect the generator's carried ground truth: a ground-truth
  pair whose two terms are label-equal must be aligned by every
  hierarchy method (label equality is the floor of the paper's method
  chain);
* **hierarchy containment** — the paper's ``trivial ⊆ deblank ⊆ hybrid
  ⊆ overlap`` alignment chain holds on every pair (per the registry's
  ``finer_than`` edges);
* **theta monotonicity** — raising the overlap threshold never invents
  literal matches: the literal round's match count (against the
  theta-independent hybrid base, with the recall-complete ``"safe"``
  probe) is non-increasing along the theta sweep — the final alignment
  itself is legitimately non-monotone (paper Figure 15);
* **report round-trip** — every produced
  :class:`~repro.align.report.AlignmentReport` survives
  ``from_json(to_json())`` exactly;
* **persistence parity** — saving the history's
  :class:`~repro.experiments.store.VersionStore` through every
  persistence backend (:class:`~repro.experiments.persist.MemoryBackend`
  and :class:`~repro.experiments.persist.DiskBackend`) and loading it
  back yields bit-identical CSR blocks and byte-identical alignment
  reports on every method × pair — the canonical N-Triples + block-file
  round trip loses nothing;
* **incremental parity** — maintaining each version's deblanking
  fixpoint under the generator's deltas
  (``Aligner(..., incremental=True).align_chain``; see
  :mod:`repro.core.maintain`) yields, on every consecutive pair, a
  partition equivalent to the from-scratch one and a byte-identical
  report;
* **no crashes** — a deliberate :class:`~repro.exceptions.ReproError`
  refusal is legitimate when consistent across paths, but any other
  exception in any method × engine cell is captured as a ``crash``
  divergence (the sweep still completes and the artifact is written);
* **k-bisimulation boundedness** (``--axis kbisim``) — the
  hash-signature family (:mod:`repro.core.ksignature`) sweeps the round
  bound: per pair, engines agree byte-wise at *every* ``k``, the
  partition at ``k+1`` refines the partition at ``k`` (and the aligned
  pair set shrinks accordingly), the anchor fixpoint method's alignment
  is contained at every ``k``, the alignment at ``k`` = the combined
  graph's diameter is byte-identical to the fixpoint method's (modulo
  the method-identity markers), and the signature shard pool
  (``jobs > 1``) reproduces the serial bytes exactly.

Every failure is a :class:`Divergence` carrying the scenario config, so
CI can upload ``{seed, config}`` JSON artifacts from which the exact
case is rebuilt (``rdf-align synth --config artifact.json --check``;
see ``docs/synthetic.md``).

Run the pinned seed matrix from the command line::

    python -m repro.testing.differential --out results/differential
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..align import AlignConfig, Aligner, AlignmentReport, get_method, refines
from ..align.registry import method_names, method_order
from ..benchlog import append_bench_entry  # noqa: F401  (re-exported; CI uses it)
from ..datasets.synthetic import SCENARIOS, SyntheticConfig, SyntheticGenerator
from ..exceptions import ReproError
from ..experiments.parallel import run_sharded
from ..io.atomic import atomic_write_text

#: Default theta sweep of the monotonicity check (coarse on purpose —
#: the oracle's job is ordering, not the Figure 15 curve).
DEFAULT_THETAS: tuple[float, ...] = (0.35, 0.65, 0.95)

#: Default job counts the determinism check compares against serial.
DEFAULT_JOBS: tuple[int, ...] = (1, 2)

#: Default engines; every registered method must agree across them.
DEFAULT_ENGINES: tuple[str, ...] = ("reference", "dense")

#: The oracle's selectable axes: ``"all"`` runs every invariant,
#: ``"incremental"`` runs only the incremental-vs-scratch parity check,
#: ``"persistence"`` only the save/load parity check, ``"faults"`` only
#: the fault-tolerance parity check, and ``"kbisim"`` only the
#: k-bisimulation boundedness sweep (each a dedicated CI job, cheap
#: enough to run on every push).
AXES: tuple[str, ...] = ("all", "incremental", "persistence", "faults", "kbisim")


@dataclass(frozen=True)
class Divergence:
    """One invariant violation, tied to the scenario that exposed it."""

    scenario: str
    invariant: str
    method: str
    detail: str
    pair: tuple[int, int] | None = None
    k: int | None = None

    def render(self) -> str:
        where = f" pair={self.pair}" if self.pair is not None else ""
        bound = f" k={self.k}" if self.k is not None else ""
        return (
            f"[{self.scenario}] {self.invariant} method={self.method}"
            f"{where}{bound}: {self.detail}"
        )


@dataclass
class DifferentialReport:
    """The outcome of one scenario's full method × engine × jobs sweep."""

    scenario: str
    config: SyntheticConfig
    methods: tuple[str, ...]
    engines: tuple[str, ...]
    jobs: tuple[int, ...]
    pairs: tuple[tuple[int, int], ...]
    cells: int = 0
    refusals: int = 0
    generate_seconds: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.divergences)} divergence(s)"
        refused = f", {self.refusals} refusal(s)" if self.refusals else ""
        return (
            f"{self.scenario}: {status} "
            f"({len(self.methods)} methods x {len(self.engines)} engines x "
            f"jobs {list(self.jobs)}, {len(self.pairs)} pairs, "
            f"{self.cells} cells{refused})"
        )

    def to_dict(self) -> dict:
        """The CI artifact payload: seed + config + what diverged."""
        return {
            "schema": "repro/differential-report",
            "version": 1,
            "scenario": self.scenario,
            "seed": self.config.seed,
            "config": self.config.to_dict(),
            "methods": list(self.methods),
            "engines": list(self.engines),
            "jobs": list(self.jobs),
            "pairs": [list(pair) for pair in self.pairs],
            "cells": self.cells,
            "refusals": self.refusals,
            "ok": self.ok,
            "divergences": [
                {
                    "invariant": d.invariant,
                    "method": d.method,
                    "pair": list(d.pair) if d.pair else None,
                    "k": d.k,
                    "detail": d.detail,
                }
                for d in self.divergences
            ],
        }


@dataclass(frozen=True)
class Refusal:
    """A method declining an input with a :class:`~repro.exceptions.
    ReproError` (e.g. label invention on cyclic blanks).

    A *consistent* refusal — same error type and message on every
    engine and jobs count — is a legitimate differential outcome; only
    path-dependent refusals are divergences.  ``expected=False`` marks
    an arbitrary exception instead of a deliberate ``ReproError``: that
    is a crash, always a divergence — but captured as a marker so the
    oracle still finishes the sweep and writes the ``{seed, config}``
    artifact the reproduction workflow depends on.
    """

    error_type: str
    message: str
    expected: bool = True

    def render(self) -> str:
        prefix = "REFUSED" if self.expected else "CRASHED"
        return f"{prefix} {self.error_type}: {self.message}"


def _run_cell(config: AlignConfig, source, target):
    """One alignment cell: a result object, or the method's Refusal."""
    try:
        return Aligner(config).align(source, target)
    except ReproError as error:
        return Refusal(type(error).__name__, str(error))
    except Exception as error:  # reprolint: disable=broad-except  # the oracle must report crashes, not die
        return Refusal(type(error).__name__, str(error), expected=False)


def _parity_bytes(report: AlignmentReport) -> str:
    """The report JSON with the ``engine`` marker removed.

    Engines must agree on everything else byte-for-byte; the marker
    itself legitimately differs, so it is excluded from the comparison.
    """
    if isinstance(report, Refusal):
        return report.render()
    payload = report.to_dict()
    payload.pop("engine", None)
    return json.dumps(payload, indent=2, sort_keys=True)


def _family_bytes(report: AlignmentReport) -> str:
    """The report JSON with every method-identity marker removed.

    Used by the k-bisimulation convergence check: a ``kbisim`` run at
    ``k >= `` the graph diameter must agree with the fixpoint method on
    everything except how the run *describes itself* — the method name,
    its parameters (``k``) and its diagnostics (signature round stats)
    legitimately differ, while the alignment payload (pairs, unaligned
    sets, stats) must be byte-identical.
    """
    if isinstance(report, Refusal):
        return report.render()
    payload = report.to_dict()
    for marker in ("engine", "method", "parameters", "diagnostics"):
        payload.pop(marker, None)
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_node(graph, node) -> str:
    return repr(graph.original(node))


class _ScenarioOracle:
    """One scenario's checks (kept as a class so helpers share state)."""

    def __init__(
        self,
        name: str,
        config: SyntheticConfig,
        methods: Sequence[str],
        engines: Sequence[str],
        jobs: Sequence[int],
        thetas: Sequence[float],
        shared: bool,
        axis: str = "all",
    ) -> None:
        if axis not in AXES:
            raise ValueError(f"unknown axis {axis!r}; expected one of {AXES}")
        self.axis = axis
        self.report = DifferentialReport(
            scenario=name,
            config=config,
            methods=tuple(methods),
            engines=tuple(engines),
            jobs=tuple(int(j) for j in jobs),
            pairs=tuple(
                (index, index + 1) for index in range(config.versions - 1)
            ),
        )
        self.thetas = tuple(sorted(float(t) for t in thetas))
        started = time.perf_counter()
        if shared:
            self.generator = SyntheticGenerator.shared(config)
        else:
            self.generator = SyntheticGenerator(config=config)
        self.graphs = self.generator.graphs()
        self.report.generate_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _diverge(
        self, invariant: str, method: str, detail: str,
        pair: tuple[int, int] | None = None,
        k: int | None = None,
    ) -> None:
        self.report.divergences.append(
            Divergence(
                scenario=self.report.scenario,
                invariant=invariant,
                method=method,
                detail=detail,
                pair=pair,
                k=k,
            )
        )

    def _results(self, method: str, engine: str) -> list:
        """Serial per-pair outcomes (results or :class:`Refusal` markers)."""
        config = AlignConfig(method=method, engine=engine)
        return [
            _run_cell(config, self.graphs[s], self.graphs[t])
            for s, t in self.report.pairs
        ]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_jobs_determinism(self, method: str, engine: str,
                               baseline: list[str]) -> None:
        """Sharded runs must reproduce the serial report bytes exactly."""
        config = AlignConfig(method=method, engine=engine)
        graphs = self.graphs
        pairs = self.report.pairs

        def cell(pair: tuple[int, int]) -> str:
            outcome = _run_cell(config, graphs[pair[0]], graphs[pair[1]])
            if isinstance(outcome, Refusal):
                return outcome.render()
            return outcome.report(config).to_json()

        for jobs in self.report.jobs:
            if jobs <= 1:
                # The serial *baseline* already is the jobs=1 run —
                # run_sharded short-circuits jobs<=1 to the identical
                # in-process loop, so re-running it would compare the
                # computation against itself.
                continue
            sharded = run_sharded(cell, pairs, jobs=jobs)
            for index, (expected, got) in enumerate(zip(baseline, sharded)):
                if expected != got:
                    self._diverge(
                        "jobs_determinism", method,
                        f"jobs={jobs} engine={engine} report differs from "
                        f"serial run",
                        pair=pairs[index],
                    )

    def check_engine_parity(self, method: str,
                            by_engine: dict[str, list]) -> None:
        reference_engine = self.report.engines[0]
        baseline = by_engine[reference_engine]
        for engine in self.report.engines[1:]:
            for index, (first, second) in enumerate(
                zip(baseline, by_engine[engine])
            ):
                if _parity_bytes(first) != _parity_bytes(second):
                    self._diverge(
                        "engine_parity", method,
                        f"engines {reference_engine!r} and {engine!r} "
                        f"disagree byte-wise",
                        pair=self.report.pairs[index],
                    )

    def check_well_formedness(self, method: str, engine: str,
                              results: list) -> None:
        """Structural soundness + carried-ground-truth consistency."""
        spec = get_method(method)
        for index, result in enumerate(results):
            pair = self.report.pairs[index]
            if isinstance(result, Refusal):
                continue
            graph = result.graph
            alignment = result.alignment
            pairs = set(alignment.pairs())
            bad_sides = [
                (s, t) for s, t in pairs
                if s not in graph.source_nodes or t not in graph.target_nodes
            ]
            if bad_sides:
                self._diverge(
                    "well_formedness", method,
                    f"{len(bad_sides)} aligned pair(s) outside the version "
                    f"sides (engine={engine})",
                    pair=pair,
                )
            matched_sources = {s for s, _ in pairs}
            matched_targets = {t for _, t in pairs}
            if matched_sources & alignment.unaligned_source():
                self._diverge(
                    "well_formedness", method,
                    f"nodes both matched and unaligned on the source side "
                    f"(engine={engine})",
                    pair=pair,
                )
            if matched_targets & alignment.unaligned_target():
                self._diverge(
                    "well_formedness", method,
                    f"nodes both matched and unaligned on the target side "
                    f"(engine={engine})",
                    pair=pair,
                )
            # Carried ground truth: label-equal persistent entities are the
            # floor of the method chain — every hierarchy method must align
            # them (baselines sit outside the hierarchy contract, and the
            # all-node bisimulation family may legitimately split
            # label-equal URIs by structure: label_floor=False).
            if spec.baseline or not spec.label_floor:
                continue
            truth = self.generator.ground_truth(*pair)
            labels = graph.labels()
            blanks = graph.blanks()
            for source_node, target_node in truth.combined_pairs(graph):
                if source_node in blanks or target_node in blanks:
                    continue  # blanks share one label sentinel, not a name
                if labels[source_node] != labels[target_node]:
                    continue  # renamed entity — above the trivial floor
                if not alignment.aligned(source_node, target_node):
                    self._diverge(
                        "well_formedness", method,
                        f"label-equal ground-truth pair "
                        f"{_render_node(graph, source_node)} ≙ "
                        f"{_render_node(graph, target_node)} left unaligned "
                        f"(engine={engine})",
                        pair=pair,
                    )
                    break

    def check_hierarchy(self, engine: str,
                        results_by_method: dict[str, list]) -> None:
        """Paper §3.4/§4.7: coarser methods' alignments are contained."""
        order = [m for m in method_order() if m in results_by_method]
        for coarser, finer in zip(order, order[1:]):
            if not refines(finer, coarser):
                continue
            for index, (coarse, fine) in enumerate(
                zip(results_by_method[coarser], results_by_method[finer])
            ):
                if isinstance(coarse, Refusal) or isinstance(fine, Refusal):
                    continue
                missing = set(coarse.alignment.pairs()) - set(
                    fine.alignment.pairs()
                )
                if missing:
                    self._diverge(
                        "hierarchy", finer,
                        f"{len(missing)} pair(s) aligned by {coarser!r} but "
                        f"not by {finer!r} (engine={engine})",
                        pair=self.report.pairs[index],
                    )

    def check_theta_monotonicity(self, engine: str) -> None:
        """Raising theta must never grow the literal-round match count.

        Only the *first* (literal) round is provably monotone: it matches
        against the theta-independent hybrid base, so a stricter theta can
        only admit a subset of pairs.  The final alignment is genuinely
        non-monotone (the paper's Figure 15 exact-match curve peaks
        mid-range — enrichment and re-refinement interact), and the
        ``"paper"`` ⌈kθ⌉ probe is recall-incomplete below θ = 0.5, so the
        check runs the recall-complete ``"safe"`` probe.
        """
        if "overlap" not in self.report.methods:
            return
        for pair in self.report.pairs:
            counts = []
            for theta in self.thetas:
                config = AlignConfig(
                    method="overlap", engine=engine, theta=theta, probe="safe"
                )
                result = _run_cell(config, self.graphs[pair[0]], self.graphs[pair[1]])
                self.report.cells += 1
                if isinstance(result, Refusal):
                    self._diverge(
                        "theta_monotonicity", "overlap",
                        f"overlap refused at θ={theta}: {result.render()} "
                        f"(engine={engine})",
                        pair=pair,
                    )
                    break
                counts.append(result.trace.literal_matches)
            for (low, low_count), (high, high_count) in zip(
                zip(self.thetas, counts), zip(self.thetas[1:], counts[1:])
            ):
                if high_count > low_count:
                    self._diverge(
                        "theta_monotonicity", "overlap",
                        f"literal matches grew from {low_count} (θ={low}) to "
                        f"{high_count} (θ={high}) (engine={engine})",
                        pair=pair,
                    )

    def check_incremental_parity(self, method: str, engine: str,
                                 results: list, reports: list) -> None:
        """Incremental chains must reproduce the from-scratch runs.

        The whole history is re-aligned through ``Aligner(...,
        incremental=True).align_chain`` with the generator's
        identity-preserving per-step deltas, so every consecutive pair's
        partition is *maintained* from its predecessor's fixpoint
        (:mod:`repro.core.maintain`) rather than refined from scratch.
        For each pair the maintained partition must be equivalent to the
        batch one and the rendered report byte-identical.  Methods that
        refuse the scenario are covered by the refusal-consistency axes
        and skipped here.
        """
        if any(isinstance(outcome, Refusal) for outcome in results):
            return
        config = AlignConfig(method=method, engine=engine, incremental=True)
        changes = [
            self.generator.version_changes(index)
            for index in range(len(self.graphs) - 1)
        ]
        try:
            chain = Aligner(config).align_chain(self.graphs, changes=changes)
        except Exception as error:  # reprolint: disable=broad-except  # any crash is a divergence
            self._diverge(
                "incremental_parity", method,
                f"incremental chain raised {type(error).__name__}: {error} "
                f"(engine={engine})",
            )
            return
        self.report.cells += len(chain)
        for index, (maintained, batch, expected) in enumerate(
            zip(chain, results, reports)
        ):
            pair = self.report.pairs[index]
            if hasattr(maintained, "partition") and hasattr(batch, "partition"):
                if not maintained.partition.equivalent_to(batch.partition):
                    self._diverge(
                        "incremental_parity", method,
                        f"maintained partition differs from from-scratch "
                        f"(engine={engine})",
                        pair=pair,
                    )
                    continue
            if maintained.report(config).to_json() != expected.to_json():
                self._diverge(
                    "incremental_parity", method,
                    f"incremental report differs byte-wise from the "
                    f"from-scratch run (engine={engine})",
                    pair=pair,
                )

    def check_persistence_parity(self) -> None:
        """Saved-and-reloaded stores must reproduce the in-memory run.

        The scenario's history is wrapped in a
        :class:`~repro.experiments.store.VersionStore`, persisted through
        **every** backend — an in-process ``MemoryBackend`` and a
        ``DiskBackend`` under a temporary directory — and loaded back.
        Two invariants per backend: the reloaded CSR blocks are
        bit-identical to the originals (the flat int64 block files /
        memory-maps lose nothing), and re-aligning the reloaded graphs
        yields byte-identical report JSON on every method × pair (the
        canonical sorted N-Triples round trip preserves alignment
        semantics exactly).  Refusals must stay consistent in *type*:
        the diagnostic may name a different member of the same blank
        cycle, because node traversal order is legitimately not part of
        the persisted archive (canonical N-Triples sorts the triples).
        """
        import tempfile

        from ..experiments.persist import DiskBackend, MemoryBackend
        from ..experiments.store import VersionStore

        def rendered(outcome, config) -> str:
            if isinstance(outcome, Refusal):
                return f"refusal:{outcome.error_type}"
            return outcome.report(config).to_json()

        engine = self.report.engines[0]
        baseline: dict[str, list[str]] = {}
        for method in self.report.methods:
            config = AlignConfig(method=method, engine=engine)
            baseline[method] = [
                rendered(outcome, config)
                for outcome in self._results(method, engine)
            ]
            self.report.cells += len(self.report.pairs)

        source = VersionStore(self.generator)
        source.prepare(summaries=True, csr=True)
        with tempfile.TemporaryDirectory() as tmp:
            backends = {
                "memory": MemoryBackend(),
                "disk": DiskBackend(os.path.join(tmp, "store")),
            }
            for label, backend in backends.items():
                source.save(backend)
                loaded = VersionStore.load(backend)
                for version in range(source.versions):
                    original = source.csr_block(version)
                    reloaded = loaded.csr_block(version)
                    if (
                        list(original.nodes) != list(reloaded.nodes)
                        or original.out_offsets.tobytes()
                        != reloaded.out_offsets.tobytes()
                        or original.out_predicates.tobytes()
                        != reloaded.out_predicates.tobytes()
                        or original.out_objects.tobytes()
                        != reloaded.out_objects.tobytes()
                    ):
                        self._diverge(
                            "persistence_parity", "csr",
                            f"CSR block of version {version} is not "
                            f"bit-identical after the {label} round trip",
                        )
                graphs = loaded.graphs()
                for method in self.report.methods:
                    config = AlignConfig(method=method, engine=engine)
                    for index, pair in enumerate(self.report.pairs):
                        outcome = _run_cell(
                            config, graphs[pair[0]], graphs[pair[1]]
                        )
                        self.report.cells += 1
                        if rendered(outcome, config) != baseline[method][index]:
                            self._diverge(
                                "persistence_parity", method,
                                f"report from the {label}-backend round trip "
                                f"differs byte-wise from the in-memory run "
                                f"(engine={engine})",
                                pair=pair,
                            )

    def check_fault_tolerance(self) -> None:
        """Injected-fault runs must reproduce the fault-free run's bytes.

        The resilience counterpart of persistence parity (ISSUE 8
        acceptance): the scenario's history is executed under seeded
        :class:`~repro.robustness.faults.FaultPlan`\\ s covering every
        recovery path — worker SIGKILL recovered by retry, worker
        SIGKILL on *every* attempt (degrades to serial, recorded as a
        :class:`DegradationEvent`), transient backend I/O errors
        recovered by read retry, and a real on-disk bit-flip detected by
        the CRC32 layer and healed by quarantine-and-rebuild.  For every
        plan the invariants are: the run **completes** (via retry or
        recorded degradation), its results and final AlignmentReports
        are **byte-identical** to the fault-free run, and **zero**
        ``/dev/shm`` segments leak.
        """
        import tempfile

        from ..experiments import cells
        from ..experiments.parallel import run_store_cells
        from ..experiments.persist import DiskBackend
        from ..experiments.shm import list_segments, shm_available
        from ..experiments.store import VersionStore
        from ..robustness import FaultPlan, FaultSpec, drain_events, inject

        pairs = list(self.report.pairs)
        config = AlignConfig(retries=2, cell_timeout=None)

        # ---- pool plans: crash recovery and degradation ---------------
        store = VersionStore(self.generator)
        store.prepare(summaries=True, tokens=("trivial", "deblank"), csr=True)
        clean = run_store_cells(
            store, cells.edge_ratio_cell, pairs, jobs=2, config=config,
            force=True,
        )
        clean_bytes = json.dumps(clean, sort_keys=True)
        self.report.cells += len(pairs)
        pool_plans = {
            "worker_sigkill": (
                FaultPlan(
                    name="worker_sigkill",
                    specs=(FaultSpec(site="worker.cell", kind="sigkill",
                                     attempts=(0,), times=1),),
                ),
                "recovers",
            ),
            "worker_sigkill_exhausted": (
                FaultPlan(
                    name="worker_sigkill_exhausted",
                    specs=(FaultSpec(site="worker.cell", kind="sigkill",
                                     index=0, attempts=None, times=None),),
                ),
                "degrades",
            ),
        }
        if shm_available():
            for name, (plan, expectation) in pool_plans.items():
                drain_events()
                events: list = []
                try:
                    with inject(plan):
                        faulted = run_store_cells(
                            store, cells.edge_ratio_cell, pairs, jobs=2,
                            config=config, force=True, events=events,
                        )
                except Exception as error:  # reprolint: disable=broad-except  # any crash is a divergence
                    self._diverge(
                        "fault_tolerance", name,
                        f"run under plan {name!r} did not complete: "
                        f"{type(error).__name__}: {error}",
                    )
                    continue
                self.report.cells += len(pairs)
                if json.dumps(faulted, sort_keys=True) != clean_bytes:
                    self._diverge(
                        "fault_tolerance", name,
                        f"results under plan {name!r} differ byte-wise from "
                        f"the fault-free run",
                    )
                if expectation == "degrades" and not events:
                    self._diverge(
                        "fault_tolerance", name,
                        f"plan {name!r} exhausted the retry budget but no "
                        f"DegradationEvent was recorded",
                    )
                if expectation == "recovers" and events:
                    self._diverge(
                        "fault_tolerance", name,
                        f"plan {name!r} should be absorbed by the retry "
                        f"budget, but the run degraded: "
                        f"{[e.to_dict() for e in events]}",
                    )
                leaked = list_segments()
                if leaked:
                    self._diverge(
                        "fault_tolerance", name,
                        f"{len(leaked)} leaked /dev/shm segment(s) after "
                        f"plan {name!r}: {leaked}",
                    )

        # ---- backend plans: transient I/O and real corruption ---------
        engine = self.report.engines[0]
        method = "hybrid" if "hybrid" in self.report.methods else self.report.methods[0]
        align_config = AlignConfig(method=method, engine=engine)

        def reports_from(loaded_store) -> list[str]:
            graphs = loaded_store.graphs()
            rendered = []
            for source, target in pairs:
                outcome = _run_cell(align_config, graphs[source], graphs[target])
                self.report.cells += 1
                if isinstance(outcome, Refusal):
                    rendered.append(f"refusal:{outcome.error_type}")
                else:
                    rendered.append(outcome.report(align_config).to_json())
            return rendered

        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "store")
            store.save(root)
            baseline_reports = reports_from(VersionStore.load(root))

            transient = FaultPlan(
                name="transient_io",
                specs=(FaultSpec(site="backend.read", kind="oserror",
                                 key="graphs/", times=2, attempts=None),),
            )
            try:
                with inject(transient):
                    faulted_reports = reports_from(VersionStore.load(root))
            except Exception as error:  # reprolint: disable=broad-except  # any crash is a divergence
                self._diverge(
                    "fault_tolerance", "transient_io",
                    f"load under transient I/O faults did not complete: "
                    f"{type(error).__name__}: {error}",
                )
            else:
                if faulted_reports != baseline_reports:
                    self._diverge(
                        "fault_tolerance", "transient_io",
                        "reports after transient-I/O recovery differ "
                        "byte-wise from the fault-free run",
                    )

            # Real durable corruption: flip one byte of a CSR block file
            # on disk.  The CRC32 layer must detect it, load must
            # quarantine the artifact and rebuild it from the graphs,
            # and the reports must not change.
            backend = DiskBackend.open(root)
            entry = backend._arrays.get("csr/0/offsets")
            if entry is not None:
                victim = os.path.join(root, entry["file"])
                with open(victim, "r+b") as handle:
                    first = handle.read(1)
                    handle.seek(0)
                    handle.write(bytes([first[0] ^ 0xFF]))
                try:
                    corrupted = VersionStore.load(root)
                    corrupt_reports = reports_from(corrupted)
                except Exception as error:  # reprolint: disable=broad-except  # any crash is a divergence
                    self._diverge(
                        "fault_tolerance", "corrupt_block",
                        f"load of a bit-flipped archive did not complete: "
                        f"{type(error).__name__}: {error}",
                    )
                else:
                    if not corrupted.quarantined:
                        self._diverge(
                            "fault_tolerance", "corrupt_block",
                            "bit-flipped CSR block was not detected/"
                            "quarantined at load time",
                        )
                    if corrupt_reports != baseline_reports:
                        self._diverge(
                            "fault_tolerance", "corrupt_block",
                            "reports after quarantine-and-rebuild differ "
                            "byte-wise from the fault-free run",
                        )

    def check_kbisim(self) -> None:
        """The k-bisimulation family's boundedness sweep (``--axis kbisim``).

        Per pair and per family member (``kbisim`` anchored on the full
        ``bisim`` fixpoint, ``kbisim_deblank`` on ``deblank``), the
        round bound is swept over ``k = 0 .. diameter + 1`` of the
        combined graph and five invariants are pinned:

        * **engine parity** — reference/dense agree byte-wise at every k;
        * **k-monotonicity** — the partition at ``k+1`` refines the
          partition at ``k``, so the aligned pair set at ``k+1`` is a
          subset of the one at ``k``;
        * **hierarchy containment** — the anchor fixpoint's alignment
          (and every registered floor's) is contained in the bounded
          method's at every ``k``;
        * **convergence** — at ``k >= diameter`` the report is
          byte-identical to the anchor's modulo the method-identity
          markers (:func:`_family_bytes`);
        * **jobs determinism** — at ``k = diameter`` the signature shard
          pool (every ``jobs > 1`` in the sweep) reproduces the serial
          report bytes exactly.
        """
        from ..core.ksignature import graph_diameter

        families = (
            ("kbisim", "bisim", ("bisim",)),
            ("kbisim_deblank", "deblank", ("trivial", "deblank")),
        )
        base_engine = self.report.engines[0]
        for pair in self.report.pairs:
            source, target = self.graphs[pair[0]], self.graphs[pair[1]]
            for method, anchor, floors in families:
                if method not in self.report.methods:
                    continue
                named: dict = {}
                refused = False
                for other in dict.fromkeys((anchor, *floors)):
                    outcome = _run_cell(
                        AlignConfig(method=other, engine=base_engine),
                        source, target,
                    )
                    self.report.cells += 1
                    if isinstance(outcome, Refusal):
                        self._diverge(
                            "kbisim_axis", other,
                            f"anchor/floor method refused: {outcome.render()}",
                            pair=pair,
                        )
                        refused = True
                    named[other] = outcome
                if refused:
                    continue
                diameter = graph_diameter(named[anchor].graph)
                ks = tuple(range(diameter + 2))
                swept: dict[str, dict[int, tuple]] = {}
                crashed = False
                for engine in self.report.engines:
                    swept[engine] = {}
                    for k in ks:
                        config = AlignConfig(method=method, engine=engine, k=k)
                        outcome = _run_cell(config, source, target)
                        self.report.cells += 1
                        if isinstance(outcome, Refusal):
                            self._diverge(
                                "kbisim_axis", method,
                                f"refused: {outcome.render()} "
                                f"(engine={engine})",
                                pair=pair, k=k,
                            )
                            crashed = True
                            continue
                        swept[engine][k] = (outcome, outcome.report(config))
                if crashed:
                    continue
                for engine in self.report.engines[1:]:
                    for k in ks:
                        if _parity_bytes(swept[base_engine][k][1]) != (
                            _parity_bytes(swept[engine][k][1])
                        ):
                            self._diverge(
                                "kbisim_engine_parity", method,
                                f"engines {base_engine!r} and {engine!r} "
                                f"disagree byte-wise",
                                pair=pair, k=k,
                            )
                base = swept[base_engine]
                for k in ks[:-1]:
                    coarse, fine = base[k][0], base[k + 1][0]
                    if not fine.partition.finer_than(coarse.partition):
                        self._diverge(
                            "kbisim_monotonicity", method,
                            f"partition at k={k + 1} does not refine the "
                            f"partition at k={k}",
                            pair=pair, k=k,
                        )
                    grown = set(fine.alignment.pairs()) - set(
                        coarse.alignment.pairs()
                    )
                    if grown:
                        self._diverge(
                            "kbisim_monotonicity", method,
                            f"{len(grown)} pair(s) aligned at k={k + 1} but "
                            f"not at k={k}",
                            pair=pair, k=k,
                        )
                for floor in (anchor, *floors):
                    floor_pairs = set(named[floor].alignment.pairs())
                    for k in ks:
                        missing = floor_pairs - set(base[k][0].alignment.pairs())
                        if missing:
                            self._diverge(
                                "kbisim_hierarchy", method,
                                f"{len(missing)} pair(s) aligned by {floor!r} "
                                f"but not by {method!r}",
                                pair=pair, k=k,
                            )
                anchor_bytes = _family_bytes(
                    named[anchor].report(
                        AlignConfig(method=anchor, engine=base_engine)
                    )
                )
                for k in (diameter, diameter + 1):
                    if _family_bytes(base[k][1]) != anchor_bytes:
                        self._diverge(
                            "kbisim_convergence", method,
                            f"alignment at k={k} (diameter {diameter}) is "
                            f"not byte-identical to the {anchor!r} fixpoint",
                            pair=pair, k=k,
                        )
                serial_bytes = base[diameter][1].to_json()
                for jobs in self.report.jobs:
                    if jobs <= 1:
                        continue
                    config = AlignConfig(
                        method=method, engine=base_engine,
                        k=diameter, jobs=jobs,
                    )
                    outcome = _run_cell(config, source, target)
                    self.report.cells += 1
                    if isinstance(outcome, Refusal):
                        self._diverge(
                            "kbisim_jobs_determinism", method,
                            f"jobs={jobs} run refused: {outcome.render()}",
                            pair=pair, k=diameter,
                        )
                    elif outcome.report(config).to_json() != serial_bytes:
                        self._diverge(
                            "kbisim_jobs_determinism", method,
                            f"jobs={jobs} report differs byte-wise from the "
                            f"serial run",
                            pair=pair, k=diameter,
                        )

    def check_report_roundtrip(self, method: str,
                               reports: Iterable[AlignmentReport]) -> None:
        for index, report in enumerate(reports):
            if isinstance(report, Refusal):
                continue
            problems = AlignmentReport.validate(report.to_dict())
            if problems:
                self._diverge(
                    "report_roundtrip", method,
                    f"schema violations: {problems}",
                    pair=self.report.pairs[index],
                )
                continue
            if AlignmentReport.from_json(report.to_json()) != report:
                self._diverge(
                    "report_roundtrip", method,
                    "from_json(to_json()) is not the identity",
                    pair=self.report.pairs[index],
                )

    # ------------------------------------------------------------------
    def run(self) -> DifferentialReport:
        if self.axis == "persistence":
            self.check_persistence_parity()
            return self.report
        if self.axis == "faults":
            self.check_fault_tolerance()
            return self.report
        if self.axis == "kbisim":
            self.check_kbisim()
            return self.report
        full = self.axis == "all"
        all_results: dict[str, dict[str, list]] = {
            engine: {} for engine in self.report.engines
        }
        for method in self.report.methods:
            by_engine: dict[str, list] = {}
            for engine in self.report.engines:
                config = AlignConfig(method=method, engine=engine)
                results = self._results(method, engine)
                all_results[engine][method] = results
                self.report.cells += len(results)
                for index, outcome in enumerate(results):
                    if not isinstance(outcome, Refusal):
                        continue
                    self.report.refusals += 1
                    if not outcome.expected:
                        self._diverge(
                            "crash", method,
                            f"{outcome.render()} (engine={engine})",
                            pair=self.report.pairs[index],
                        )
                reports = [
                    r if isinstance(r, Refusal) else r.report(config)
                    for r in results
                ]
                by_engine[engine] = reports
                if full:
                    self.check_well_formedness(method, engine, results)
                    self.check_report_roundtrip(method, reports)
                    self.check_jobs_determinism(
                        method, engine,
                        [
                            r.render() if isinstance(r, Refusal) else r.to_json()
                            for r in reports
                        ],
                    )
                self.check_incremental_parity(method, engine, results, reports)
            if full:
                self.check_engine_parity(method, by_engine)
        if full:
            for engine in self.report.engines:
                self.check_hierarchy(engine, all_results[engine])
                self.check_theta_monotonicity(engine)
            self.check_persistence_parity()
        return self.report


def run_differential(
    config: SyntheticConfig,
    name: str = "scenario",
    methods: Sequence[str] | None = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    jobs: Sequence[int] = DEFAULT_JOBS,
    thetas: Sequence[float] = DEFAULT_THETAS,
    shared: bool = True,
    axis: str = "all",
) -> DifferentialReport:
    """Run the full differential oracle on one scenario.

    *methods* defaults to every registered
    :class:`~repro.align.registry.MethodSpec` (baselines included);
    *shared* reuses the process-wide memoized generator so repeated runs
    (tests, figure code, the CLI) build each history once; *axis*
    selects the invariant set (:data:`AXES` — ``"incremental"`` runs
    only the incremental-vs-scratch parity check against the serial
    baseline).
    """
    if methods is None:
        methods = method_names()
    oracle = _ScenarioOracle(
        name=name,
        config=config,
        methods=methods,
        engines=engines,
        jobs=jobs,
        thetas=thetas,
        shared=shared,
        axis=axis,
    )
    return oracle.run()


def run_scenarios(
    scenarios: dict[str, SyntheticConfig] | None = None,
    **kwargs,
) -> dict[str, DifferentialReport]:
    """Run the oracle over a scenario matrix (default: the pinned seeds)."""
    if scenarios is None:
        scenarios = SCENARIOS
    return {
        name: run_differential(config, name=name, **kwargs)
        for name, config in scenarios.items()
    }


# ----------------------------------------------------------------------
# CI entry point
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.testing.differential`` — the CI oracle job.

    Runs the pinned scenario matrix, writes one artifact JSON per
    failing scenario (seed + config + divergences) under ``--out``, and
    appends per-scenario generator timings to ``--bench``.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.differential",
        description="differential oracle over the pinned synthetic scenarios",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="results/differential",
        help="directory for failing-scenario artifacts (seed + config JSON)",
    )
    parser.add_argument(
        "--bench",
        default=None,
        help="append generator timings to this bench.json file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="*",
        default=list(DEFAULT_JOBS),
        help="job counts the determinism check compares (default: 1 2)",
    )
    parser.add_argument(
        "--axis",
        choices=AXES,
        default="all",
        help="invariant set to run (incremental = only the "
        "incremental-vs-scratch parity check; persistence = only the "
        "save/load backend parity check; faults = only the seeded "
        "fault-injection parity check; kbisim = only the k-bisimulation "
        "boundedness sweep)",
    )
    args = parser.parse_args(argv)

    selected = {
        name: config
        for name, config in SCENARIOS.items()
        if not args.scenario or name in args.scenario
    }
    failures = 0
    for name, config in selected.items():
        try:
            report = run_differential(
                config, name=name, jobs=args.jobs, axis=args.axis
            )
        except Exception as error:  # reprolint: disable=broad-except
            # Last-ditch net (e.g. a generator bug): the artifact with the
            # scenario's seed + config must still reach CI.
            failures += 1
            os.makedirs(args.out, exist_ok=True)
            artifact = os.path.join(args.out, f"{name}.json")
            atomic_write_text(
                artifact,
                json.dumps(
                    {
                        "schema": "repro/differential-report",
                        "version": 1,
                        "scenario": name,
                        "seed": config.seed,
                        "config": config.to_dict(),
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
            print(f"{name}: oracle crashed — {type(error).__name__}: {error}")
            print(f"  artifact written to {artifact}")
            continue
        print(report.summary())
        if args.bench:
            append_bench_entry(
                args.bench, f"synthetic/generate/{name}",
                report.generate_seconds,
            )
        if not report.ok:
            failures += 1
            os.makedirs(args.out, exist_ok=True)
            artifact = os.path.join(args.out, f"{name}.json")
            atomic_write_text(
                artifact,
                json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            )
            for divergence in report.divergences:
                print("  " + divergence.render())
            print(f"  artifact written to {artifact}")
    if failures:
        print(f"{failures} scenario(s) diverged")
        return 1
    print(f"all {len(selected)} scenario(s) passed the differential oracle")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
