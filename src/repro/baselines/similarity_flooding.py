"""Similarity flooding (Melnik, Garcia-Molina & Rahm, ICDE 2002) [12].

The paper's closest related work.  Similarity flooding iterates pairwise
similarities over the Cartesian product of the two node sets: whenever
``(a, p, b)`` and ``(a', p', b')`` are edges with equal predicate labels,
similarity flows between the pairs ``(a, a')`` and ``(b, b')`` (in both
directions), scaled by propagation coefficients inversely proportional to
the number of such neighbors.  After each round the similarities are
normalized by the global maximum.

The key contrast the paper draws (Related Work): flooding takes a
*weighted average over the Cartesian product* of the outgoing edges of two
nodes, while `σEdit` finds the *optimal matching* among them.  Both are
inherently quadratic — this implementation is a faithful small-graph
baseline, guarded the same way as :class:`~repro.similarity.edit_distance.
EditDistance`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ExperimentError
from ..model.graph import NodeId
from ..model.labels import is_blank
from ..model.union import CombinedGraph

#: A pairwise similarity table.
SimilarityTable = dict[tuple[NodeId, NodeId], float]


@dataclass(frozen=True)
class FloodingResult:
    """Similarities plus the number of rounds the fixpoint took."""

    similarities: SimilarityTable
    rounds: int

    def best_matches(self, threshold: float = 0.0) -> dict[NodeId, NodeId]:
        """Each source node's highest-similarity target above *threshold*."""
        best: dict[NodeId, tuple[float, NodeId]] = {}
        for (source, target), value in self.similarities.items():
            if value > threshold and (
                source not in best or value > best[source][0]
            ):
                best[source] = (value, target)
        return {source: target for source, (__, target) in best.items()}

    def mutual_best_matches(self, threshold: float = 0.0) -> set[tuple[NodeId, NodeId]]:
        """Pairs that are each other's best match (the usual SF filter)."""
        forward = self.best_matches(threshold)
        backward: dict[NodeId, tuple[float, NodeId]] = {}
        for (source, target), value in self.similarities.items():
            if value > threshold and (
                target not in backward or value > backward[target][0]
            ):
                backward[target] = (value, source)
        return {
            (source, target)
            for source, target in forward.items()
            if backward.get(target, (0.0, None))[1] == source
        }


def _canonical_nodes(graph: CombinedGraph, nodes) -> list[NodeId]:
    """*nodes* sorted by their own-version identifier's repr.

    Flooding is order-sensitive where bisimulation is not: the similarity
    table's iteration order decides tie-breaking in :meth:`FloodingResult.
    best_matches` and the float summation order of the propagation step.
    Node sets are hash-ordered (and insertion order differs between a
    generated graph and the same graph reloaded from canonical N-Triples),
    so every iteration below is pinned to this canonical order to make the
    result a function of the graph's *content* only.
    """
    return sorted(nodes, key=lambda node: repr(graph.original(node)))


def _canonical_edges(graph: CombinedGraph) -> list[tuple[NodeId, NodeId, NodeId]]:
    """The union's edges in a content-determined order (see above)."""
    def key(edge):
        subject, predicate, obj = edge
        return (
            graph.side(subject),
            repr(graph.original(subject)),
            repr(graph.original(predicate)),
            repr(graph.original(obj)),
        )

    return sorted(graph.edges(), key=key)


def _initial_similarities(graph: CombinedGraph) -> SimilarityTable:
    """Seed: 1.0 for equal non-blank labels, a small ε for same-kind pairs."""
    table: SimilarityTable = {}
    targets = _canonical_nodes(graph, graph.target_nodes)
    for source in _canonical_nodes(graph, graph.source_nodes):
        source_label = graph.label(source)
        for target in targets:
            target_label = graph.label(target)
            if source_label == target_label and not is_blank(source_label):
                table[(source, target)] = 1.0
            elif source_label.kind == target_label.kind:
                table[(source, target)] = 0.001
    return table


def similarity_flooding(
    graph: CombinedGraph,
    initial: SimilarityTable | None = None,
    max_rounds: int = 50,
    epsilon: float = 1e-4,
    max_pairs: int = 250_000,
) -> FloodingResult:
    """Run similarity flooding on a combined graph.

    Predicates are compared by *label* (the classical formulation; unlike
    the paper's bisimulation methods, flooding cannot align renamed
    predicates).  Raises :class:`ExperimentError` when the pair table would
    exceed *max_pairs*.
    """
    pair_budget = len(graph.source_nodes) * len(graph.target_nodes)
    if pair_budget > max_pairs:
        raise ExperimentError(
            f"similarity flooding would materialize {pair_budget} pairs "
            f"(> {max_pairs}); it is a small-graph baseline"
        )
    table = dict(initial) if initial is not None else _initial_similarities(graph)
    seed = dict(table)

    # Propagation edges: ((a,a'), (b,b'), coefficient), built once, in
    # canonical edge order so the summation below is bit-reproducible.
    by_predicate_source: dict = {}
    for subject, predicate, obj in _canonical_edges(graph):
        by_predicate_source.setdefault(
            (graph.side(subject), graph.label(predicate)), []
        ).append((subject, obj))
    propagation: dict[tuple[NodeId, NodeId], list[tuple[tuple[NodeId, NodeId], float]]] = {}
    for (side, predicate_label), edges in by_predicate_source.items():
        if side != 1:
            continue
        other_edges = by_predicate_source.get((2, predicate_label), [])
        if not other_edges:
            continue
        for subject, obj in edges:
            for other_subject, other_obj in other_edges:
                subject_pair = (subject, other_subject)
                object_pair = (obj, other_obj)
                propagation.setdefault(subject_pair, []).append((object_pair, 1.0))
                propagation.setdefault(object_pair, []).append((subject_pair, 1.0))
    # Normalize coefficients per pair (inverse-degree weighting).
    for pair, neighbors in propagation.items():
        coefficient = 1.0 / len(neighbors)
        propagation[pair] = [(neighbor, coefficient) for neighbor, __ in neighbors]

    rounds = 0
    for rounds in range(1, max_rounds + 1):
        updated: SimilarityTable = {}
        peak = 0.0
        for pair, value in table.items():
            incoming = 0.0
            for neighbor, coefficient in propagation.get(pair, ()):
                incoming += coefficient * table.get(neighbor, 0.0)
            new_value = seed.get(pair, 0.0) + value + incoming
            updated[pair] = new_value
            if new_value > peak:
                peak = new_value
        if peak > 0:
            for pair in updated:
                updated[pair] /= peak
        delta = max(
            abs(updated[pair] - table.get(pair, 0.0)) for pair in updated
        )
        table = updated
        if delta < epsilon:
            break
    return FloodingResult(similarities=table, rounds=rounds)
