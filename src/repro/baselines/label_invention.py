"""Blank-node label invention (Tzitzikas, Lantzaki & Zeginis, ISWC 2012) [17].

The prior art for blank-node matching: each blank node receives an
*invented label* computed bottom-up from its outbound neighborhood — a
canonical serialization of the (predicate, object) pairs, where blank
objects contribute their own invented labels.  Matching then reduces to
label equality.

The method **assumes the blank nodes form no cycles**; on cyclic blanks it
fails (we raise :class:`CyclicBlankError`).  The paper's deblanking
alignment generalizes it: on acyclic inputs both agree (property-tested),
and deblanking additionally handles cycles, edit-distance refinement and
ontology renames.
"""

from __future__ import annotations

from ..exceptions import ReproError
from ..model.graph import NodeId, TripleGraph
from ..model.labels import is_blank
from ..model.union import CombinedGraph


class CyclicBlankError(ReproError):
    """The blank nodes form a cycle; label invention is undefined."""


def invent_labels(graph: TripleGraph) -> dict[NodeId, str]:
    """Canonical invented labels for every blank node of *graph*.

    Non-blank nodes are rendered by their own labels; a blank node is
    rendered as the sorted list of its outbound (predicate, object)
    renderings.  Equal invented labels ⟺ equal unfoldings.
    """
    invented: dict[NodeId, str] = {}
    in_progress: set[NodeId] = set()

    def render(node: NodeId) -> str:
        label = graph.label(node)
        if not is_blank(label):
            return repr(label)
        if node in invented:
            return invented[node]
        if node in in_progress:
            raise CyclicBlankError(
                f"blank node {node!r} participates in a blank cycle; "
                "label invention assumes acyclic blanks (use deblanking)"
            )
        in_progress.add(node)
        parts = sorted(
            f"({render(predicate)} {render(obj)})" for predicate, obj in graph.out(node)
        )
        in_progress.discard(node)
        invented[node] = "[" + " ".join(parts) + "]"
        return invented[node]

    for node in graph.nodes():
        if is_blank(graph.label(node)):
            render(node)
    return invented


def label_invention_alignment(graph: CombinedGraph) -> set[tuple[NodeId, NodeId]]:
    """Align two versions by (invented-)label equality.

    Non-blank nodes align on their labels (the trivial alignment); blank
    nodes align on their invented labels.  Raises on blank cycles.
    """
    invented = invent_labels(graph)

    def key(node: NodeId) -> str:
        if node in invented:
            return "blank:" + invented[node]
        return "label:" + repr(graph.label(node))

    by_key: dict[str, tuple[set[NodeId], set[NodeId]]] = {}
    for node in graph.source_nodes:
        by_key.setdefault(key(node), (set(), set()))[0].add(node)
    for node in graph.target_nodes:
        by_key.setdefault(key(node), (set(), set()))[1].add(node)
    pairs: set[tuple[NodeId, NodeId]] = set()
    for sources, targets in by_key.values():
        for source in sources:
            for target in targets:
                pairs.add((source, target))
    return pairs
