"""Related-work baselines: similarity flooding and blank-node label invention."""

from .label_invention import (
    CyclicBlankError,
    invent_labels,
    label_invention_alignment,
)
from .similarity_flooding import FloodingResult, similarity_flooding

__all__ = [
    "CyclicBlankError",
    "FloodingResult",
    "invent_labels",
    "label_invention_alignment",
    "similarity_flooding",
]
