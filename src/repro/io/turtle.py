"""A minimal Turtle *writer* with prefix compaction.

Turtle output is for human inspection of generated datasets (the canonical
interchange format of this library is N-Triples, which round-trips).  The
writer groups triples by subject, compacts URIs against a caller-supplied
prefix map and emits ``a`` for ``rdf:type``.
"""

from __future__ import annotations

from typing import Mapping

from ..model.labels import Literal, URI
from ..model.namespaces import RDF
from ..model.rdf import BlankNode, RDFGraph, Term
from .ntriples import _escape_literal

_RDF_TYPE = RDF["type"]


def _compact(term: URI, prefixes: Mapping[str, str]) -> str:
    for prefix, base in prefixes.items():
        if term.value.startswith(base):
            local = term.value[len(base):]
            if local and all(c.isalnum() or c in "-_." for c in local):
                return f"{prefix}:{local}"
    return f"<{term.value}>"


def _format(term: Term, prefixes: Mapping[str, str]) -> str:
    if isinstance(term, URI):
        return _compact(term, prefixes)
    if isinstance(term, BlankNode):
        return f"_:{term.name}"
    if isinstance(term, Literal):
        rendered = f'"{_escape_literal(term.value)}"'
        if term.language is not None:
            rendered += f"@{term.language}"
        elif term.datatype is not None:
            rendered += "^^" + _compact(URI(term.datatype), prefixes)
        return rendered
    raise TypeError(f"not an RDF term: {term!r}")


def dumps(graph: RDFGraph, prefixes: Mapping[str, str] | None = None) -> str:
    """Serialize *graph* as Turtle.

    *prefixes* maps prefix names to base URIs, e.g. ``{"rdf": RDF.prefix}``.
    """
    prefixes = dict(prefixes or {})
    lines = [f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())]
    if lines:
        lines.append("")

    by_subject: dict[str, list[tuple[str, str]]] = {}
    for subject, predicate, obj in graph.triples():
        subject_text = _format(subject, prefixes)
        if predicate == _RDF_TYPE:
            predicate_text = "a"
        else:
            predicate_text = _format(predicate, prefixes)
        by_subject.setdefault(subject_text, []).append(
            (predicate_text, _format(obj, prefixes))
        )

    for subject_text in sorted(by_subject):
        pairs = sorted(by_subject[subject_text])
        parts = [f"{subject_text} "]
        for index, (predicate_text, object_text) in enumerate(pairs):
            separator = " ;\n    " if index < len(pairs) - 1 else " .\n"
            parts.append(f"{predicate_text} {object_text}{separator}")
        lines.append("".join(parts))
    return "\n".join(lines)
