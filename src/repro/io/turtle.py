"""A minimal Turtle writer *and reader* with prefix support.

Turtle output is for human inspection of generated datasets (the canonical
interchange format of this library is N-Triples, which round-trips).  The
writer groups triples by subject, compacts URIs against a caller-supplied
prefix map and emits ``a`` for ``rdf:type``.

The reader (:func:`loads`/:func:`load`/:func:`load_path`) parses the
pragmatic Turtle subset the writer emits — and what hand-written ontology
files typically use:

* ``@prefix`` / ``@base`` directives (and their SPARQL-style ``PREFIX`` /
  ``BASE`` spellings),
* full IRIs ``<...>``, prefixed names ``ex:local``, the ``a`` keyword,
* blank node labels ``_:b``,
* literals with language tags and datatypes,
* predicate lists (``;``), object lists (``,``) and ``#`` comments.

Not supported (rejected with a :class:`~repro.exceptions.ParseError`):
anonymous blank nodes ``[...]``, collections ``(...)``, triple-quoted
literals and numeric/boolean literal shorthand.
"""

from __future__ import annotations

import os
import re
from typing import Iterator, Mapping, TextIO

from ..exceptions import ParseError
from ..model.labels import Literal, URI
from ..model.namespaces import RDF
from ..model.rdf import BlankNode, RDFGraph, Term
from .ntriples import _ESCAPES, _escape_literal

_RDF_TYPE = RDF["type"]


def _compact(term: URI, prefixes: Mapping[str, str]) -> str:
    for prefix, base in prefixes.items():
        if term.value.startswith(base):
            local = term.value[len(base):]
            if local and all(c.isalnum() or c in "-_." for c in local):
                return f"{prefix}:{local}"
    return f"<{term.value}>"


def _format(term: Term, prefixes: Mapping[str, str]) -> str:
    if isinstance(term, URI):
        return _compact(term, prefixes)
    if isinstance(term, BlankNode):
        return f"_:{term.name}"
    if isinstance(term, Literal):
        rendered = f'"{_escape_literal(term.value)}"'
        if term.language is not None:
            rendered += f"@{term.language}"
        elif term.datatype is not None:
            rendered += "^^" + _compact(URI(term.datatype), prefixes)
        return rendered
    raise TypeError(f"not an RDF term: {term!r}")


def dumps(graph: RDFGraph, prefixes: Mapping[str, str] | None = None) -> str:
    """Serialize *graph* as Turtle.

    *prefixes* maps prefix names to base URIs, e.g. ``{"rdf": RDF.prefix}``.
    """
    prefixes = dict(prefixes or {})
    lines = [f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())]
    if lines:
        lines.append("")

    by_subject: dict[str, list[tuple[str, str]]] = {}
    for subject, predicate, obj in graph.triples():
        subject_text = _format(subject, prefixes)
        if predicate == _RDF_TYPE:
            predicate_text = "a"
        else:
            predicate_text = _format(predicate, prefixes)
        by_subject.setdefault(subject_text, []).append(
            (predicate_text, _format(obj, prefixes))
        )

    for subject_text in sorted(by_subject):
        pairs = sorted(by_subject[subject_text])
        parts = [f"{subject_text} "]
        for index, (predicate_text, object_text) in enumerate(pairs):
            separator = " ;\n    " if index < len(pairs) - 1 else " .\n"
            parts.append(f"{predicate_text} {object_text}{separator}")
        lines.append("".join(parts))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class _Scanner:
    """A cursor over a whole Turtle document (statements span lines)."""

    __slots__ = ("text", "pos", "line")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.line)

    def skip_space(self) -> None:
        """Advance past whitespace and ``#`` comments."""
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char == "\n":
                self.line += 1
                self.pos += 1
            elif char in " \t\r":
                self.pos += 1
            elif char == "#":
                end = text.find("\n", self.pos)
                self.pos = len(text) if end < 0 else end
            else:
                return

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def expect(self, char: str) -> None:
        if not self.take(char):
            raise self.error(f"expected {char!r}, got {self.peek()!r}")

    # -- tokens ---------------------------------------------------------
    def read_iriref(self) -> str:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        raw = self.text[self.pos:end]
        if "\n" in raw:
            # An IRIREF cannot span lines; without this check a missing
            # ">" would silently swallow the following statements.
            raise self.error("unterminated IRI (newline before '>')")
        self.pos = end + 1
        return self._unescape(raw)

    def read_name(self) -> str:
        """A bare name: prefix label, local name or keyword."""
        start = self.pos
        text = self.text
        while self.pos < len(text) and (
            text[self.pos].isalnum() or text[self.pos] in "-_."
        ):
            self.pos += 1
        name = text[start:self.pos]
        # A trailing dot is the statement terminator, not part of the name.
        while name.endswith("."):
            name = name[:-1]
            self.pos -= 1
        return name

    def read_quoted(self) -> str:
        self.expect('"')
        chunks: list[str] = []
        text = self.text
        while True:
            if self.pos >= len(text):
                raise self.error("unterminated literal")
            char = text[self.pos]
            if char == '"':
                self.pos += 1
                return "".join(chunks)
            if char == "\n":
                raise self.error("newline inside literal (use \\n)")
            if char == "\\":
                self.pos += 1
                chunks.append(self._read_escape())
            else:
                chunks.append(char)
                self.pos += 1

    def _read_escape(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("dangling backslash")
        char = self.text[self.pos]
        self.pos += 1
        if char in _ESCAPES:
            return _ESCAPES[char]
        if char in "uU":
            width = 4 if char == "u" else 8
            digits = self.text[self.pos:self.pos + width]
            try:
                code_point = int(digits, 16)
            except ValueError:
                raise self.error(f"bad unicode escape \\{char}{digits}") from None
            self.pos += width
            return chr(code_point)
        raise self.error(f"unknown escape \\{char}")

    def _unescape(self, raw: str) -> str:
        if "\\" not in raw:
            return raw
        inner = _Scanner(raw)
        chunks: list[str] = []
        while inner.pos < len(raw):
            char = raw[inner.pos]
            inner.pos += 1
            if char == "\\":
                chunks.append(inner._read_escape())
            else:
                chunks.append(char)
        return "".join(chunks)


class _TurtleParser:
    """Recursive-descent parser over :class:`_Scanner` tokens."""

    def __init__(self, text: str) -> None:
        self.scanner = _Scanner(text)
        self.prefixes: dict[str, str] = {}
        self.base = ""

    def parse(self) -> Iterator[tuple[Term, Term, Term]]:
        scanner = self.scanner
        while not scanner.at_end():
            if scanner.peek() == "@":
                self._directive()
                continue
            checkpoint = scanner.pos
            word = scanner.read_name()
            # A directive keyword is never followed by ":" — that would be
            # a prefixed name whose label happens to be "prefix"/"base".
            if word.upper() in ("PREFIX", "BASE") and scanner.peek() != ":":
                self._sparql_directive(word.upper())
                continue
            scanner.pos = checkpoint  # not a directive: a subject
            yield from self._statement()

    # -- directives -----------------------------------------------------
    def _directive(self) -> None:
        scanner = self.scanner
        scanner.expect("@")
        keyword = scanner.read_name()
        if keyword == "prefix":
            self._prefix_binding()
            scanner.skip_space()
            scanner.expect(".")
        elif keyword == "base":
            scanner.skip_space()
            self.base = scanner.read_iriref()
            scanner.skip_space()
            scanner.expect(".")
        else:
            raise scanner.error(f"unknown directive @{keyword}")

    def _sparql_directive(self, keyword: str) -> None:
        scanner = self.scanner
        if keyword == "PREFIX":
            self._prefix_binding()
        else:
            scanner.skip_space()
            self.base = scanner.read_iriref()

    def _prefix_binding(self) -> None:
        scanner = self.scanner
        scanner.skip_space()
        label = scanner.read_name()
        scanner.expect(":")
        scanner.skip_space()
        self.prefixes[label] = scanner.read_iriref()

    # -- statements -----------------------------------------------------
    def _statement(self) -> Iterator[tuple[Term, Term, Term]]:
        scanner = self.scanner
        subject = self._term(position="subject")
        while True:
            scanner.skip_space()
            predicate = self._verb()
            while True:
                obj = self._term(position="object")
                yield (subject, predicate, obj)
                scanner.skip_space()
                if not scanner.take(","):
                    break
            scanner.skip_space()
            if scanner.take(";"):
                scanner.skip_space()
                if scanner.take("."):  # tolerate "; ." tails
                    return
                continue
            scanner.expect(".")
            return

    def _resolve_iri(self, raw: str) -> str:
        """Resolve against ``@base`` (by concatenation; relative only)."""
        if not self.base or re.match(r"^[A-Za-z][A-Za-z0-9+.\-]*:", raw):
            return raw
        return self.base + raw

    def _verb(self) -> Term:
        scanner = self.scanner
        checkpoint = scanner.pos
        if scanner.peek() not in '<"_':
            word = scanner.read_name()
            if word == "a" and scanner.peek() != ":":
                return _RDF_TYPE
            scanner.pos = checkpoint
        term = self._term(position="predicate")
        if not isinstance(term, URI):
            raise scanner.error(f"predicate must be an IRI, got {term!r}")
        return term

    def _term(self, position: str) -> Term:
        scanner = self.scanner
        scanner.skip_space()
        char = scanner.peek()
        if char == "<":
            return URI(self._resolve_iri(scanner.read_iriref()))
        if char == "_":
            scanner.expect("_")
            scanner.expect(":")
            name = scanner.read_name()
            if not name:
                raise scanner.error("empty blank node label")
            if position == "predicate":
                raise scanner.error("blank node not allowed as predicate")
            return BlankNode(name)
        if char == '"':
            if position != "object":
                raise scanner.error(f"literal not allowed as {position}")
            value = scanner.read_quoted()
            language: str | None = None
            datatype: str | None = None
            if scanner.take("@"):
                language = scanner.read_name()
                if not language:
                    raise scanner.error("empty language tag")
            elif scanner.text[scanner.pos:scanner.pos + 2] == "^^":
                scanner.pos += 2
                datatype_term = self._term(position="predicate")
                datatype = datatype_term.value  # type: ignore[union-attr]
            return Literal(value, language=language, datatype=datatype)
        if char in "([":
            raise scanner.error(
                f"{char!r} syntax (collections/anonymous blanks) is not "
                "supported by this reader"
            )
        # A prefixed name.
        label = scanner.read_name()
        if not scanner.take(":"):
            raise scanner.error(f"unexpected token {label or scanner.peek()!r}")
        local = scanner.read_name()
        try:
            namespace = self.prefixes[label]
        except KeyError:
            raise scanner.error(f"undeclared prefix {label!r}") from None
        return URI(namespace + local)


def iter_triples(text: str) -> Iterator[tuple[Term, Term, Term]]:
    """Yield term triples from a Turtle document string."""
    return _TurtleParser(text).parse()


def loads(text: str) -> RDFGraph:
    """Parse a Turtle document (the writer's subset) into an :class:`RDFGraph`."""
    graph = RDFGraph()
    for subject, predicate, obj in iter_triples(text):
        graph.add(subject, predicate, obj)
    return graph


def load(stream: TextIO) -> RDFGraph:
    """Parse a Turtle document from a file object."""
    return loads(stream.read())


def load_path(path: str | os.PathLike) -> RDFGraph:
    """Parse the Turtle file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)
