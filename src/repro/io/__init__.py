"""Serialization: N-Triples parser/serializer, Turtle writer, canonical dumps."""

from . import canonical, ntriples, turtle
from .canonical import canonical_blank_labels, canonical_dumps
from .ntriples import dump, dump_path, dumps, load, load_path, loads

__all__ = [
    "canonical",
    "canonical_blank_labels",
    "canonical_dumps",
    "dump",
    "dump_path",
    "dumps",
    "load",
    "load_path",
    "loads",
    "ntriples",
    "turtle",
]
