"""Serialization: N-Triples parser/serializer, Turtle reader/writer, canonical dumps."""

from __future__ import annotations

import os

from ..model.rdf import RDFGraph
from . import canonical, ntriples, turtle
from .canonical import canonical_blank_labels, canonical_dumps
from .ntriples import dump, dump_path, dumps, load, load_path, loads

#: File extensions that force a format without content sniffing.
_NTRIPLES_SUFFIXES = (".nt", ".ntriples")
_TURTLE_SUFFIXES = (".ttl", ".turtle")

#: Tokens that only occur in Turtle (N-Triples is line-per-triple, no
#: directives, no prefixed names, no continuation punctuation).
_TURTLE_MARKERS = ("@prefix", "@base", "PREFIX ", "BASE ")


def sniff_format(path: str | os.PathLike, sample: str | None = None) -> str:
    """``"ntriples"`` or ``"turtle"``, by extension then by content.

    The extension wins when it is unambiguous (``.nt``/``.ntriples`` vs
    ``.ttl``/``.turtle``); otherwise the first lines are inspected for
    Turtle-only syntax (directives, ``;``/``,`` continuations).
    """
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    if suffix in _NTRIPLES_SUFFIXES:
        return "ntriples"
    if suffix in _TURTLE_SUFFIXES:
        return "turtle"
    if sample is None:
        with open(path, "r", encoding="utf-8") as handle:
            sample = handle.read(8192)
    for line in sample.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(_TURTLE_MARKERS):
            return "turtle"
        if stripped.endswith((";", ",")):
            return "turtle"
    return "ntriples"


def load_graph(path: str | os.PathLike) -> RDFGraph:
    """Load an RDF graph from *path*, sniffing N-Triples vs Turtle.

    The convenience entry point behind path arguments everywhere —
    ``Aligner.align("old.nt", "new.ttl")`` and the CLI both route through
    it.  See :func:`sniff_format` for the detection rules.
    """
    if sniff_format(path) == "turtle":
        return turtle.load_path(path)
    return ntriples.load_path(path)


__all__ = [
    "canonical",
    "canonical_blank_labels",
    "canonical_dumps",
    "dump",
    "dump_path",
    "dumps",
    "load",
    "load_graph",
    "load_path",
    "loads",
    "ntriples",
    "sniff_format",
    "turtle",
]
