"""N-Triples reader and writer.

The environment has no rdflib, so this module implements the W3C N-Triples
format from scratch — enough of it to store and exchange the evolving-graph
versions the alignment algorithms consume:

* URIs ``<http://...>`` with ``\\u``/``\\U`` escapes,
* blank nodes ``_:name``,
* literals ``"..."`` with string escapes, optional language tag ``@en`` or
  datatype ``^^<uri>``,
* ``#`` comment lines and blank lines.

The parser is line-oriented (as the format requires) and reports precise
line numbers on malformed input.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, TextIO

from ..exceptions import ParseError
from ..model.labels import Literal, URI, is_blank
from ..model.rdf import BlankNode, RDFGraph, Term

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}

_REVERSE_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


class _LineScanner:
    """A cursor over one N-Triples line."""

    __slots__ = ("text", "pos", "line_number")

    def __init__(self, text: str, line_number: int) -> None:
        self.text = text
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> ParseError:
        return ParseError(f"{message} (column {self.pos + 1})", self.line_number)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        if self.at_end():
            raise self.error("unexpected end of line")
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        if self.at_end() or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    # -- terms ---------------------------------------------------------
    def read_uri(self) -> URI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated URI")
        raw = self.text[self.pos:end]
        self.pos = end + 1
        return URI(_unescape(raw, self))

    def read_blank(self) -> BlankNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "-_."
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BlankNode(self.text[start:self.pos])

    def read_literal(self) -> Literal:
        self.expect('"')
        chunks: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            char = self.text[self.pos]
            if char == '"':
                self.pos += 1
                break
            if char == "\\":
                self.pos += 1
                chunks.append(self._read_escape())
            else:
                chunks.append(char)
                self.pos += 1
        value = "".join(chunks)
        language: str | None = None
        datatype: str | None = None
        if not self.at_end() and self.text[self.pos] == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            language = self.text[start:self.pos]
        elif self.text[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            datatype = self.read_uri().value
        return Literal(value, language=language, datatype=datatype)

    def _read_escape(self) -> str:
        if self.at_end():
            raise self.error("dangling backslash")
        char = self.text[self.pos]
        self.pos += 1
        if char in _ESCAPES:
            return _ESCAPES[char]
        if char == "u":
            return self._read_hex(4)
        if char == "U":
            return self._read_hex(8)
        raise self.error(f"unknown escape \\{char}")

    def _read_hex(self, width: int) -> str:
        digits = self.text[self.pos:self.pos + width]
        if len(digits) < width:
            raise self.error("truncated unicode escape")
        try:
            code_point = int(digits, 16)
        except ValueError:
            raise self.error(f"bad unicode escape \\u{digits}") from None
        self.pos += width
        return chr(code_point)

    def read_term(self, *, allow_literal: bool, allow_blank: bool) -> Term:
        self.skip_whitespace()
        char = self.peek()
        if char == "<":
            return self.read_uri()
        if char == "_":
            if not allow_blank:
                raise self.error("blank node not allowed here")
            return self.read_blank()
        if char == '"':
            if not allow_literal:
                raise self.error("literal not allowed here")
            return self.read_literal()
        raise self.error(f"unexpected character {char!r}")


def _unescape(raw: str, scanner: _LineScanner) -> str:
    if "\\" not in raw:
        return raw
    inner = _LineScanner(raw, scanner.line_number)
    chunks: list[str] = []
    while not inner.at_end():
        char = inner.text[inner.pos]
        inner.pos += 1
        if char == "\\":
            chunks.append(inner._read_escape())
        else:
            chunks.append(char)
    return "".join(chunks)


def parse_line(line: str, line_number: int = 1) -> tuple[Term, Term, Term] | None:
    """Parse one N-Triples line into a term triple (or None for comments)."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_number)
    subject = scanner.read_term(allow_literal=False, allow_blank=True)
    predicate = scanner.read_term(allow_literal=False, allow_blank=False)
    obj = scanner.read_term(allow_literal=True, allow_blank=True)
    scanner.skip_whitespace()
    scanner.expect(".")
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("trailing content after '.'")
    return subject, predicate, obj


def iter_triples(stream: TextIO) -> Iterator[tuple[Term, Term, Term]]:
    """Yield term triples from an N-Triples stream."""
    for line_number, line in enumerate(stream, start=1):
        triple = parse_line(line, line_number)
        if triple is not None:
            yield triple


def loads(text: str) -> RDFGraph:
    """Parse an N-Triples document from a string into an :class:`RDFGraph`."""
    return load(io.StringIO(text))


def load(stream: TextIO) -> RDFGraph:
    """Parse an N-Triples document from a file object."""
    graph = RDFGraph()
    for subject, predicate, obj in iter_triples(stream):
        graph.add(subject, predicate, obj)
    return graph


def load_path(path: str | os.PathLike) -> RDFGraph:
    """Parse the N-Triples file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)


def _escape_literal(value: str) -> str:
    return "".join(_REVERSE_ESCAPES.get(char, char) for char in value)


def format_term(term: Term) -> str:
    """Render one term in N-Triples syntax."""
    if isinstance(term, URI):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.name}"
    if isinstance(term, Literal):
        rendered = f'"{_escape_literal(term.value)}"'
        if term.language is not None:
            rendered += f"@{term.language}"
        elif term.datatype is not None:
            rendered += f"^^<{term.datatype}>"
        return rendered
    raise TypeError(f"not an RDF term: {term!r}")


def format_triple(triple: tuple[Term, Term, Term]) -> str:
    """Render one triple as an N-Triples line (without newline)."""
    subject, predicate, obj = triple
    return f"{format_term(subject)} {format_term(predicate)} {format_term(obj)} ."


def dumps(graph: RDFGraph, *, sort: bool = True) -> str:
    """Serialize *graph* to an N-Triples string.

    With ``sort=True`` (default) the lines are sorted so that output is
    deterministic — important for diffable archives of graph versions.
    """
    lines = [format_triple(triple) for triple in graph.triples()]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def dump(graph: RDFGraph, stream: TextIO, *, sort: bool = True) -> None:
    """Serialize *graph* to a file object."""
    stream.write(dumps(graph, sort=sort))


def dump_path(graph: RDFGraph, path: str | os.PathLike, *, sort: bool = True) -> None:
    """Serialize *graph* to the file at *path* (atomic: temp + rename)."""
    from .atomic import atomic_open

    with atomic_open(path) as handle:
        dump(graph, handle, sort=sort)
