"""Canonical N-Triples serialization with invented blank labels.

Blank node identifiers are not persistent, so serializing the same graph
twice (or two isomorphic graphs) can produce different files — which
breaks diffing and content-addressed archiving.  This module assigns
*canonical* blank labels by individualization-refinement in rank space:

1. every blank starts at rank 0; a blank's *signature* renders its
   outbound and inbound pairs with non-blank neighbors as their labels
   (canonical anchors) and blank neighbors as their current ranks;
2. ranks are recomputed by sorting signatures until stable;
3. if several blanks still share a rank, the first member of the smallest
   tied group is *individualized* (given a fresh rank) and refinement
   resumes — the standard practical canonicalization loop (cf. Tzitzikas
   et al. [17] and Hogan's iso-canonical RDF algorithm).

The output is invariant under blank renaming and triple reordering for
graphs whose same-signature blanks are automorphic — every non-adversarial
dataset.  Truly automorphism-rich structures (e.g. two disjoint, entirely
identical blank cycles) are serialized deterministically for a given
input, but distinguishing isomorphic inputs there is the graph-isomorphism
wall the paper's related work discusses.
"""

from __future__ import annotations

from ..model.graph import NodeId, TripleGraph
from ..model.labels import is_blank
from ..model.rdf import BlankNode, RDFGraph, Term
from .ntriples import format_term


def _blank_signatures(
    graph: TripleGraph,
    blanks: list[NodeId],
    ranks: dict[NodeId, int],
    inbound: dict[NodeId, list[tuple[NodeId, NodeId]]],
) -> dict[NodeId, tuple]:
    def render(node: NodeId) -> tuple:
        label = graph.label(node)
        if is_blank(label):
            return ("B", ranks[node])
        return ("L", repr(label))

    signatures: dict[NodeId, tuple] = {}
    for node in blanks:
        out_part = tuple(
            sorted((render(p), render(o)) for p, o in graph.out(node))
        )
        in_part = tuple(
            sorted((render(p), render(s)) for p, s in inbound[node])
        )
        signatures[node] = (ranks[node], out_part, in_part)
    return signatures


def canonical_blank_labels(graph: RDFGraph) -> dict[BlankNode, str]:
    """Canonical names ``c0, c1, …`` for every blank node of *graph*."""
    blanks: list[NodeId] = sorted(graph.blanks(), key=repr)
    if not blanks:
        return {}
    inbound: dict[NodeId, list[tuple[NodeId, NodeId]]] = {node: [] for node in blanks}
    for subject, predicate, obj in graph.edges():
        if obj in inbound:
            inbound[obj].append((predicate, subject))

    ranks: dict[NodeId, int] = {node: 0 for node in blanks}
    next_individual = len(blanks)  # fresh ranks above the orderable range
    # Each productive step either splits a rank class or individualizes a
    # node, so at most 2·|blanks| outer iterations are needed.
    for _ in range(2 * len(blanks) + 2):
        # Refine ranks until stable.
        while True:
            signatures = _blank_signatures(graph, blanks, ranks, inbound)
            ordered = sorted(set(signatures.values()))
            position = {signature: rank for rank, signature in enumerate(ordered)}
            new_ranks = {node: position[signatures[node]] for node in blanks}
            if new_ranks == ranks:
                break
            ranks = new_ranks
        # Individualize within the smallest still-shared signature group.
        groups: dict[int, list[NodeId]] = {}
        for node in blanks:
            groups.setdefault(ranks[node], []).append(node)
        tied = [members for members in groups.values() if len(members) > 1]
        if not tied:
            break
        tied.sort(key=lambda members: ranks[members[0]])
        members = sorted(tied[0], key=repr)
        ranks[members[0]] = next_individual
        next_individual += 1

    final_order = sorted(blanks, key=lambda node: (ranks[node], repr(node)))
    return {node: f"c{index}" for index, node in enumerate(final_order)}  # type: ignore[misc]


def canonical_dumps(graph: RDFGraph) -> str:
    """Serialize *graph* as sorted N-Triples with canonical blank labels.

    Two serializations of the same graph (under any blank naming and any
    triple insertion order) are byte-identical.
    """
    renaming = canonical_blank_labels(graph)

    def rename(term: Term) -> Term:
        if isinstance(term, BlankNode):
            return BlankNode(renaming[term])
        return term

    lines = sorted(
        f"{format_term(rename(s))} {format_term(rename(p))} {format_term(rename(o))} ."
        for s, p, o in graph.triples()
    )
    return "\n".join(lines) + ("\n" if lines else "")
