"""Atomic file writes: the one blessed ``open(..., "w")`` in the tree.

PR 8 made the persisted-store manifest crash-safe (temp + fsync +
``os.replace`` + directory fsync) after the chaos job showed a
mid-write kill leaving a half-written manifest behind a valid-looking
path.  The same failure mode applies to every other artifact the
project writes — reports, figure renderings, synth manifests,
``results/bench.json`` — so this module centralizes the discipline and
the ``non-atomic-write`` rule of :mod:`repro.analysis` forbids direct
write-mode ``open`` calls anywhere else in ``src/repro``.

Standard-library only (the tolerant bench logger depends on it, and a
timing side channel must never drag optional dependencies in).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import IO, Any, Iterator


def _replace_and_sync(temp: str, path: str, fsync: bool) -> None:
    os.replace(temp, path)
    if not fsync:
        return
    directory = os.path.dirname(os.path.abspath(path))
    directory_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


@contextmanager
def atomic_open(
    path: str | os.PathLike[str], mode: str = "w", *, fsync: bool = True
) -> Iterator[IO[Any]]:
    """A write handle whose contents appear at *path* all-or-nothing.

    The body streams into ``<path>.tmp``; on clean exit the temp file is
    fsync'd and renamed over *path* (plus a directory fsync so the
    rename itself is durable).  On an exception the temp file is removed
    and *path* is untouched — a crash mid-write can never leave a
    truncated artifact behind.  *mode* must be ``"w"`` or ``"wb"``
    (appends cannot be atomic; rewrite the whole file instead).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open mode must be 'w' or 'wb', got {mode!r}")
    target = os.fspath(path)
    temp = target + ".tmp"
    if mode == "wb":
        handle: IO[Any] = open(temp, "wb")  # reprolint: disable=non-atomic-write
    else:
        handle = open(temp, "w", encoding="utf-8")  # reprolint: disable=non-atomic-write
    try:
        yield handle
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    handle.close()
    _replace_and_sync(temp, target, fsync)


def atomic_write_bytes(
    path: str | os.PathLike[str], data: bytes, *, fsync: bool = True
) -> None:
    """Write *data* to *path* atomically (temp + fsync + rename)."""
    with atomic_open(path, "wb", fsync=fsync) as handle:
        handle.write(data)


def atomic_write_text(
    path: str | os.PathLike[str], text: str, *, fsync: bool = True
) -> None:
    """Write *text* (UTF-8) to *path* atomically (temp + fsync + rename)."""
    with atomic_open(path, "w", fsync=fsync) as handle:
        handle.write(text)
