"""Figure 14 — alignment precision on consecutive GtoPdb pairs.

Every node is classified as an exact, inclusive, false or missing match
relative to the key-based ground truth, for both Hybrid and Overlap.  The
paper's findings: Overlap clearly outperforms Hybrid; the overlap
alignment between versions 3 and 4 (the insertion burst) has the worst
precision overall, with a significant number of falsely aligned inserted
nodes.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.precision import precision_counts
from ..evaluation.reporting import render_stacked_fractions
from .base import ExperimentResult
from .parallel import run_sharded
from .store import VersionStore

FIGURE = "Figure 14"
TITLE = "Alignment precision (GtoPdb): exact/inclusive/false/missing per pair"

CATEGORIES = ("exact", "inclusive", "false", "missing")


def run(
    scale: float = 0.5,
    seed: int = 2016,
    versions: int = 10,
    config: AlignConfig | None = None,
) -> ExperimentResult:
    config = config or AlignConfig()
    store = VersionStore.shared("gtopdb", scale=scale, seed=seed, versions=versions)
    store.prepare(summaries=True, csr=config.engine == "dense")

    def pair_rows(index: int) -> list[dict]:
        # Union, hybrid and overlap come from the shared store: a serial
        # run after Figure 13 at the same configuration reuses its cells.
        context = store.cell_context(index, index + 1, config)
        weighted, _ = store.overlap_result(index, index + 1, config)
        truth = store.ground_truth(index, index + 1)
        hybrid_counts = precision_counts(context.union, context.hybrid, truth)
        overlap_counts = precision_counts(context.union, weighted.partition, truth)
        pair = f"{index + 1}->{index + 2}"
        return [
            {"pair": pair, "method": "hybrid", **hybrid_counts.as_dict()},
            {"pair": pair, "method": "overlap", **overlap_counts.as_dict()},
        ]

    rows = [
        row
        for rows_of_pair in run_sharded(
            pair_rows, range(versions - 1), jobs=config.jobs
        )
        for row in rows_of_pair
    ]
    bars = []
    for row in rows:
        bars.append(
            (
                f"{row['pair']} {row['method']:<7}",
                {category: row[category] for category in CATEGORIES},
            )
        )
    rendered = render_stacked_fractions(bars, CATEGORIES)
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={
            "scale": scale, "seed": seed, "versions": versions,
            "theta": config.theta, "engine": config.engine,
        },
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: Overlap significantly outperforms Hybrid on every pair",
            "paper: Overlap's worst precision is on the 3->4 insertion burst, "
            "driven by falsely aligned inserted nodes",
        ],
    )


def _exact_fraction(row: dict) -> float:
    total = sum(row[category] for category in CATEGORIES)
    return row["exact"] / total if total else 0.0


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    hybrid_rows = {r["pair"]: r for r in result.rows if r["method"] == "hybrid"}
    overlap_rows = {r["pair"]: r for r in result.rows if r["method"] == "overlap"}
    better = sum(
        1
        for pair in hybrid_rows
        if _exact_fraction(overlap_rows[pair]) >= _exact_fraction(hybrid_rows[pair])
    )
    if better < len(hybrid_rows) * 0.75:
        violations.append(
            f"Overlap beats Hybrid on exact matches for only {better}/{len(hybrid_rows)} pairs"
        )
    # The burst pair should show the most false matches for Overlap.
    false_counts = {pair: row["false"] for pair, row in overlap_rows.items()}
    if "3->4" in false_counts and false_counts["3->4"] != max(false_counts.values()):
        violations.append("Overlap false matches do not peak on the 3->4 burst pair")
    return violations
