"""Pluggable persistence backends for the :class:`VersionStore`.

The figure grids, the alignment service and the CLI all derive their
artifacts from a :class:`~repro.experiments.store.VersionStore`; until
now every process rebuilt that store from scratch.  Following the
same-interface in-memory/on-disk index idiom of pygr's NLMSA (see
SNIPPETS.md) and the batch named-graph import/export design of
ArangoRDF, this module provides two backends with an identical surface:

* :class:`MemoryBackend` — plain dicts; the default, and the reference
  the disk backend is differentially tested against (the oracle's
  ``--axis persistence`` pins byte-identical
  :class:`~repro.align.report.AlignmentReport` outputs across the two).
* :class:`DiskBackend` — a directory of raw little-endian block files
  plus one JSON manifest.  Index arrays are written as flat int64 block
  files and read back as **read-only memory-mapped NumPy views**, so a
  reloaded store pays no parse cost for its CSR blocks and many
  processes can serve the same archive concurrently; graphs travel as
  canonical sorted N-Triples (deterministic bytes), Python-object
  artifacts (deblank summaries, edge tokens) as pickles.

The backend speaks four key/value planes — ``blob`` (bytes), ``array``
(flat int64 blocks), ``json`` (small structured values) and the derived
``reports`` convenience — all addressed by forward-slash keys.  Writers
call :meth:`flush` once at the end; :meth:`DiskBackend.open` attaches to
an existing directory read-only.

Durability and corruption detection (manifest schema v2):

* every block/blob write is **atomic and fsync'd** (temp file + fsync +
  ``os.replace`` + directory fsync), so a crash mid-write never leaves a
  half-written file behind a manifest entry;
* every manifest entry carries the payload's **CRC32** and byte count;
  reads verify both (``verify_checksums=True``, the default) and raise
  :class:`~repro.exceptions.CorruptStoreError` on mismatch;
* transient ``OSError``\\ s during reads are retried with backoff
  (:mod:`repro.robustness.retry`); the seeded fault hooks of
  :mod:`repro.robustness.faults` sit on the same read path
  (``site="backend.read"``) so both behaviors are testable;
* :meth:`DiskBackend.verify` re-walks the whole archive, optionally
  moving corrupt files into ``quarantine/`` — the engine behind
  ``rdf-align store verify``.

v1 manifests (pre-checksum) still load; their entries simply verify by
size only.  Manifests newer than :data:`MANIFEST_VERSION` are rejected.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterable

from ..exceptions import CorruptStoreError, ExperimentError
from ..io.atomic import atomic_write_bytes
from ..robustness import faults
from ..robustness.retry import RetryPolicy, call_with_retry

#: Manifest identity of a persisted store directory.
MANIFEST_SCHEMA = "repro/version-store"
MANIFEST_VERSION = 2
MANIFEST_NAME = "manifest.json"
QUARANTINE_DIR = "quarantine"


def _require_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a test dependency
        raise ExperimentError(
            "the disk store backend needs numpy for memory-mapped blocks"
        ) from None
    return numpy


class MemoryBackend:
    """The in-memory reference backend (identical interface to disk)."""

    persistent = False

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._arrays: dict[str, bytes] = {}
        self._json: dict[str, Any] = {}

    # -- write ----------------------------------------------------------
    def put_blob(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)

    def put_array(self, key: str, buffer) -> None:
        self._arrays[key] = bytes(memoryview(buffer).cast("B"))

    def put_json(self, key: str, value: Any) -> None:
        # Round-trip through JSON so memory and disk agree on value types.
        self._json[key] = json.loads(json.dumps(value))

    def flush(self) -> None:
        """Nothing to do — kept so callers treat both backends alike."""

    # -- read -----------------------------------------------------------
    def get_blob(self, key: str) -> bytes | None:
        return self._blobs.get(key)

    def get_array(self, key: str):
        raw = self._arrays.get(key)
        if raw is None:
            return None
        numpy = _require_numpy()
        view = numpy.frombuffer(raw, dtype=numpy.int64)
        view.flags.writeable = False
        return view

    def get_json(self, key: str) -> Any:
        return self._json.get(key)

    def keys(self) -> dict[str, list[str]]:
        return {
            "blob": sorted(self._blobs),
            "array": sorted(self._arrays),
            "json": sorted(self._json),
        }


class DiskBackend:
    """An on-disk store: numbered block files + one JSON manifest.

    Layout under *root*::

        manifest.json          # schema + key -> file map + json plane
        blocks/a0.bin, ...     # flat int64 array blocks (mmap targets)
        blobs/b0.bin, ...      # raw byte payloads

    Keys never touch the filesystem namespace (files are numbered, the
    manifest maps keys to files), so any ``/``-separated key is legal.
    Readers open the manifest once and memory-map blocks lazily;
    :meth:`open` refuses directories without a valid manifest.
    """

    persistent = True

    def __init__(self, root: str | os.PathLike, readonly: bool = False, *,
                 verify_checksums: bool = True, retries: int = 2) -> None:
        self.root = os.fspath(root)
        self.readonly = readonly
        self.verify_checksums = verify_checksums
        self.retries = retries
        self._blobs: dict[str, dict] = {}
        self._arrays: dict[str, dict] = {}
        self._json: dict[str, Any] = {}
        self._dirty = False
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            self._load_manifest(manifest_path)
        elif readonly:
            raise ExperimentError(
                f"no persisted store at {self.root!r} (missing {MANIFEST_NAME})"
            )

    @classmethod
    def open(cls, root: str | os.PathLike, *,
             verify_checksums: bool = True) -> "DiskBackend":
        """Attach to an existing store directory, read-only."""
        return cls(root, readonly=True, verify_checksums=verify_checksums)

    def _load_manifest(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CorruptStoreError(
                f"{path} is not valid JSON (truncated or corrupted "
                f"manifest?): {error}"
            ) from error
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ExperimentError(
                f"{path} is not a persisted version store "
                f"(schema {manifest.get('schema')!r})"
            )
        version = manifest.get("version", 1)
        if not isinstance(version, int) or version > MANIFEST_VERSION:
            raise ExperimentError(
                f"{path} has manifest version {version!r}; this build "
                f"reads versions 1..{MANIFEST_VERSION}"
            )
        self._blobs = dict(manifest.get("blobs", {}))
        self._arrays = dict(manifest.get("arrays", {}))
        self._json = dict(manifest.get("json", {}))

    # -- write ----------------------------------------------------------
    def _guard_write(self) -> None:
        if self.readonly:
            raise ExperimentError(
                f"store at {self.root!r} was opened read-only"
            )

    def _atomic_write(self, relative: str, data: bytes) -> None:
        """Crash-safe file write: temp + fsync + replace + dir fsync."""
        atomic_write_bytes(os.path.join(self.root, relative), data)

    def _write_file(self, subdir: str, stem: str, data: bytes) -> str:
        directory = os.path.join(self.root, subdir)
        os.makedirs(directory, exist_ok=True)
        relative = f"{subdir}/{stem}.bin"
        self._atomic_write(relative, data)
        return relative

    def put_blob(self, key: str, data: bytes) -> None:
        self._guard_write()
        data = bytes(data)
        entry = self._blobs.get(key) or {}
        if "file" in entry:
            path = entry["file"]
            self._atomic_write(path, data)
        else:
            path = self._write_file("blobs", f"b{len(self._blobs)}", data)
        self._blobs[key] = {
            "file": path, "nbytes": len(data), "crc32": zlib.crc32(data),
        }
        self._dirty = True

    def put_array(self, key: str, buffer) -> None:
        self._guard_write()
        data = bytes(memoryview(buffer).cast("B"))
        entry = self._arrays.get(key) or {}
        if "file" in entry:
            path = entry["file"]
            self._atomic_write(path, data)
        else:
            path = self._write_file("blocks", f"a{len(self._arrays)}", data)
        self._arrays[key] = {
            "file": path, "dtype": "int64", "count": len(data) // 8,
            "crc32": zlib.crc32(data),
        }
        self._dirty = True

    def put_json(self, key: str, value: Any) -> None:
        self._guard_write()
        self._json[key] = json.loads(json.dumps(value))
        self._dirty = True

    def flush(self) -> None:
        """Write the manifest (atomically: temp + fsync + rename)."""
        if self.readonly or not self._dirty:
            return
        os.makedirs(self.root, exist_ok=True)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "blobs": self._blobs,
            "arrays": self._arrays,
            "json": self._json,
        }
        payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        self._atomic_write(MANIFEST_NAME, payload.encode("utf-8"))
        self._dirty = False

    # -- read -----------------------------------------------------------
    def _read_file(self, relative: str, key: str) -> bytes:
        """Read one store file: fault hooks + bounded transient retry.

        Transient ``OSError``\\ s (including injected ones) are retried
        under an exponential-backoff budget of ``self.retries``; the
        payload then passes through the seeded corruption filter so the
        checksum layer can be exercised without touching the disk.
        """
        path = os.path.join(self.root, relative)

        def read() -> bytes:
            if faults.ACTIVE is not None:
                faults.fire("backend.read", key=key)
            with open(path, "rb") as handle:
                data = handle.read()
            if faults.ACTIVE is not None:
                data = faults.filter_bytes("backend.read", key, data)
            return data

        if faults.ACTIVE is None and self.retries == 0:
            return read()
        return call_with_retry(
            read, policy=RetryPolicy(retries=self.retries, base_delay=0.01))

    def _check(self, kind: str, key: str, entry: dict, data: bytes) -> None:
        """Verify *data* against its manifest *entry* (size + CRC32)."""
        expected = entry.get("nbytes")
        if expected is None and "count" in entry:
            expected = entry["count"] * 8
        if expected is not None and len(data) != expected:
            raise CorruptStoreError(
                f"{kind} {key!r} ({entry['file']}): expected {expected} "
                f"bytes, found {len(data)} (truncated block?)"
            )
        crc = entry.get("crc32")
        if crc is not None and zlib.crc32(data) != crc:
            raise CorruptStoreError(
                f"{kind} {key!r} ({entry['file']}): CRC32 mismatch "
                f"(expected {crc}, computed {zlib.crc32(data)})"
            )

    def get_blob(self, key: str) -> bytes | None:
        entry = self._blobs.get(key)
        if entry is None:
            return None
        data = self._read_file(entry["file"], key)
        if self.verify_checksums:
            self._check("blob", key, entry, data)
        return data

    def get_array(self, key: str):
        """A read-only memory-mapped int64 view of one block file.

        With ``verify_checksums`` on, the file's bytes are read and
        checked against the manifest first; the returned view is still
        the zero-copy memmap (the verification read warms the same page
        cache the mmap serves from).
        """
        entry = self._arrays.get(key)
        if entry is None:
            return None
        numpy = _require_numpy()
        if entry["count"] == 0:
            return numpy.empty(0, dtype=numpy.int64)
        if self.verify_checksums or faults.ACTIVE is not None:
            data = self._read_file(entry["file"], key)
            if self.verify_checksums:
                self._check("array", key, entry, data)
        return numpy.memmap(
            os.path.join(self.root, entry["file"]),
            dtype=numpy.int64,
            mode="r",
            shape=(entry["count"],),
        )

    def get_json(self, key: str) -> Any:
        return self._json.get(key)

    # -- integrity ------------------------------------------------------
    def verify(self, quarantine: bool = False) -> list[dict]:
        """Re-walk the archive, recomputing every block's checksum.

        Returns one record per corrupt entry: ``{"kind", "key", "file",
        "reason"}``.  With ``quarantine=True`` the corrupt files are
        moved into ``quarantine/`` and their entries dropped from the
        manifest (rewritten atomically), so a subsequent
        :meth:`VersionStore.load` rebuilds them from source.
        """
        problems: list[dict] = []
        for kind, table in (("blob", self._blobs), ("array", self._arrays)):
            for key, entry in sorted(table.items()):
                path = os.path.join(self.root, entry["file"])
                try:
                    # Raw bytes are the point: the scan must see exactly
                    # what is on disk, with no retry masking the damage.
                    with open(path, "rb") as handle:  # reprolint: disable=raw-io
                        data = handle.read()
                    self._check(kind, key, entry, data)
                except (OSError, CorruptStoreError) as error:
                    problems.append({
                        "kind": kind, "key": key,
                        "file": entry["file"], "reason": str(error),
                    })
        if quarantine and problems:
            was_readonly = self.readonly
            quarantine_dir = os.path.join(self.root, QUARANTINE_DIR)
            os.makedirs(quarantine_dir, exist_ok=True)
            for problem in problems:
                source = os.path.join(self.root, problem["file"])
                if os.path.exists(source):
                    os.replace(source, os.path.join(
                        quarantine_dir, os.path.basename(problem["file"])))
                table = self._blobs if problem["kind"] == "blob" else self._arrays
                table.pop(problem["key"], None)
            self.readonly = False
            self._dirty = True
            try:
                self.flush()
            finally:
                self.readonly = was_readonly
        return problems

    def keys(self) -> dict[str, list[str]]:
        return {
            "blob": sorted(self._blobs),
            "array": sorted(self._arrays),
            "json": sorted(self._json),
        }


def resolve_backend(backend) -> MemoryBackend | DiskBackend:
    """Coerce ``backend=`` arguments: instances pass through, strings
    and paths become a writable :class:`DiskBackend` rooted there."""
    if backend is None:
        raise ExperimentError("backend must be a path or a backend instance")
    if isinstance(backend, (str, os.PathLike)):
        return DiskBackend(backend)
    for attribute in ("put_blob", "get_blob", "put_array", "get_array",
                      "put_json", "get_json", "flush"):
        if not hasattr(backend, attribute):
            raise ExperimentError(
                f"{type(backend).__name__} does not implement the store "
                f"backend interface (missing {attribute})"
            )
    return backend


def describe(backend) -> list[str]:
    """Human-readable ``rdf-align store ls`` lines for one backend."""
    lines: list[str] = []
    identity = backend.get_json("store/identity") or {}
    if identity:
        lines.append(
            "store: "
            + ", ".join(f"{key}={value}" for key, value in sorted(identity.items()))
        )
    keys = backend.keys()
    for kind in ("json", "array", "blob"):
        for key in keys.get(kind, []):
            if kind == "array":
                entry_count = None
                getter = getattr(backend, "_arrays", None)
                if isinstance(getter, dict) and key in getter:
                    value = getter[key]
                    entry_count = value.get("count") if isinstance(value, dict) else (
                        len(value) // 8
                    )
                suffix = f" ({entry_count} int64)" if entry_count is not None else ""
                lines.append(f"array  {key}{suffix}")
            elif kind == "blob":
                blob = backend.get_blob(key)
                lines.append(f"blob   {key} ({0 if blob is None else len(blob)} bytes)")
            else:
                lines.append(f"json   {key}")
    return lines


def iter_report_keys(backend) -> Iterable[str]:
    """Keys of serialized AlignmentReports stored in *backend*.

    Reports live in the blob plane (canonical JSON bytes under
    ``reports/<key>``, see :meth:`VersionStore.put_report`); the prefix
    is stripped so the result feeds :meth:`VersionStore.get_report`.
    """
    prefix = "reports/"
    return [
        key[len(prefix):] for key in backend.keys().get("blob", [])
        if key.startswith(prefix)
    ]
