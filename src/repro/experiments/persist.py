"""Pluggable persistence backends for the :class:`VersionStore`.

The figure grids, the alignment service and the CLI all derive their
artifacts from a :class:`~repro.experiments.store.VersionStore`; until
now every process rebuilt that store from scratch.  Following the
same-interface in-memory/on-disk index idiom of pygr's NLMSA (see
SNIPPETS.md) and the batch named-graph import/export design of
ArangoRDF, this module provides two backends with an identical surface:

* :class:`MemoryBackend` — plain dicts; the default, and the reference
  the disk backend is differentially tested against (the oracle's
  ``--axis persistence`` pins byte-identical
  :class:`~repro.align.report.AlignmentReport` outputs across the two).
* :class:`DiskBackend` — a directory of raw little-endian block files
  plus one JSON manifest.  Index arrays are written as flat int64 block
  files and read back as **read-only memory-mapped NumPy views**, so a
  reloaded store pays no parse cost for its CSR blocks and many
  processes can serve the same archive concurrently; graphs travel as
  canonical sorted N-Triples (deterministic bytes), Python-object
  artifacts (deblank summaries, edge tokens) as pickles.

The backend speaks four key/value planes — ``blob`` (bytes), ``array``
(flat int64 blocks), ``json`` (small structured values) and the derived
``reports`` convenience — all addressed by forward-slash keys.  Writers
call :meth:`flush` once at the end; :meth:`DiskBackend.open` attaches to
an existing directory read-only.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from ..exceptions import ExperimentError

#: Manifest identity of a persisted store directory.
MANIFEST_SCHEMA = "repro/version-store"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


def _require_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a test dependency
        raise ExperimentError(
            "the disk store backend needs numpy for memory-mapped blocks"
        ) from None
    return numpy


class MemoryBackend:
    """The in-memory reference backend (identical interface to disk)."""

    persistent = False

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._arrays: dict[str, bytes] = {}
        self._json: dict[str, Any] = {}

    # -- write ----------------------------------------------------------
    def put_blob(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)

    def put_array(self, key: str, buffer) -> None:
        self._arrays[key] = bytes(memoryview(buffer).cast("B"))

    def put_json(self, key: str, value: Any) -> None:
        # Round-trip through JSON so memory and disk agree on value types.
        self._json[key] = json.loads(json.dumps(value))

    def flush(self) -> None:
        """Nothing to do — kept so callers treat both backends alike."""

    # -- read -----------------------------------------------------------
    def get_blob(self, key: str) -> bytes | None:
        return self._blobs.get(key)

    def get_array(self, key: str):
        raw = self._arrays.get(key)
        if raw is None:
            return None
        numpy = _require_numpy()
        view = numpy.frombuffer(raw, dtype=numpy.int64)
        view.flags.writeable = False
        return view

    def get_json(self, key: str) -> Any:
        return self._json.get(key)

    def keys(self) -> dict[str, list[str]]:
        return {
            "blob": sorted(self._blobs),
            "array": sorted(self._arrays),
            "json": sorted(self._json),
        }


class DiskBackend:
    """An on-disk store: numbered block files + one JSON manifest.

    Layout under *root*::

        manifest.json          # schema + key -> file map + json plane
        blocks/a0.bin, ...     # flat int64 array blocks (mmap targets)
        blobs/b0.bin, ...      # raw byte payloads

    Keys never touch the filesystem namespace (files are numbered, the
    manifest maps keys to files), so any ``/``-separated key is legal.
    Readers open the manifest once and memory-map blocks lazily;
    :meth:`open` refuses directories without a valid manifest.
    """

    persistent = True

    def __init__(self, root: str | os.PathLike, readonly: bool = False) -> None:
        self.root = os.fspath(root)
        self.readonly = readonly
        self._blobs: dict[str, dict] = {}
        self._arrays: dict[str, dict] = {}
        self._json: dict[str, Any] = {}
        self._dirty = False
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            self._load_manifest(manifest_path)
        elif readonly:
            raise ExperimentError(
                f"no persisted store at {self.root!r} (missing {MANIFEST_NAME})"
            )

    @classmethod
    def open(cls, root: str | os.PathLike) -> "DiskBackend":
        """Attach to an existing store directory, read-only."""
        return cls(root, readonly=True)

    def _load_manifest(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ExperimentError(
                f"{path} is not a persisted version store "
                f"(schema {manifest.get('schema')!r})"
            )
        self._blobs = dict(manifest.get("blobs", {}))
        self._arrays = dict(manifest.get("arrays", {}))
        self._json = dict(manifest.get("json", {}))

    # -- write ----------------------------------------------------------
    def _guard_write(self) -> None:
        if self.readonly:
            raise ExperimentError(
                f"store at {self.root!r} was opened read-only"
            )

    def _write_file(self, subdir: str, stem: str, data: bytes) -> str:
        directory = os.path.join(self.root, subdir)
        os.makedirs(directory, exist_ok=True)
        filename = f"{stem}.bin"
        with open(os.path.join(directory, filename), "wb") as handle:
            handle.write(data)
        return f"{subdir}/{filename}"

    def put_blob(self, key: str, data: bytes) -> None:
        self._guard_write()
        data = bytes(data)
        entry = self._blobs.get(key) or {}
        path = self._write_file("blobs", f"b{len(self._blobs)}", data) \
            if "file" not in entry else entry["file"]
        if "file" in entry:
            with open(os.path.join(self.root, path), "wb") as handle:
                handle.write(data)
        self._blobs[key] = {"file": path, "nbytes": len(data)}
        self._dirty = True

    def put_array(self, key: str, buffer) -> None:
        self._guard_write()
        data = bytes(memoryview(buffer).cast("B"))
        entry = self._arrays.get(key) or {}
        path = self._write_file("blocks", f"a{len(self._arrays)}", data) \
            if "file" not in entry else entry["file"]
        if "file" in entry:
            with open(os.path.join(self.root, path), "wb") as handle:
                handle.write(data)
        self._arrays[key] = {
            "file": path, "dtype": "int64", "count": len(data) // 8,
        }
        self._dirty = True

    def put_json(self, key: str, value: Any) -> None:
        self._guard_write()
        self._json[key] = json.loads(json.dumps(value))
        self._dirty = True

    def flush(self) -> None:
        """Write the manifest (atomically: temp file + rename)."""
        if self.readonly or not self._dirty:
            return
        os.makedirs(self.root, exist_ok=True)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "blobs": self._blobs,
            "arrays": self._arrays,
            "json": self._json,
        }
        path = os.path.join(self.root, MANIFEST_NAME)
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(temp, path)
        self._dirty = False

    # -- read -----------------------------------------------------------
    def get_blob(self, key: str) -> bytes | None:
        entry = self._blobs.get(key)
        if entry is None:
            return None
        with open(os.path.join(self.root, entry["file"]), "rb") as handle:
            return handle.read()

    def get_array(self, key: str):
        """A read-only memory-mapped int64 view of one block file."""
        entry = self._arrays.get(key)
        if entry is None:
            return None
        numpy = _require_numpy()
        if entry["count"] == 0:
            return numpy.empty(0, dtype=numpy.int64)
        return numpy.memmap(
            os.path.join(self.root, entry["file"]),
            dtype=numpy.int64,
            mode="r",
            shape=(entry["count"],),
        )

    def get_json(self, key: str) -> Any:
        return self._json.get(key)

    def keys(self) -> dict[str, list[str]]:
        return {
            "blob": sorted(self._blobs),
            "array": sorted(self._arrays),
            "json": sorted(self._json),
        }


def resolve_backend(backend) -> MemoryBackend | DiskBackend:
    """Coerce ``backend=`` arguments: instances pass through, strings
    and paths become a writable :class:`DiskBackend` rooted there."""
    if backend is None:
        raise ExperimentError("backend must be a path or a backend instance")
    if isinstance(backend, (str, os.PathLike)):
        return DiskBackend(backend)
    for attribute in ("put_blob", "get_blob", "put_array", "get_array",
                      "put_json", "get_json", "flush"):
        if not hasattr(backend, attribute):
            raise ExperimentError(
                f"{type(backend).__name__} does not implement the store "
                f"backend interface (missing {attribute})"
            )
    return backend


def describe(backend) -> list[str]:
    """Human-readable ``rdf-align store ls`` lines for one backend."""
    lines: list[str] = []
    identity = backend.get_json("store/identity") or {}
    if identity:
        lines.append(
            "store: "
            + ", ".join(f"{key}={value}" for key, value in sorted(identity.items()))
        )
    keys = backend.keys()
    for kind in ("json", "array", "blob"):
        for key in keys.get(kind, []):
            if kind == "array":
                entry_count = None
                getter = getattr(backend, "_arrays", None)
                if isinstance(getter, dict) and key in getter:
                    value = getter[key]
                    entry_count = value.get("count") if isinstance(value, dict) else (
                        len(value) // 8
                    )
                suffix = f" ({entry_count} int64)" if entry_count is not None else ""
                lines.append(f"array  {key}{suffix}")
            elif kind == "blob":
                blob = backend.get_blob(key)
                lines.append(f"blob   {key} ({0 if blob is None else len(blob)} bytes)")
            else:
                lines.append(f"json   {key}")
    return lines


def iter_report_keys(backend) -> Iterable[str]:
    """Keys of serialized AlignmentReports stored in *backend*.

    Reports live in the blob plane (canonical JSON bytes under
    ``reports/<key>``, see :meth:`VersionStore.put_report`); the prefix
    is stripped so the result feeds :meth:`VersionStore.get_report`.
    """
    prefix = "reports/"
    return [
        key[len(prefix):] for key in backend.keys().get("blob", [])
        if key.startswith(prefix)
    ]
