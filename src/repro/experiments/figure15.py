"""Figure 15 — Overlap threshold sweep on GtoPdb versions 3→4.

The θ parameter trades recall for precision: lowering it reduces missing
matches but admits more false and inclusive ones.  The paper reports the
four precision categories for θ ∈ {0.35, 0.45, …, 0.95} on the hardest
pair (versions 3→4) and finds the exact matches peak at θ = 0.65.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.precision import precision_counts
from ..evaluation.reporting import render_stacked_fractions
from .base import ExperimentResult
from .parallel import run_sharded
from .store import VersionStore

FIGURE = "Figure 15"
TITLE = "Overlap alignment between versions 3 and 4 (GtoPdb) per threshold θ"

CATEGORIES = ("exact", "inclusive", "false", "missing")
DEFAULT_THETAS = (0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)


def run(
    scale: float = 0.5,
    seed: int = 2016,
    versions: int = 10,
    thetas: tuple[float, ...] = DEFAULT_THETAS,
    source_version: int = 3,
    probe: str = "safe",
    config: AlignConfig | None = None,
) -> ExperimentResult:
    # The probe rule is part of this figure's identity (see the notes), so
    # it stays a figure parameter and is pinned onto the incoming config;
    # the sweep then evolves one config per theta.
    config = (config or AlignConfig()).evolve(probe=probe)
    store = VersionStore.shared("gtopdb", scale=scale, seed=seed, versions=versions)
    pair = (source_version - 1, source_version)
    # The hybrid base is theta-independent: build it once in the parent so
    # every worker inherits it; each theta then clones the interner.
    store.prepare(versions=pair, summaries=True, csr=config.engine == "dense")
    store.cell_context(*pair, config)
    truth = store.ground_truth(*pair)

    def theta_row(theta: float) -> dict:
        weighted, _ = store.overlap_result(*pair, config.evolve(theta=theta))
        counts = precision_counts(store.union(*pair), weighted.partition, truth)
        return {"theta": theta, **counts.as_dict()}

    rows = run_sharded(theta_row, thetas, jobs=config.jobs)
    bars = [
        (
            f"θ={row['theta']:.2f}",
            {category: row[category] for category in CATEGORIES},
        )
        for row in rows
    ]
    rendered = render_stacked_fractions(bars, CATEGORIES)
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={
            "scale": scale,
            "seed": seed,
            "versions": versions,
            "thetas": list(thetas),
            "source_version": source_version,
            "probe": probe,
            "engine": config.engine,
        },
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: lower θ → fewer missing but more false/inclusive matches",
            "paper: exact matches peak at θ = 0.65",
            "probe rule: this sweep uses the recall-complete 'safe' prefix "
            "filter; the paper's ⌈kθ⌉ rule probes fewer objects below θ=0.5, "
            "which inverts the false-match trend (DESIGN.md §5.4)",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    rows = sorted(result.rows, key=lambda row: row["theta"])
    if rows[0]["missing"] > rows[-1]["missing"]:
        violations.append(
            "missing matches do not increase from the lowest to the highest θ"
        )
    if rows[0]["false"] < rows[-1]["false"]:
        violations.append(
            "false matches do not decrease from the lowest to the highest θ"
        )
    # The paper's exact-match curve peaks at θ = 0.65.  At laptop scale the
    # curve is nearly flat below 0.65 (the low-θ false-match penalty needs
    # the full-size dataset), so we pin the robust part of the shape: strict
    # thresholds clearly hurt, and θ = 0.65 is within 2 % of the optimum.
    exact_by_theta = {row["theta"]: row["exact"] for row in rows}
    peak = max(exact_by_theta.values())
    highest_theta = rows[-1]["theta"]
    if exact_by_theta[highest_theta] >= peak:
        violations.append(
            f"exact matches peak at the strictest θ={highest_theta}, "
            "not mid-range"
        )
    if 0.65 in exact_by_theta and exact_by_theta[0.65] < peak * 0.98:
        violations.append(
            f"exact matches at θ=0.65 ({exact_by_theta[0.65]}) are more than "
            f"2% below the peak ({peak})"
        )
    return violations
