"""Figure 16 — running times on the DBpedia category subset.

Trivial, Hybrid and Overlap are timed on consecutive pairs of six growing
category-graph versions; the paper observes execution times roughly
proportional to input size (with fluctuations from the number of
overlapping nodes), concluding the methods scale.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..core.hybrid import hybrid_partition
from ..core.trivial import trivial_partition
from ..evaluation.reporting import render_table
from ..evaluation.timing import StopwatchSeries
from ..partition.interner import ColorInterner
from ..similarity.overlap_alignment import overlap_partition
from .base import ExperimentResult
from .parallel import run_sharded
from .store import VersionStore

FIGURE = "Figure 16"
TITLE = "Evaluation time on a DBpedia category subset"


def run(
    scale: float = 0.5,
    seed: int = 30,
    versions: int = 6,
    config: AlignConfig | None = None,
) -> ExperimentResult:
    config = config or AlignConfig()
    theta, engine = config.theta, config.engine
    store = VersionStore.shared("dbpedia", scale=scale, seed=seed, versions=versions)
    store.prepare()

    def pair_row(index: int) -> dict:
        # Each cell times the *methods* in-process (union construction is
        # excluded, as before); with jobs > 1 the cells themselves run
        # concurrently, so per-cell times can inflate under CPU contention
        # while the wall-clock of the whole figure drops.
        union = store.union(index, index + 1)
        stats = union.stats()
        stopwatch = StopwatchSeries()
        trivial_interner = ColorInterner()
        stopwatch.measure(
            "trivial",
            index + 1,
            lambda: trivial_partition(union, trivial_interner, engine=engine),
        )
        hybrid_interner = ColorInterner()
        hybrid = stopwatch.measure(
            "hybrid",
            index + 1,
            lambda: hybrid_partition(union, hybrid_interner, engine=engine),
        )
        stopwatch.measure(
            "overlap",
            index + 1,
            lambda: overlap_partition(
                union, theta=theta, interner=hybrid_interner, base=hybrid
            ),
        )
        return {
            "pair": f"{index + 1}->{index + 2}",
            "nodes": stats.num_nodes,
            "triples": stats.num_edges,
            "trivial_s": round(stopwatch.get("trivial", index + 1), 4),
            "hybrid_s": round(stopwatch.get("hybrid", index + 1), 4),
            "overlap_s": round(stopwatch.get("overlap", index + 1), 4),
        }

    rows = run_sharded(pair_row, range(versions - 1), jobs=config.jobs)
    rendered = render_table(
        ["pair", "nodes", "triples", "Trivial (s)", "Hybrid (s)", "Overlap (s)"],
        [
            [
                row["pair"],
                row["nodes"],
                row["triples"],
                row["trivial_s"],
                row["hybrid_s"],
                row["overlap_s"],
            ]
            for row in rows
        ],
        precision=4,
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={
            "scale": scale,
            "seed": seed,
            "versions": versions,
            "theta": theta,
            "engine": engine,
        },
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: times grow roughly proportionally to input size",
            "paper: Trivial ≤ Hybrid ≤ Overlap per pair",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    rows = result.rows
    # Method ordering on medians across pairs (single-pair timings at
    # millisecond scale are too noisy for per-row assertions).
    def median(name: str) -> float:
        values = sorted(row[name] for row in rows)
        return values[len(values) // 2]

    if median("trivial_s") > median("hybrid_s") * 1.5:
        violations.append(
            f"trivial slower than 1.5x hybrid on medians "
            f"({median('trivial_s')} vs {median('hybrid_s')})"
        )
    if median("hybrid_s") > median("overlap_s") * 1.5:
        violations.append(
            f"hybrid slower than 1.5x overlap on medians "
            f"({median('hybrid_s')} vs {median('overlap_s')})"
        )
    # Proportionality: the largest input should not be markedly faster than
    # the typical pair on the dominant (overlap) cost.  Comparing against
    # the median (not the single smallest pair) keeps one GC pause or
    # scheduler spike on one measurement from reading as a shape violation.
    biggest = max(rows, key=lambda row: row["triples"])
    if biggest["overlap_s"] < median("overlap_s") * 0.7:
        violations.append(
            "overlap time shrinks as inputs grow "
            f"(median {median('overlap_s')}s -> biggest {biggest['overlap_s']}s)"
        )
    return violations
