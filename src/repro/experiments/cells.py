"""Module-level matrix-cell functions for the shared-memory pool.

:func:`~repro.experiments.parallel.run_store_cells` ships its cell
callable to the workers *by reference* (module + qualified name), which
is what lets the pool run under the ``spawn`` start method — closures
over a parent-local store cannot cross that boundary.  Every cell here
is a pure, deterministic function of ``(store, config, item)`` over the
store's immutable artifacts, so serial and sharded runs agree
byte-for-byte.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..align.methods import MethodContext, run_method
from ..evaluation.metrics import (
    aligned_edge_count,
    ground_truth_entity_count,
    matched_entity_count,
    total_entity_count,
)

_DEFAULT_CONFIG = AlignConfig()


def edge_ratio_cell(store, config, pair: tuple[int, int]) -> tuple[float, float]:
    """Figure 10: ``(trivial, deblank)`` aligned-edge ratios of one pair."""
    source, target = pair
    return (
        store.aligned_edge_ratio(source, target, "trivial"),
        store.aligned_edge_ratio(source, target, "deblank"),
    )


def method_counts_cell(store, config, pair: tuple[int, int]) -> tuple[int, int, int]:
    """Figure 11: ``(deblank, hybrid, overlap)`` aligned-edge counts.

    Deblank needs no union at all; hybrid and overlap run over the
    store's memoized cell context (shared snapshot + composed base).
    """
    config = config or _DEFAULT_CONFIG
    source, target = pair
    deblank_count = store.aligned_edge_count(source, target, "deblank")
    context = store.cell_context(source, target, config)
    weighted, _ = store.overlap_result(source, target, config)
    return (
        deblank_count,
        aligned_edge_count(context.union, context.hybrid),
        aligned_edge_count(context.union, weighted.partition),
    )


def kbisim_counts_cell(store, config, pair: tuple[int, int]) -> dict:
    """k-bisimulation counts of one version pair at round bound ``config.k``.

    Runs the ``kbisim`` method over the pair's memoized union.  Inside a
    pool worker the per-node signature shard pool is automatically
    disabled (nested pools stay serial), so parallelism is per-cell
    here and per-node in direct :class:`~repro.align.session.Aligner`
    runs — both byte-identical to the serial result.
    """
    config = config or _DEFAULT_CONFIG
    source, target = pair
    union = store.union(source, target)
    csr = store.union_csr(source, target) if config.engine == "dense" else None
    result = run_method(
        union, config.evolve(method="kbisim"), MethodContext(csr=csr)
    )
    return {
        "pair": (source, target),
        "k": config.k,
        "matched_entities": result.matched_entities(),
        "rounds": result.details["signature_rounds"],
        "converged": result.details["signature_converged"],
    }


def entity_counts_cell(store, config, index: int) -> dict:
    """Figure 13: aligned node counts of the consecutive pair at *index*."""
    config = config or _DEFAULT_CONFIG
    context = store.cell_context(index, index + 1, config)
    weighted, _ = store.overlap_result(index, index + 1, config)
    truth = store.ground_truth(index, index + 1)
    union = context.union
    return {
        "pair": f"{index + 1}->{index + 2}",
        "hybrid": matched_entity_count(union, context.hybrid),
        "overlap": matched_entity_count(union, weighted.partition),
        "gtopdb": ground_truth_entity_count(union, truth),
        "total": total_entity_count(union, truth),
    }
