"""Process-pool sharding of independent experiment cells.

The paper's evaluation (Figures 9–16) is dominated by *matrices* of
alignment runs: every cell of a version-pair grid is an independent
computation over immutable per-version artifacts.  Two execution paths
fan such cells out over worker processes, both merging results in
deterministic (submission) order so ``jobs=4`` produces byte-identical
reports to ``jobs=1``:

* :func:`run_sharded` — the legacy copy-on-write path: a fork-based pool
  created per call, workers inheriting the parent's prepared artifacts.
  Kept for callables that close over arbitrary state; fork-only.
* :class:`SharedStorePool` / :func:`run_store_cells` — the
  shared-memory path.  The parent publishes a
  :class:`~repro.experiments.store.VersionStore`'s artifacts into named
  ``multiprocessing.shared_memory`` segments **once**
  (:meth:`VersionStore.publish_shared`); a persistent pool of workers
  attaches by name (CSR index arrays as zero-copy numpy views), so only
  ``(cell, items_manifest, index)`` ever crosses the process boundary.
  This works under both ``fork`` and ``spawn`` start methods — segment
  names are picklable — which is what makes the pool usable on
  platforms without ``fork``.

Overhead-aware scheduling
-------------------------

Forking at a loss is the failure mode this module replaces (the old
per-call fork pool re-pickled graphs until ``jobs=4`` ran 2.3x *slower*
than serial).  :func:`effective_jobs` therefore refuses to shard when
the projected parallel saving — ``est_cell_seconds × cells × (1 −
1/workers)`` against the *measured* pool start/attach overhead
(:func:`pool_overhead`) — cannot pay for the pool.
:func:`run_store_cells` autotunes the estimate by timing the first cell
when the caller has none.

Cleanup guarantees
------------------

The pool owns one :class:`~repro.experiments.shm.ShmRegistry`; its
``close()`` (and context-manager exit) first drains the workers, then
unlinks every published segment — on success, on exception, and after a
worker crash (a killed worker surfaces as ``BrokenProcessPool`` and the
``finally`` path still unlinks).  No run leaks ``/dev/shm`` entries.

Fault tolerance
---------------

:func:`run_store_cells` survives worker crashes, per-cell hangs and
transient pool failures (see ``docs/robustness.md``):

* a crashed worker (``BrokenProcessPool``) or a cell exceeding
  ``config.cell_timeout`` abandons the *pool*, not the *run* — completed
  results are kept, the store is re-published into fresh segments, and
  only the lost cells are re-submitted, under an exponential-backoff
  budget of ``config.retries`` attempts;
* when the budget is spent, the run **degrades to serial** in-process
  execution of the remaining cells and records a structured
  :class:`~repro.robustness.retry.DegradationEvent` out of band —
  results stay byte-identical to the fault-free run (the merge is by
  item index either way), which the differential oracle's ``--axis
  faults`` pins;
* the seeded fault hooks of :mod:`repro.robustness.faults` sit on the
  worker entry (``site="worker.cell"``), the serial loop and autotune
  probe (``"cell.serial"``) and pool construction (``"pool.start"``) —
  each a single ``is None`` check when injection is disabled.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from ..exceptions import ExperimentError, TransientError, WorkerCrashError
from ..robustness import faults
from ..robustness.retry import DegradationEvent, RetryPolicy, record_event
from .shm import ShmRegistry, attach_pickle, shm_available

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Captured by the forked workers; only valid while a pool is running.
_TASK: Callable | None = None
_ITEMS: Sequence | None = None

#: Set inside workers so nested ``run_sharded`` calls stay serial.
_IN_WORKER = False

#: Measured pool start/attach overhead in seconds (``None`` = not yet
#: measured).  Tests monkeypatch this to pin scheduling decisions.
_MEASURED_OVERHEAD: float | None = None

#: Fallback overhead when measurement itself fails (pool unavailable).
_DEFAULT_OVERHEAD = 0.05


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _noop() -> None:
    return None


#: Ceiling on the overhead probe's round-trip: a wedged prototype pool
#: must not stall :func:`effective_jobs` forever.
_PROBE_TIMEOUT = 5.0


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker of *pool* (hung-cell cleanup).

    Reaches into the executor's process table — there is no public kill
    API — so a subsequent ``shutdown(wait=True)`` returns instead of
    waiting on a cell that will never finish.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racing exit
            pass


def pool_overhead() -> float:
    """The measured cost (seconds) of starting and draining a pool.

    Measured **once per process** (cached in ``_MEASURED_OVERHEAD``) by
    round-tripping a no-op through a two-worker pool — the price
    :func:`effective_jobs` demands the projected parallel saving beat
    before it agrees to shard.  The round-trip is bounded by
    ``_PROBE_TIMEOUT``: a wedged pool yields the default overhead, not a
    hung scheduler.
    """
    global _MEASURED_OVERHEAD
    if _MEASURED_OVERHEAD is None:
        method = "fork" if fork_available() else "spawn"
        start = time.perf_counter()
        pool = None
        try:
            context = multiprocessing.get_context(method)
            pool = ProcessPoolExecutor(max_workers=2, mp_context=context)
            pool.submit(_noop).result(timeout=_PROBE_TIMEOUT)
            pool.shutdown(wait=True)
            _MEASURED_OVERHEAD = time.perf_counter() - start
        except (OSError, RuntimeError, ValueError,
                TimeoutError):  # pragma: no cover - no subprocess support / hang
            _MEASURED_OVERHEAD = _DEFAULT_OVERHEAD
            if pool is not None:
                _kill_pool_workers(pool)
                pool.shutdown(wait=False)
    return _MEASURED_OVERHEAD


def effective_jobs(
    jobs: int | None, cells: int, est_cell_seconds: float | None = None
) -> int:
    """Clamp a ``jobs`` request to something worth forking for.

    ``None`` or ``0`` means "one worker per usable CPU"; anything is
    capped by the number of cells (a worker without a cell is pure
    startup overhead).  When the caller knows (or has measured) the
    per-cell cost, pass *est_cell_seconds*: the request is then refused
    entirely (result ``1``) unless the projected saving —
    ``est × cells × (1 − 1/workers)`` with ``workers`` capped at the
    usable CPUs — exceeds the measured :func:`pool_overhead`.
    """
    if jobs is None or jobs <= 0:
        jobs = usable_cpus()
    jobs = max(1, min(jobs, cells))
    if jobs > 1 and est_cell_seconds is not None:
        workers = min(jobs, usable_cpus())
        if workers <= 1:
            return 1
        saving = est_cell_seconds * cells * (1.0 - 1.0 / workers)
        if saving <= pool_overhead():
            return 1
    return jobs


def fork_available() -> bool:
    """Can this platform run the copy-on-write worker pool?"""
    return "fork" in multiprocessing.get_all_start_methods()


def in_worker() -> bool:
    """Is this process a pool worker?  Nested pools must stay serial."""
    return _IN_WORKER


def mark_worker() -> None:
    """Flag this process as a pool worker (called by worker initializers)."""
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(index: int):
    global _IN_WORKER
    _IN_WORKER = True
    assert _TASK is not None and _ITEMS is not None
    return _TASK(_ITEMS[index])


def run_sharded(
    task: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: int | None = 1,
) -> list[Result]:
    """``[task(item) for item in items]``, sharded over *jobs* processes.

    Results are returned in item order regardless of which worker finished
    first — the deterministic merge that keeps parallel figure reports
    byte-identical to serial ones.  *task* must be a pure function of its
    item (plus read-only state prepared before the call) and must return
    a picklable value; it is executed in forked workers, so in-worker
    mutations of shared objects are invisible to the parent and to other
    cells.

    ``jobs=1`` (the default), a single item, platforms without ``fork``
    and nested calls from inside a worker all use the plain serial loop.
    """
    items = list(items)
    jobs = effective_jobs(jobs, len(items))
    if jobs <= 1 or _IN_WORKER or not fork_available():
        return [task(item) for item in items]

    global _TASK, _ITEMS
    previous = (_TASK, _ITEMS)
    _TASK, _ITEMS = task, items
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            return list(pool.map(_invoke, range(len(items))))
    finally:
        _TASK, _ITEMS = previous


# ----------------------------------------------------------------------
# The shared-memory pool (fork and spawn)
# ----------------------------------------------------------------------

#: Worker-side state, set once by the pool initializer.
_WORKER_STORE = None
_WORKER_CONFIG = None

#: Which retry attempt this worker's pool belongs to — lets seeded
#: fault plans target "the first run only" so retries proceed cleanly.
_WORKER_ATTEMPT = 0

#: Worker-side cache of the current map call's attached item list,
#: keyed by its segment name (one live map at a time).
_WORKER_ITEMS: dict = {}


def _pool_init(store_manifest: dict, config, fault_plan=None,
               attempt: int = 0) -> None:
    """Worker initializer: attach the published store exactly once.

    Runs in every worker under both start methods — the manifest is a
    small picklable dict of segment names, so nothing heavy crosses the
    ``spawn`` boundary either.  *fault_plan* (a picklable
    :class:`~repro.robustness.faults.FaultPlan`, normally ``None``) arms
    seeded fault injection inside the worker; *attempt* is the parent's
    retry attempt number, exposed to the plan's filters.
    """
    global _IN_WORKER, _WORKER_STORE, _WORKER_CONFIG, _WORKER_ATTEMPT
    from .store import VersionStore

    _IN_WORKER = True
    faults.install(fault_plan)
    _WORKER_ATTEMPT = attempt
    _WORKER_STORE = VersionStore.from_manifest(store_manifest)
    _WORKER_CONFIG = config


def _pool_invoke(cell: Callable, items_manifest: dict, index: int):
    """One cell, executed in a pool worker against the attached store."""
    if faults.ACTIVE is not None:
        faults.fire("worker.cell", index=index, attempt=_WORKER_ATTEMPT)
    key = items_manifest.get("name") or ""
    items = _WORKER_ITEMS.get(key)
    if items is None:
        items = attach_pickle(items_manifest)
        _WORKER_ITEMS.clear()  # previous map's items are dead weight
        _WORKER_ITEMS[key] = items
    return cell(_WORKER_STORE, _WORKER_CONFIG, items[index])


class SharedStorePool:
    """A persistent worker pool attached to one published VersionStore.

    The constructor publishes the store's artifacts into a private
    :class:`~repro.experiments.shm.ShmRegistry` and starts *jobs*
    workers whose initializer attaches the segments by name; every
    subsequent :meth:`map` call ships only a cell callable (pickled by
    reference — use module-level functions, see
    :mod:`repro.experiments.cells`), the item list (published once as a
    single shm pickle) and per-task integer indices.

    Use as a context manager; :meth:`close` drains the workers and
    unlinks every segment, and runs on success, exception and worker
    crash alike.
    """

    def __init__(
        self,
        store,
        jobs: int,
        config=None,
        context: str | None = None,
        fault_plan=None,
        attempt: int = 0,
    ) -> None:
        if not shm_available():  # pragma: no cover - POSIX-only fallback
            raise ExperimentError("shared memory is not available on this platform")
        if jobs < 1:
            raise ExperimentError(f"a pool needs at least one worker, got {jobs}")
        method = context or ("fork" if fork_available() else "spawn")
        if method not in multiprocessing.get_all_start_methods():
            raise ExperimentError(f"start method {method!r} is unavailable")
        self.jobs = jobs
        self.attempt = attempt
        if fault_plan is None:
            # Forward the parent's armed plan so worker-side sites fire
            # under fork and spawn alike (plans are picklable).
            fault_plan = faults.active_plan()
        self._registry = ShmRegistry()
        self._pool: ProcessPoolExecutor | None = None
        try:
            if faults.ACTIVE is not None:
                faults.fire("pool.start", attempt=attempt)
            manifest = store.publish_shared(self._registry)
            self._pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context(method),
                initializer=_pool_init,
                initargs=(manifest, config, fault_plan, attempt),
            )
        except BaseException:
            self.close()
            raise

    def map(self, cell: Callable, items: Sequence) -> list:
        """``[cell(store, config, item) for item in items]`` in the pool.

        Deterministic merge: results come back in item order.  The item
        list is published once into a transient segment that is unlinked
        as soon as every result is in.
        """
        items = list(items)
        done, error = self.map_partial(cell, items, range(len(items)))
        if error is not None:
            raise error
        return [done[index] for index in range(len(items))]

    def map_partial(
        self,
        cell: Callable,
        items: Sequence,
        pending: Sequence[int],
        timeout: float | None = None,
    ) -> tuple[dict, BaseException | None]:
        """Run the *pending* indices of *items*, keeping what completes.

        The recovery primitive behind :func:`run_store_cells`: returns
        ``(done, error)`` where ``done`` maps item index to result and
        ``error`` is ``None`` on full success, a
        :class:`~repro.exceptions.WorkerCrashError` when a worker died
        (``BrokenProcessPool``), or a :class:`~repro.exceptions.
        TransientError` when a cell exceeded *timeout* (the hung workers
        are SIGKILLed so the pool can be torn down without blocking).
        Results that finished before the failure stay in ``done`` — the
        caller re-runs only what is missing.  Non-transient cell
        exceptions propagate unchanged.
        """
        items = list(items)
        pending = list(pending)
        done: dict[int, object] = {}
        if not pending:
            return done, None
        if self._pool is None:
            raise ExperimentError("the pool is closed")
        error: BaseException | None = None
        with ShmRegistry() as transient:
            manifest = transient.publish_pickle(items)
            futures = [
                (index, self._pool.submit(_pool_invoke, cell, manifest, index))
                for index in pending
            ]
            for index, future in futures:
                if error is not None:
                    future.cancel()
                    continue
                try:
                    done[index] = future.result(timeout=timeout)
                except BrokenProcessPool as crash:
                    error = WorkerCrashError(
                        f"a pool worker died while running cell {index} "
                        f"(attempt {self.attempt})"
                    )
                    error.__cause__ = crash
                except FutureTimeoutError:
                    error = TransientError(
                        f"cell {index} exceeded cell_timeout={timeout}s "
                        f"(attempt {self.attempt}); killing the pool"
                    )
                    error.reason = "cell-timeout"  # type: ignore[attr-defined]
                    _kill_pool_workers(self._pool)
                except (TransientError, OSError) as transient_error:
                    error = transient_error
        return done, error

    def close(self, kill: bool = False) -> None:
        """Drain the workers and unlink every published segment.

        ``kill=True`` SIGKILLs the workers first — the KeyboardInterrupt
        and hung-cell paths, where waiting on them could block forever.
        """
        try:
            if self._pool is not None:
                if kill:
                    _kill_pool_workers(self._pool)
                self._pool.shutdown(wait=True)
                self._pool = None
        finally:
            self._registry.unlink()

    def __enter__(self) -> "SharedStorePool":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        interrupted = exc_type is not None and issubclass(
            exc_type, (KeyboardInterrupt, SystemExit)
        )
        self.close(kill=interrupted)


def _probe_deadline(timeout: float | None):
    """A context manager bounding one in-process cell with ``SIGALRM``.

    Guards the autotune probe: a hung first cell raises
    :class:`~repro.exceptions.TransientError` instead of stalling
    :func:`run_store_cells` forever.  Only armable on the main thread of
    a POSIX process (``signal`` rules); elsewhere the probe runs
    unguarded — same behavior as before the guard existed.
    """
    import contextlib

    @contextlib.contextmanager
    def deadline():
        usable = (
            timeout is not None
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def on_alarm(signum, frame):
            raise TransientError(
                f"autotune probe cell exceeded cell_timeout={timeout}s"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    return deadline()


def _degradation_reason(error: BaseException) -> str:
    tagged = getattr(error, "reason", None)
    if tagged:
        return tagged
    if isinstance(error, WorkerCrashError):
        return "worker-crash"
    return "transient"


def _pooled_with_recovery(
    store,
    cell: Callable,
    items: list,
    *,
    jobs: int,
    config,
    context: str | None,
    policy: RetryPolicy,
    events: list | None,
    run_serial: Callable[[int], object],
) -> list:
    """Pool execution with bounded retry and serial degradation.

    Attempts the pending cells up to ``policy.attempts`` times — each
    attempt re-publishes the store into fresh segments (the old pool may
    have died with them attached) and re-submits **only** the cells that
    have no result yet.  Transient failures (worker crash, cell timeout,
    pool-start I/O error) consume one attempt after an exponential
    backoff; anything else propagates.  A spent budget degrades the
    remaining cells to in-process serial execution (*run_serial*, by
    original index) and records a :class:`DegradationEvent` out of band.
    The merged result list is ordered by item index, so recovered,
    degraded and fault-free runs are byte-identical.
    """
    done: dict[int, object] = {}
    pending = list(range(len(items)))
    last_error: BaseException | None = None
    for attempt in range(policy.attempts):
        if attempt:
            time.sleep(policy.delay(attempt))
        try:
            pool = SharedStorePool(
                store,
                jobs=min(jobs, len(pending)),
                config=config,
                context=context,
                attempt=attempt,
            )
        except (TransientError, OSError) as error:
            last_error = error
            continue
        crashed = False
        try:
            results, error = pool.map_partial(
                cell, items, pending, timeout=policy.cell_timeout
            )
            done.update(results)
            if error is None:
                return [done[index] for index in range(len(items))]
            last_error = error
            crashed = True
            pending = [index for index in range(len(items)) if index not in done]
        finally:
            pool.close(kill=crashed)
    assert last_error is not None
    record_event(
        DegradationEvent(
            reason=_degradation_reason(last_error),
            attempts=policy.attempts,
            cells=tuple(pending),
            error=repr(last_error),
        ),
        events,
    )
    for index in pending:
        done[index] = run_serial(index)
    return [done[index] for index in range(len(items))]


def run_store_cells(
    store,
    cell: Callable,
    items: Sequence,
    *,
    jobs: int | None = 1,
    config=None,
    context: str | None = None,
    est_cell_seconds: float | None = None,
    force: bool = False,
    events: list | None = None,
) -> list:
    """``[cell(store, config, item) for item in items]``, shm-sharded.

    The store-aware successor of :func:`run_sharded`: *cell* must be a
    module-level function of ``(store, config, item)`` (picklable by
    reference, so the pool works under ``spawn`` too).  Serial and
    parallel runs produce identical results — cells are deterministic
    functions of the store's immutable artifacts.

    Scheduling is overhead-aware: without *est_cell_seconds* the first
    cell is timed in-process and used as the estimate; the pool only
    starts when :func:`effective_jobs` projects a net saving.  *force*
    skips that economics check (parity tests on small workloads) but
    never the correctness fallbacks (nested calls, missing shm).

    Execution is fault-tolerant (see the module docstring): worker
    crashes and cell timeouts are retried under
    ``config.retries``/``config.cell_timeout`` and degrade to serial
    when the budget is spent; pass *events* to collect this run's
    :class:`~repro.robustness.retry.DegradationEvent` records.
    """
    items = list(items)
    if not items:
        return []
    policy = RetryPolicy.from_config(config)

    def run_one(index: int):
        if faults.ACTIVE is not None:
            faults.fire("cell.serial", index=index)
        return cell(store, config, items[index])

    def serial(indices: Sequence[int]) -> list:
        return [run_one(index) for index in indices]

    if _IN_WORKER or not shm_available():
        return serial(range(len(items)))
    requested = effective_jobs(jobs, len(items))
    if requested <= 1:
        return serial(range(len(items)))

    def pooled(workers: int, selected: list, offset: int) -> list:
        return _pooled_with_recovery(
            store,
            cell,
            selected,
            jobs=workers,
            config=config,
            context=context,
            policy=policy,
            events=events,
            run_serial=lambda index: run_one(offset + index),
        )

    if force:
        return pooled(requested, items, 0)

    head: list = []
    rest = items
    offset = 0
    if est_cell_seconds is None:
        # The autotune probe runs the first cell in-process to price the
        # workload; the deadline guard keeps a hung probe from stalling
        # the scheduler (the retry budget covers transient probe faults).
        start = time.perf_counter()
        attempt = 0
        while True:
            try:
                with _probe_deadline(policy.cell_timeout):
                    head = serial([0])
                break
            except (TransientError, OSError) as error:
                if isinstance(error, FileNotFoundError) or attempt >= policy.retries:
                    raise
                attempt += 1
                time.sleep(policy.delay(attempt))
        est_cell_seconds = time.perf_counter() - start
        rest = items[1:]
        offset = 1
        if not rest:
            return head
    worthwhile = effective_jobs(jobs, len(rest), est_cell_seconds=est_cell_seconds)
    if worthwhile <= 1:
        return head + serial(range(offset, len(items)))
    return head + pooled(worthwhile, rest, offset)
