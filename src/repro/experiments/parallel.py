"""Process-pool sharding of independent experiment cells.

The paper's evaluation (Figures 9–16) is dominated by *matrices* of
alignment runs: every cell of a version-pair grid is an independent
computation over immutable per-version artifacts.  :func:`run_sharded`
fans such cells out over a pool of worker processes and merges the
results in deterministic (submission) order, so ``jobs=4`` produces
byte-identical reports to ``jobs=1``.

Design notes
------------

* Workers are created with the ``fork`` start method: the parent prepares
  the shared artifacts (dataset versions, CSR snapshots, the
  :class:`~repro.experiments.store.VersionStore`) *before* the pool
  starts, and every worker inherits them copy-on-write — no pickling of
  graphs, no per-worker re-generation, and the forked children share the
  parent's hash seed so set-iteration order (and therefore every interned
  color) matches the serial run exactly.
* The task callable and item list are handed to workers through module
  globals captured at fork time; only the item *index* crosses the
  process boundary on the way in, and only the (picklable) cell result on
  the way out.
* Platforms without ``fork`` (and nested pools) quietly fall back to the
  serial path — results are identical either way, that is the contract.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Captured by the forked workers; only valid while a pool is running.
_TASK: Callable | None = None
_ITEMS: Sequence | None = None

#: Set inside workers so nested ``run_sharded`` calls stay serial.
_IN_WORKER = False


def effective_jobs(jobs: int | None, cells: int) -> int:
    """Clamp a ``jobs`` request to something worth forking for.

    ``None`` or ``0`` means "one worker per CPU"; anything is capped by
    the number of cells (a worker without a cell is pure fork overhead).
    """
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, cells))


def fork_available() -> bool:
    """Can this platform run the copy-on-write worker pool?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(index: int):
    global _IN_WORKER
    _IN_WORKER = True
    assert _TASK is not None and _ITEMS is not None
    return _TASK(_ITEMS[index])


def run_sharded(
    task: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: int | None = 1,
) -> list[Result]:
    """``[task(item) for item in items]``, sharded over *jobs* processes.

    Results are returned in item order regardless of which worker finished
    first — the deterministic merge that keeps parallel figure reports
    byte-identical to serial ones.  *task* must be a pure function of its
    item (plus read-only state prepared before the call) and must return
    a picklable value; it is executed in forked workers, so in-worker
    mutations of shared objects are invisible to the parent and to other
    cells.

    ``jobs=1`` (the default), a single item, platforms without ``fork``
    and nested calls from inside a worker all use the plain serial loop.
    """
    items = list(items)
    jobs = effective_jobs(jobs, len(items))
    if jobs <= 1 or _IN_WORKER or not fork_available():
        return [task(item) for item in items]

    global _TASK, _ITEMS
    previous = (_TASK, _ITEMS)
    _TASK, _ITEMS = task, items
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            return list(pool.map(_invoke, range(len(items))))
    finally:
        _TASK, _ITEMS = previous
