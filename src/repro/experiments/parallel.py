"""Process-pool sharding of independent experiment cells.

The paper's evaluation (Figures 9–16) is dominated by *matrices* of
alignment runs: every cell of a version-pair grid is an independent
computation over immutable per-version artifacts.  Two execution paths
fan such cells out over worker processes, both merging results in
deterministic (submission) order so ``jobs=4`` produces byte-identical
reports to ``jobs=1``:

* :func:`run_sharded` — the legacy copy-on-write path: a fork-based pool
  created per call, workers inheriting the parent's prepared artifacts.
  Kept for callables that close over arbitrary state; fork-only.
* :class:`SharedStorePool` / :func:`run_store_cells` — the
  shared-memory path.  The parent publishes a
  :class:`~repro.experiments.store.VersionStore`'s artifacts into named
  ``multiprocessing.shared_memory`` segments **once**
  (:meth:`VersionStore.publish_shared`); a persistent pool of workers
  attaches by name (CSR index arrays as zero-copy numpy views), so only
  ``(cell, items_manifest, index)`` ever crosses the process boundary.
  This works under both ``fork`` and ``spawn`` start methods — segment
  names are picklable — which is what makes the pool usable on
  platforms without ``fork``.

Overhead-aware scheduling
-------------------------

Forking at a loss is the failure mode this module replaces (the old
per-call fork pool re-pickled graphs until ``jobs=4`` ran 2.3x *slower*
than serial).  :func:`effective_jobs` therefore refuses to shard when
the projected parallel saving — ``est_cell_seconds × cells × (1 −
1/workers)`` against the *measured* pool start/attach overhead
(:func:`pool_overhead`) — cannot pay for the pool.
:func:`run_store_cells` autotunes the estimate by timing the first cell
when the caller has none.

Cleanup guarantees
------------------

The pool owns one :class:`~repro.experiments.shm.ShmRegistry`; its
``close()`` (and context-manager exit) first drains the workers, then
unlinks every published segment — on success, on exception, and after a
worker crash (a killed worker surfaces as ``BrokenProcessPool`` and the
``finally`` path still unlinks).  No run leaks ``/dev/shm`` entries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..exceptions import ExperimentError
from .shm import ShmRegistry, attach_pickle, shm_available

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Captured by the forked workers; only valid while a pool is running.
_TASK: Callable | None = None
_ITEMS: Sequence | None = None

#: Set inside workers so nested ``run_sharded`` calls stay serial.
_IN_WORKER = False

#: Measured pool start/attach overhead in seconds (``None`` = not yet
#: measured).  Tests monkeypatch this to pin scheduling decisions.
_MEASURED_OVERHEAD: float | None = None

#: Fallback overhead when measurement itself fails (pool unavailable).
_DEFAULT_OVERHEAD = 0.05


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _noop() -> None:
    return None


def pool_overhead() -> float:
    """The measured cost (seconds) of starting and draining a pool.

    Measured once per process by round-tripping a no-op through a
    two-worker pool — the price :func:`effective_jobs` demands the
    projected parallel saving beat before it agrees to shard.
    """
    global _MEASURED_OVERHEAD
    if _MEASURED_OVERHEAD is None:
        method = "fork" if fork_available() else "spawn"
        start = time.perf_counter()
        try:
            context = multiprocessing.get_context(method)
            with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
                pool.submit(_noop).result()
            _MEASURED_OVERHEAD = time.perf_counter() - start
        except Exception:  # pragma: no cover - no subprocess support
            _MEASURED_OVERHEAD = _DEFAULT_OVERHEAD
    return _MEASURED_OVERHEAD


def effective_jobs(
    jobs: int | None, cells: int, est_cell_seconds: float | None = None
) -> int:
    """Clamp a ``jobs`` request to something worth forking for.

    ``None`` or ``0`` means "one worker per usable CPU"; anything is
    capped by the number of cells (a worker without a cell is pure
    startup overhead).  When the caller knows (or has measured) the
    per-cell cost, pass *est_cell_seconds*: the request is then refused
    entirely (result ``1``) unless the projected saving —
    ``est × cells × (1 − 1/workers)`` with ``workers`` capped at the
    usable CPUs — exceeds the measured :func:`pool_overhead`.
    """
    if jobs is None or jobs <= 0:
        jobs = usable_cpus()
    jobs = max(1, min(jobs, cells))
    if jobs > 1 and est_cell_seconds is not None:
        workers = min(jobs, usable_cpus())
        if workers <= 1:
            return 1
        saving = est_cell_seconds * cells * (1.0 - 1.0 / workers)
        if saving <= pool_overhead():
            return 1
    return jobs


def fork_available() -> bool:
    """Can this platform run the copy-on-write worker pool?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(index: int):
    global _IN_WORKER
    _IN_WORKER = True
    assert _TASK is not None and _ITEMS is not None
    return _TASK(_ITEMS[index])


def run_sharded(
    task: Callable[[Item], Result],
    items: Sequence[Item],
    jobs: int | None = 1,
) -> list[Result]:
    """``[task(item) for item in items]``, sharded over *jobs* processes.

    Results are returned in item order regardless of which worker finished
    first — the deterministic merge that keeps parallel figure reports
    byte-identical to serial ones.  *task* must be a pure function of its
    item (plus read-only state prepared before the call) and must return
    a picklable value; it is executed in forked workers, so in-worker
    mutations of shared objects are invisible to the parent and to other
    cells.

    ``jobs=1`` (the default), a single item, platforms without ``fork``
    and nested calls from inside a worker all use the plain serial loop.
    """
    items = list(items)
    jobs = effective_jobs(jobs, len(items))
    if jobs <= 1 or _IN_WORKER or not fork_available():
        return [task(item) for item in items]

    global _TASK, _ITEMS
    previous = (_TASK, _ITEMS)
    _TASK, _ITEMS = task, items
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            return list(pool.map(_invoke, range(len(items))))
    finally:
        _TASK, _ITEMS = previous


# ----------------------------------------------------------------------
# The shared-memory pool (fork and spawn)
# ----------------------------------------------------------------------

#: Worker-side state, set once by the pool initializer.
_WORKER_STORE = None
_WORKER_CONFIG = None

#: Worker-side cache of the current map call's attached item list,
#: keyed by its segment name (one live map at a time).
_WORKER_ITEMS: dict = {}


def _pool_init(store_manifest: dict, config) -> None:
    """Worker initializer: attach the published store exactly once.

    Runs in every worker under both start methods — the manifest is a
    small picklable dict of segment names, so nothing heavy crosses the
    ``spawn`` boundary either.
    """
    global _IN_WORKER, _WORKER_STORE, _WORKER_CONFIG
    from .store import VersionStore

    _IN_WORKER = True
    _WORKER_STORE = VersionStore.from_manifest(store_manifest)
    _WORKER_CONFIG = config


def _pool_invoke(cell: Callable, items_manifest: dict, index: int):
    """One cell, executed in a pool worker against the attached store."""
    key = items_manifest.get("name") or ""
    items = _WORKER_ITEMS.get(key)
    if items is None:
        items = attach_pickle(items_manifest)
        _WORKER_ITEMS.clear()  # previous map's items are dead weight
        _WORKER_ITEMS[key] = items
    return cell(_WORKER_STORE, _WORKER_CONFIG, items[index])


class SharedStorePool:
    """A persistent worker pool attached to one published VersionStore.

    The constructor publishes the store's artifacts into a private
    :class:`~repro.experiments.shm.ShmRegistry` and starts *jobs*
    workers whose initializer attaches the segments by name; every
    subsequent :meth:`map` call ships only a cell callable (pickled by
    reference — use module-level functions, see
    :mod:`repro.experiments.cells`), the item list (published once as a
    single shm pickle) and per-task integer indices.

    Use as a context manager; :meth:`close` drains the workers and
    unlinks every segment, and runs on success, exception and worker
    crash alike.
    """

    def __init__(
        self,
        store,
        jobs: int,
        config=None,
        context: str | None = None,
    ) -> None:
        if not shm_available():  # pragma: no cover - POSIX-only fallback
            raise ExperimentError("shared memory is not available on this platform")
        if jobs < 1:
            raise ExperimentError(f"a pool needs at least one worker, got {jobs}")
        method = context or ("fork" if fork_available() else "spawn")
        if method not in multiprocessing.get_all_start_methods():
            raise ExperimentError(f"start method {method!r} is unavailable")
        self.jobs = jobs
        self._registry = ShmRegistry()
        self._pool: ProcessPoolExecutor | None = None
        try:
            manifest = store.publish_shared(self._registry)
            self._pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context(method),
                initializer=_pool_init,
                initargs=(manifest, config),
            )
        except BaseException:
            self.close()
            raise

    def map(self, cell: Callable, items: Sequence) -> list:
        """``[cell(store, config, item) for item in items]`` in the pool.

        Deterministic merge: results come back in item order.  The item
        list is published once into a transient segment that is unlinked
        as soon as every result is in.
        """
        items = list(items)
        if not items:
            return []
        if self._pool is None:
            raise ExperimentError("the pool is closed")
        with ShmRegistry() as transient:
            manifest = transient.publish_pickle(items)
            futures = [
                self._pool.submit(_pool_invoke, cell, manifest, index)
                for index in range(len(items))
            ]
            return [future.result() for future in futures]

    def close(self) -> None:
        """Drain the workers and unlink every published segment."""
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        finally:
            self._registry.unlink()

    def __enter__(self) -> "SharedStorePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_store_cells(
    store,
    cell: Callable,
    items: Sequence,
    *,
    jobs: int | None = 1,
    config=None,
    context: str | None = None,
    est_cell_seconds: float | None = None,
    force: bool = False,
) -> list:
    """``[cell(store, config, item) for item in items]``, shm-sharded.

    The store-aware successor of :func:`run_sharded`: *cell* must be a
    module-level function of ``(store, config, item)`` (picklable by
    reference, so the pool works under ``spawn`` too).  Serial and
    parallel runs produce identical results — cells are deterministic
    functions of the store's immutable artifacts.

    Scheduling is overhead-aware: without *est_cell_seconds* the first
    cell is timed in-process and used as the estimate; the pool only
    starts when :func:`effective_jobs` projects a net saving.  *force*
    skips that economics check (parity tests on small workloads) but
    never the correctness fallbacks (nested calls, missing shm).
    """
    items = list(items)
    if not items:
        return []

    def serial(remaining: Sequence) -> list:
        return [cell(store, config, item) for item in remaining]

    if _IN_WORKER or not shm_available():
        return serial(items)
    requested = effective_jobs(jobs, len(items))
    if requested <= 1:
        return serial(items)
    if force:
        with SharedStorePool(store, jobs=requested, config=config, context=context) as pool:
            return pool.map(cell, items)

    head: list = []
    rest = items
    if est_cell_seconds is None:
        start = time.perf_counter()
        head = serial(items[:1])
        est_cell_seconds = time.perf_counter() - start
        rest = items[1:]
        if not rest:
            return head
    worthwhile = effective_jobs(jobs, len(rest), est_cell_seconds=est_cell_seconds)
    if worthwhile <= 1:
        return head + serial(rest)
    with SharedStorePool(store, jobs=worthwhile, config=config, context=context) as pool:
        return head + pool.map(cell, rest)
