"""Per-node shared-memory sharding of k-signature refinement rounds.

The experiment pool (:mod:`repro.experiments.parallel`) shards *cells* —
whole alignment runs — across workers.  The k-bisimulation family
(:mod:`repro.core.ksignature`) parallelizes one level deeper: within a
single run, each round's per-node signatures depend only on the previous
round's color buffer, so the subset is split into contiguous *node
shards* and every worker hashes its slice independently (the
embarrassingly parallel shape of Rau et al.).

The protocol mirrors the store pool's shared-memory contract:

* the parent publishes the immutable subset-restricted CSR arrays
  (subset ids, offsets, predicates, objects) into named segments
  **once**, plus one writable ``colors`` segment it refreshes before
  each round's fan-out;
* workers attach by name at pool start (zero-copy ``numpy`` views when
  numpy is importable, ``array("q")`` copies otherwise) and re-read the
  live colors view every invocation — only ``(lo, hi)`` bounds and the
  resulting ``(signatures, digests)`` bytes ever cross the process
  boundary;
* shard results are merged in shard order, which is subset order, so the
  pooled signature stream is byte-identical to the serial one and the
  interned colors — and hence the partition — are byte-identical for
  every ``jobs`` value.  The differential oracle's ``kbisim`` axis pins
  this.

Any pool failure (start failure, crashed worker, platform without
shared memory) falls back to the serial driver and recomputes from the
initial colors — same interner, same keys, same result.
"""

from __future__ import annotations

import multiprocessing
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Collection

from ..core.ksignature import (
    SignatureStats,
    ksignature_colors,
    ksignature_rounds,
    prepare_signature_run,
    shard_signatures,
)
from ..model.csr import CSRGraph
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from .parallel import fork_available, in_worker, mark_worker, usable_cpus
from .shm import ShmRegistry, attach_bytes, attach_segment, shm_available

#: Attached shard state of one worker process (set by the initializer).
_WORKER_STATE: dict[str, Any] | None = None


def pooled_available() -> bool:
    """Can this process run the signature shard pool?

    Nested pools stay serial (a pool worker must not spawn its own
    pool), and platforms without named shared memory have no segment
    transport to offer.
    """
    return shm_available() and not in_worker()


def _attach_int64(manifest: dict, keepalive: list) -> Any:
    """A published int64 array as a numpy view, or an ``array`` copy."""
    try:
        from .shm import attach_index_array

        return attach_index_array(manifest, keepalive)
    except ImportError:  # pragma: no cover - numpy-less platforms
        return array("q", attach_bytes(manifest))


def _colors_view(segment: Any, count: int) -> Any:
    """A live int64 view over the parent-refreshed colors segment."""
    try:  # pragma: no cover - numpy-less branch exercised on bare CI
        import numpy
    except ImportError:
        return memoryview(segment.buf)[: count * 8].cast("q")
    view = numpy.frombuffer(segment.buf, dtype=numpy.int64, count=count)
    view.flags.writeable = False
    return view


def _shard_init(manifest: dict) -> None:
    """Worker initializer: attach every published segment by name."""
    global _WORKER_STATE
    mark_worker()
    keepalive: list = []
    state: dict[str, Any] = {"keepalive": keepalive, "engine": manifest["engine"]}
    for key in ("subset_ids", "sub_offsets", "sub_predicates", "sub_objects"):
        state[key] = _attach_int64(manifest[key], keepalive)
    segment = attach_segment(manifest["colors"])
    keepalive.append(segment)
    state["colors"] = _colors_view(segment, manifest["colors"]["count"])
    _WORKER_STATE = state


def _shard_invoke(lo: int, hi: int) -> tuple[bytes, bytes]:
    """Hash one contiguous shard against the current colors segment."""
    state = _WORKER_STATE
    assert state is not None, "worker used before _shard_init ran"
    sigs, digests = shard_signatures(
        state["colors"],
        state["subset_ids"],
        state["sub_offsets"],
        state["sub_predicates"],
        state["sub_objects"],
        lo,
        hi,
        engine=state["engine"],
    )
    return sigs.tobytes(), digests


def _shard_bounds(count: int, workers: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` shards covering ``range(count)``."""
    workers = max(1, min(workers, count))
    base, extra = divmod(count, workers)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def pooled_ksignature_partition(
    graph: TripleGraph,
    interner: ColorInterner | None = None,
    k: int = 3,
    engine: str = "reference",
    subset: Collection[NodeId] | None = None,
    partition: Partition | None = None,
    csr: CSRGraph | None = None,
    stats: SignatureStats | None = None,
    jobs: int = 2,
) -> Partition:
    """:func:`~repro.core.ksignature.ksignature_partition`, sharded.

    Same contract and byte-identical output; *jobs* selects the worker
    count (``0`` = one per usable CPU).  Signature hashing fans out over
    per-node shards each round; everything else — validation, interning
    order, early exit — is the shared round loop.  On any pool failure
    the run restarts serially from the initial colors (the interner's
    memoization makes the replay byte-identical), so *jobs* can never
    change a result, only wall-clock.
    """
    csr, interner, stats, coloring, colors, subset_ids = prepare_signature_run(
        graph, interner, k, engine, subset, partition, csr, stats
    )
    workers = usable_cpus() if jobs == 0 else jobs
    workers = min(workers, len(subset_ids)) if subset_ids else 1

    rounds = 0
    converged = False
    classes = len(set(colors))
    done = False
    if workers > 1:
        try:
            out = _run_pooled(
                csr, colors, subset_ids, k, interner, engine, stats, workers
            )
            final_colors, rounds, converged, classes = out
            done = True
        except (OSError, RuntimeError, ValueError):
            # Pool start failure, worker crash (BrokenProcessPool is a
            # RuntimeError) or segment trouble: degrade to serial.
            stats.class_counts.clear()
    if not done:
        final_colors, rounds, converged, classes = ksignature_colors(
            csr, colors, subset_ids, k, interner, engine=engine, stats=stats
        )
    stats.rounds = rounds
    stats.converged = converged
    stats.final_classes = classes

    coloring.update(zip(csr.nodes, final_colors))
    return Partition(coloring)


def _run_pooled(
    csr: CSRGraph,
    colors: list[int],
    subset_ids: list[int],
    k: int,
    interner: ColorInterner,
    engine: str,
    stats: SignatureStats,
    workers: int,
) -> tuple[list[int], int, bool, int]:
    """One pooled run: publish segments, fan rounds out, merge in order."""
    sub_offsets, sub_predicates, sub_objects = csr.subgraph_pairs(subset_ids)
    count = len(colors)
    shards = _shard_bounds(len(subset_ids), workers)
    start_method = "fork" if fork_available() else "spawn"
    context = multiprocessing.get_context(start_method)

    with ShmRegistry() as registry:
        manifest = {
            "engine": engine,
            "subset_ids": registry.publish_array(array("q", subset_ids)),
            "sub_offsets": registry.publish_array(sub_offsets),
            "sub_predicates": registry.publish_array(sub_predicates),
            "sub_objects": registry.publish_array(sub_objects),
        }
        segment = registry.create(max(1, count * 8))
        manifest["colors"] = {"name": segment.name, "count": count}
        pool = ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=context,
            initializer=_shard_init,
            initargs=(manifest,),
        )
        try:
            def batch(current: list[int]) -> tuple[array, bytes]:
                segment.buf[: count * 8] = array("q", current).tobytes()
                futures = [
                    pool.submit(_shard_invoke, lo, hi) for lo, hi in shards
                ]
                sigs = array("q")
                digests = bytearray()
                for future in futures:
                    sig_bytes, digest_bytes = future.result()
                    sigs.frombytes(sig_bytes)
                    digests += digest_bytes
                return sigs, bytes(digests)

            return ksignature_rounds(
                list(colors), subset_ids, batch, k, interner, stats=stats
            )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
