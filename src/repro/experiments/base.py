"""Common infrastructure for the per-figure experiment runners.

Every experiment module exposes

* ``run(scale=…, seed=…, …) -> ExperimentResult`` — regenerate the
  figure's rows/series at a configurable scale, and
* ``check_shape(result) -> list[str]`` — verify the figure's *qualitative*
  claims (who wins, where the crossovers fall); the returned list contains
  human-readable violations and is empty when the shape holds.

Absolute numbers are not expected to match the paper (the datasets are
synthetic substitutes at laptop scale; see DESIGN.md §3) — the shape is
the reproduction target, and the benchmark harness asserts it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..io.atomic import atomic_open, atomic_write_text


@dataclass
class ExperimentResult:
    """The structured and rendered outcome of one experiment run."""

    figure: str
    title: str
    parameters: dict[str, Any]
    rows: list[dict[str, Any]]
    rendered: str
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The full human-readable report."""
        header = f"{self.figure}: {self.title}"
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
        parts = [header, "=" * len(header), f"parameters: {params}", "", self.rendered]
        if self.notes:
            parts.extend(["", "notes:"] + [f"  - {note}" for note in self.notes])
        return "\n".join(parts)

    def save(self, directory: str | os.PathLike) -> str:
        """Write the rendering and the raw rows under *directory*."""
        os.makedirs(directory, exist_ok=True)
        stem = self.figure.lower().replace(" ", "")
        text_path = os.path.join(directory, f"{stem}.txt")
        atomic_write_text(text_path, self.render() + "\n")
        json_path = os.path.join(directory, f"{stem}.json")
        with atomic_open(json_path) as handle:
            json.dump(
                {
                    "figure": self.figure,
                    "title": self.title,
                    "parameters": self.parameters,
                    "rows": self.rows,
                    "notes": self.notes,
                },
                handle,
                indent=2,
                default=str,
            )
        return text_path


def assert_shape(violations: list[str]) -> None:
    """Raise with a readable message when shape checks failed."""
    if violations:
        details = "\n  - ".join(violations)
        raise AssertionError(f"figure shape violated:\n  - {details}")
