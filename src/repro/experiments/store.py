"""Per-version snapshot cache shared by all matrix cells (batch execution).

The figure experiments (paper Section 6) evaluate alignment measures on
*grids* of version pairs.  The seed implementation re-did all per-version
work inside every cell: re-build the ``CombinedGraph``, re-intern every
label, re-snapshot the CSR arrays and re-run the deblanking refinement —
an ``O(cells × versions)`` duplication, following none of the
prepare-once designs of the batch bisimulation literature (Luo et al.'s
I/O-efficient partition construction; Rau et al.'s flat multi-graph
layouts).  :class:`VersionStore` materializes each version's reusable
artifacts exactly once and shares them across cells and methods:

* the version graphs themselves (via the memoized dataset generators),
* a per-version :class:`~repro.model.csr.CSRGraph` block — cell snapshots
  are assembled by :meth:`CSRGraph.from_blocks` instead of re-walking the
  union,
* a per-version *deblank summary*: the fixpoint classes of the version's
  blank nodes plus their class-level out-structure.  Because bisimulation
  refinement never crosses the disjoint union's sides, the union's
  deblanking partition is recovered per cell by refining the two tiny
  class-level quotients jointly (:func:`joint_quotient_colors`) — no
  node-level refinement in the cell at all,
* per-version edge "token triples" that let Figure 10's aligned-edge
  ratios be computed by set algebra on precomputed per-version sets,
  without ever building the union graph,
* memoized unions, hybrid contexts and overlap results so sibling figures
  (13/14/15 share pairs and thetas) reuse one computation per process.

Every artifact is deterministic given the store's inputs, and cells
derive private :class:`~repro.partition.interner.ColorInterner` states
from them (fresh per pair, cloned per overlap run), which is what makes a
parallel run's output byte-identical to the serial one (see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Callable, Hashable, Sequence

from ..align.config import AlignConfig
from ..core.hybrid import hybrid_partition
from ..core.maintain import deblank_fixpoint, maintain_or_batch
from ..core.refinement import bisim_refine_fixpoint
from ..datasets import registry as _registry
from ..datasets.dbpedia import DBpediaCategoryGenerator
from ..datasets.efo import EFOGenerator
from ..datasets.gtopdb import GtoPdbGenerator
from ..datasets.synthetic import SHAPE_FAMILIES
from ..exceptions import CorruptStoreError, ExperimentError
from ..model.csr import CSRGraph
from ..model.graph import NodeId, TripleGraph
from ..model.union import SOURCE, CombinedGraph
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from ..similarity.overlap_alignment import OverlapTrace, overlap_partition
from ..similarity.string_distance import split_words

#: A token stands for one node in a version-independent way: non-blank
#: nodes are identified by their label (equal labels align trivially),
#: blank nodes by a version-local marker resolved at cell time.
Token = tuple

#: Default alignment settings for cells whose caller passes no config.
_DEFAULT_CONFIG = AlignConfig()

#: The generator families a shared store knows how to build.  The
#: synthetic shapes are first-class members: ``VersionStore.shared(
#: "synthetic_scale_free", ...)`` memoizes exactly like the curated
#: datasets, so the parallel runner's fork-time preparation works
#: unchanged on generated histories.
GENERATOR_FAMILIES: dict[str, Callable] = {
    "efo": EFOGenerator,
    "gtopdb": GtoPdbGenerator,
    "dbpedia": DBpediaCategoryGenerator,
    **SHAPE_FAMILIES,
}


# ----------------------------------------------------------------------
# Per-version deblank summaries and their cell-time joint refinement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlankSummary:
    """One version's deblanking fixpoint, quotiented to class level.

    ``classes`` maps every blank node to a dense class id (numbered by
    first appearance in graph order); ``class_pairs[cid]`` is the class's
    out-structure as a frozenset of ``(predicate_token, object_token)``
    pairs, where a token is ``("n", label)`` for a non-blank node and
    ``("b", class_id)`` for a blank one.  All members of a fixpoint class
    share this structure (that is what being a fixpoint means), so one
    representative per class suffices.
    """

    classes: dict[NodeId, int]
    class_pairs: tuple[frozenset, ...]

    @property
    def num_classes(self) -> int:
        return len(self.class_pairs)


def blank_summary(graph: TripleGraph) -> BlankSummary:
    """Compute one version's :class:`BlankSummary` (its once-per-store cost)."""
    blanks = graph.blanks()
    if not blanks:
        return BlankSummary(classes={}, class_pairs=())
    interner = ColorInterner()
    partition = bisim_refine_fixpoint(
        graph, label_partition(graph, interner), blanks, interner
    )
    return summary_from_partition(graph, partition)


def summary_from_partition(graph: TripleGraph, partition) -> BlankSummary:
    """Quotient any deblanking fixpoint of *graph* to a :class:`BlankSummary`.

    Class ids are numbered by first appearance in graph order, so two
    *equivalent* partitions (batch-refined or incrementally maintained —
    color values notwithstanding) produce identical summaries.
    """
    blanks = graph.blanks()
    if not blanks:
        return BlankSummary(classes={}, class_pairs=())
    classes: dict[NodeId, int] = {}
    representatives: list[NodeId] = []
    class_of_color: dict[int, int] = {}
    for node in graph.nodes():
        if node not in blanks:
            continue
        color = partition[node]
        cid = class_of_color.get(color)
        if cid is None:
            cid = len(representatives)
            class_of_color[color] = cid
            representatives.append(node)
        classes[node] = cid

    def token(node: NodeId) -> Token:
        cid = classes.get(node)
        if cid is None:
            return ("n", graph.label(node))
        return ("b", cid)

    class_pairs = tuple(
        frozenset((token(p), token(o)) for p, o in graph.out(rep))
        for rep in representatives
    )
    return BlankSummary(classes=classes, class_pairs=class_pairs)


def joint_quotient_colors(
    first: BlankSummary, second: BlankSummary
) -> tuple[list[int], list[int]]:
    """Refine two versions' blank-class quotients jointly to the fixpoint.

    Returns one color per class and side; two classes (of either side)
    receive the same color iff their members would share a class in the
    deblanking partition of the disjoint union.  This is plain
    ``BisimRefine*`` run on the quotient structures: sound because every
    summary class is behaviorally exact, and cheap because the quotients
    have one node per *class*, not per blank.
    """
    interner = ColorInterner()
    bottom = interner.blank_color()
    sides = (first, second)
    colors: list[list[int]] = [[bottom] * side.num_classes for side in sides]
    if not (first.class_pairs or second.class_pairs):
        return [], []

    def resolve(tok: Token, current: list[int]) -> int:
        if tok[0] == "b":
            return current[tok[1]]
        return interner.label_color(tok[1])

    def distinct(state: list[list[int]]) -> int:
        return len({color for side in state for color in side})

    count = distinct(colors)
    while True:
        refined: list[list[int]] = []
        for slot, side in enumerate(sides):
            current = colors[slot]
            refined.append(
                [
                    interner.recolor(
                        current[cid],
                        tuple(
                            sorted(
                                {
                                    (resolve(p, current), resolve(o, current))
                                    for p, o in side.class_pairs[cid]
                                }
                            )
                        ),
                    )
                    for cid in range(side.num_classes)
                ]
            )
        refined_count = distinct(refined)
        if refined_count == count:
            # The step was a pure recoloring: the previous iterate already
            # was the fixpoint (Definition 4), exactly as in
            # ``bisim_refine_fixpoint``.
            return colors[0], colors[1]
        colors = refined
        count = refined_count


def compose_deblank_partition(
    union: CombinedGraph,
    source_summary: BlankSummary,
    target_summary: BlankSummary,
    joint: tuple[list[int], list[int]],
    interner: ColorInterner,
) -> Partition:
    """Assemble a pair's deblanking partition from per-version summaries.

    Equivalent (as a partition) to refining the union from scratch:
    non-blank nodes get their label color, every blank its class's joint
    quotient color (*joint* comes from :func:`joint_quotient_colors` on
    the two summaries).  Shared by :meth:`VersionStore.deblank_partition`
    and the incremental chain path of
    :meth:`repro.align.session.Aligner.align_chain`.
    """
    source_colors, target_colors = joint
    colors: dict[NodeId, int] = {}
    label_color = interner.label_color
    intern = interner.intern
    for node, label in union.labels().items():
        side, original = node
        if side == SOURCE:
            cid = source_summary.classes.get(original)
            joint_colors = source_colors
        else:
            cid = target_summary.classes.get(original)
            joint_colors = target_colors
        if cid is None:
            colors[node] = label_color(label)
        else:
            colors[node] = intern(("deblank-class", joint_colors[cid]))
    return Partition(colors)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
@dataclass
class CellContext:
    """Everything one matrix cell needs, derived deterministically.

    ``interner`` holds the state right after the hybrid refinement; runs
    that mint further colors (overlap) must work on ``interner.clone()``
    so sibling cells stay independent.
    """

    source: int
    target: int
    engine: str
    union: CombinedGraph
    csr: CSRGraph | None
    interner: ColorInterner
    deblank: Partition
    hybrid: Partition


#: Process-wide stores keyed by dataset configuration (shared across
#: figures; inherited copy-on-write by forked parallel workers).
#: Cleared together with the generators they wrap (see the registry
#: hook below), so ``clear_shared_generators()`` releases everything.
_SHARED_STORES: dict[tuple, "VersionStore"] = {}

_registry.register_clear_hook(_SHARED_STORES.clear)


class VersionStore:
    """Materializes each dataset version's reusable artifacts exactly once."""

    #: Unions/snapshots kept per store; a figure touches consecutive or
    #: triangular pairs, so a small window gets all the reuse there is.
    UNION_CACHE_SIZE = 12

    #: Cell contexts / overlap results kept per store.  They pin unions,
    #: snapshots and partitions, so an all-pairs grid must be allowed to
    #: evict old cells instead of retaining O(pairs) of them.
    CONTEXT_CACHE_SIZE = 16

    def __init__(self, generator, versions: int | None = None) -> None:
        if versions is None:
            versions = generator.config.versions
        self.generator = generator
        self.versions = versions
        self._summaries: dict[int, BlankSummary] = {}
        self._fixpoints: dict[int, Partition] = {}
        # Maintenance-chain state: one interner for every maintained
        # fixpoint (the verbatim-carry contract) plus the cross-step
        # canonical-form cache of the coarsening pass.
        self._chain_interner = ColorInterner()
        self._canon_cache: dict = {}
        self._csr_blocks: dict[int, CSRGraph] = {}
        self._edge_tokens: dict[tuple[int, str], frozenset] = {}
        self._trivial_sides: dict[tuple[int, int], frozenset] = {}
        self._static_stats: dict[tuple[int, int], tuple[int, int]] = {}
        self._joints: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        self._unions: OrderedDict[tuple[int, int], CombinedGraph] = OrderedDict()
        self._union_csrs: OrderedDict[tuple[int, int], CSRGraph] = OrderedDict()
        self._contexts: OrderedDict[tuple[int, int, str], CellContext] = OrderedDict()
        self._overlaps: OrderedDict[tuple, tuple] = OrderedDict()
        self._truths: dict[tuple[int, int], object] = {}
        #: Literal-split memo shared by every overlap cell of the store
        #: (and published to pool workers / persisted with the store).
        self._split_cache: dict[str, frozenset] = {}
        #: Dataset coordinates (family/scale/seed/versions) when known —
        #: stamped by :meth:`shared` and persisted as the archive identity.
        self.identity: dict | None = None
        #: The persistence backend this store was loaded from (if any).
        self.backend = None
        #: Corrupt derived artifacts skipped at load time (rebuilt lazily
        #: from the graphs): ``[{"key", "reason"}, ...]``.
        self.quarantined: list[dict] = []
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def shared(
        cls,
        family: str,
        scale: float,
        seed: int,
        versions: int,
        backend=None,
        verify_checksums: bool = True,
    ) -> "VersionStore":
        """The process-wide store for one dataset configuration.

        With *backend* (a path or persistence backend, see
        :mod:`repro.experiments.persist`) the store is **loaded** from a
        persisted archive instead of regenerated — the archive's identity
        must match the requested coordinates.  *verify_checksums* is
        forwarded to the load (``AlignConfig.verify_checksums``).
        """
        try:
            factory = GENERATOR_FAMILIES[family]
        except KeyError:
            raise ExperimentError(
                f"unknown dataset family {family!r}; "
                f"expected one of {sorted(GENERATOR_FAMILIES)}"
            ) from None
        key = (family, float(scale), int(seed), int(versions))
        store = _SHARED_STORES.get(key)
        if store is None:
            identity = {
                "family": family,
                "scale": float(scale),
                "seed": int(seed),
                "versions": int(versions),
            }
            if backend is not None:
                store = cls.load(
                    backend, expect=identity, verify_checksums=verify_checksums
                )
            else:
                store = cls(factory.shared(scale=scale, seed=seed, versions=versions))
                store.identity = identity
            _SHARED_STORES[key] = store
        return store

    def _count(self, kind: str, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1

    def cache_stats(self) -> dict[str, tuple[int, int]]:
        """``kind -> (hits, misses)`` over every artifact family."""
        kinds = sorted(set(self.hits) | set(self.misses))
        return {
            kind: (self.hits.get(kind, 0), self.misses.get(kind, 0))
            for kind in kinds
        }

    # ------------------------------------------------------------------
    # Per-version artifacts
    # ------------------------------------------------------------------
    def graph(self, version: int) -> TripleGraph:
        return self.generator.graph(version)

    def graphs(self) -> list[TripleGraph]:
        return [self.graph(i) for i in range(self.versions)]

    def summary(self, version: int) -> BlankSummary:
        cached = self._summaries.get(version)
        if cached is not None:
            self._count("summary", hit=True)
            return cached
        self._count("summary", hit=False)
        summary = blank_summary(self.graph(version))
        self._summaries[version] = summary
        return summary

    def blank_fixpoint(self, version: int) -> Partition:
        """The version's deblanking fixpoint, cached alongside CSR blocks.

        When the generator exposes identity-preserving deltas
        (``version_changes``, like :class:`~repro.datasets.synthetic.
        SyntheticGenerator`), every version after the first is
        *maintained* from its predecessor's partition
        (:func:`repro.core.maintain.maintain_or_batch`) instead of
        refined from scratch — equivalent as a partition either way.
        """
        cached = self._fixpoints.get(version)
        if cached is not None:
            self._count("fixpoint", hit=True)
            return cached
        self._count("fixpoint", hit=False)
        graph = self.graph(version)
        version_changes = getattr(self.generator, "version_changes", None)
        if version > 0 and version_changes is not None:
            previous = self.blank_fixpoint(version - 1)
            partition = maintain_or_batch(
                graph,
                previous,
                version_changes(version - 1),
                graph.blanks(),
                self._chain_interner,
                canon_cache=self._canon_cache,
            )
        else:
            partition = deblank_fixpoint(graph, self._chain_interner)
        self._fixpoints[version] = partition
        return partition

    def maintained_summary(self, version: int) -> BlankSummary:
        """A :class:`BlankSummary` built on the maintained fixpoint.

        Identical in value to :meth:`summary` (summaries are invariant
        under partition recoloring); the batch path stays the default so
        the differential oracle compares genuinely independent pipelines.
        """
        return summary_from_partition(
            self.graph(version), self.blank_fixpoint(version)
        )

    def csr_block(self, version: int) -> CSRGraph:
        cached = self._csr_blocks.get(version)
        if cached is not None:
            self._count("csr_block", hit=True)
            return cached
        self._count("csr_block", hit=False)
        block = CSRGraph(self.graph(version))
        self._csr_blocks[version] = block
        return block

    def _split_edge_tokens(self, version: int, method: str) -> tuple[frozenset, frozenset]:
        """``(static, blank_touching)`` distinct edge triples over tokens.

        Static triples (no blank endpoint) are identical for every method
        and directly comparable across versions; blank-touching triples
        carry version-local markers resolved at cell time.  The split
        keeps the per-cell work proportional to the (small) blank-touching
        part — the static bulk is intersected as-is.
        """
        static_key = (version, "static")
        blank_key = (version, method)
        static = self._edge_tokens.get(static_key)
        blank_part = self._edge_tokens.get(blank_key)
        if static is not None and blank_part is not None:
            self._count("edge_tokens", hit=True)
            return static, blank_part
        self._count("edge_tokens", hit=False)
        graph = self.graph(version)
        if method == "trivial":
            blank_token: Callable[[NodeId], Token] = lambda node: ("b", node)
        elif method == "deblank":
            classes = self.summary(version).classes
            blank_token = lambda node: ("c", classes[node])
        else:
            raise ExperimentError(
                f"no edge tokens for method {method!r} (trivial/deblank only)"
            )
        labels = graph.labels()
        blanks = graph.blanks()
        static_set: set = set()
        blank_set: set = set()
        for edge in graph.edges():
            if blanks.isdisjoint(edge):
                static_set.add(
                    tuple(("n", labels[node]) for node in edge)
                )
            else:
                blank_set.add(
                    tuple(
                        blank_token(node)
                        if node in blanks
                        else ("n", labels[node])
                        for node in edge
                    )
                )
        static = frozenset(static_set)
        blank_part = frozenset(blank_set)
        self._edge_tokens[static_key] = static
        self._edge_tokens[blank_key] = blank_part
        return static, blank_part

    def edge_tokens(self, version: int, method: str) -> frozenset:
        """The version's distinct edge triples over node tokens.

        ``method="trivial"`` marks blank nodes with their identity
        (``("b", node)``), ``method="deblank"`` with their fixpoint class
        (``("c", class_id)``); non-blank nodes are always ``("n", label)``.
        """
        key = (version, method + "-all")
        cached = self._edge_tokens.get(key)
        if cached is None:
            static, blank_part = self._split_edge_tokens(version, method)
            cached = static | blank_part
            self._edge_tokens[key] = cached
        else:
            self._count("edge_tokens", hit=True)
        return cached

    # ------------------------------------------------------------------
    # Pair-level artifacts
    # ------------------------------------------------------------------
    def joint_colors(
        self, source: int, target: int
    ) -> tuple[list[int], list[int]]:
        """Cross-version colors of the two versions' blank classes."""
        key = (source, target)
        cached = self._joints.get(key)
        if cached is not None:
            self._count("joint", hit=True)
            return cached
        self._count("joint", hit=False)
        joint = joint_quotient_colors(self.summary(source), self.summary(target))
        self._joints[key] = joint
        return joint

    def _lru(self, cache: OrderedDict, key, build: Callable, kind: str,
             size: int | None = None):
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            self._count(kind, hit=True)
            return cached
        self._count(kind, hit=False)
        value = build()
        cache[key] = value
        while len(cache) > (size or self.UNION_CACHE_SIZE):
            cache.popitem(last=False)
        return value

    def union(self, source: int, target: int) -> CombinedGraph:
        """The memoized disjoint union of a version pair."""
        return self._lru(
            self._unions,
            (source, target),
            lambda: CombinedGraph(self.graph(source), self.graph(target)),
            "union",
        )

    def union_csr(self, source: int, target: int) -> CSRGraph:
        """The pair's CSR snapshot, assembled from the per-version blocks."""
        return self._lru(
            self._union_csrs,
            (source, target),
            lambda: CSRGraph.from_blocks(
                self.csr_block(source), self.csr_block(target)
            ),
            "union_csr",
        )

    def ground_truth(self, source: int, target: int):
        """The generator's ground truth for a pair (generators that have one)."""
        key = (source, target)
        cached = self._truths.get(key)
        if cached is not None:
            self._count("truth", hit=True)
            return cached
        self._count("truth", hit=False)
        truth = self.generator.ground_truth(source, target)
        self._truths[key] = truth
        return truth

    # ------------------------------------------------------------------
    # Fast aligned-edge metrics (no union, no node-level refinement)
    # ------------------------------------------------------------------
    def _trivial_side_tokens(self, version: int, side: int) -> frozenset:
        """Blank-touching trivial triples with the side baked in (cached).

        Trivial blanks are unique per combined node: tagging by side keeps
        a self-cell's two blank occurrences apart (the paper's "trivial
        diagonal < 1" effect), and the tagging only depends on which side
        the version plays — so it is cached per ``(version, side)``.
        """
        key = (version, side)
        cached = self._trivial_sides.get(key)
        if cached is None:
            _, blank_part = self._split_edge_tokens(version, "trivial")
            cached = _retag_blanks(
                blank_part, "b", lambda payload: ("b", side, payload)
            )
            self._trivial_sides[key] = cached
        return cached

    def _static_pair_stats(self, source: int, target: int) -> tuple[int, int]:
        """``(aligned, total)`` over the pair's *static* triples (cached).

        Static triples have no blank endpoint, so their counts are shared
        by the trivial and deblank cells of the pair.
        """
        key = (source, target)
        cached = self._static_stats.get(key)
        if cached is None:
            first, _ = self._split_edge_tokens(source, "trivial")
            second, _ = self._split_edge_tokens(target, "trivial")
            cached = (len(first & second), len(first | second))
            self._static_stats[key] = cached
        return cached

    def aligned_edge_stats(
        self, source: int, target: int, method: str
    ) -> tuple[int, int]:
        """``(|T1 ∩ T2|, |T1 ∪ T2|)`` over distinct edge color triples.

        Matches :func:`repro.evaluation.metrics.aligned_edge_counts` on the
        trivial/deblank partitions of the pair's union, computed from the
        per-version token sets alone.  Static triples are counted from the
        shared per-pair cache; only the blank-touching triples are
        translated per cell (trivially few — blanks are a small fraction
        of nodes), and their token space is disjoint from the static one,
        so the two counts simply add up.
        """
        static_aligned, static_total = self._static_pair_stats(source, target)
        if method == "trivial":
            first = self._trivial_side_tokens(source, 1)
            second = self._trivial_side_tokens(target, 2)
        else:
            first_colors, second_colors = self.joint_colors(source, target)
            _, first_part = self._split_edge_tokens(source, "deblank")
            _, second_part = self._split_edge_tokens(target, "deblank")
            first = _retag_blanks(
                first_part, "c", lambda cid: ("q", first_colors[cid])
            )
            second = _retag_blanks(
                second_part, "c", lambda cid: ("q", second_colors[cid])
            )
        return (
            static_aligned + len(first & second),
            static_total + len(first | second),
        )

    def aligned_edge_ratio(self, source: int, target: int, method: str) -> float:
        aligned, total = self.aligned_edge_stats(source, target, method)
        if total == 0:
            return 1.0
        return aligned / total

    def aligned_edge_count(self, source: int, target: int, method: str) -> int:
        return self.aligned_edge_stats(source, target, method)[0]

    # ------------------------------------------------------------------
    # Cell contexts (hybrid and overlap over the memoized snapshots)
    # ------------------------------------------------------------------
    def deblank_partition(
        self,
        source: int,
        target: int,
        interner: ColorInterner,
        union: CombinedGraph | None = None,
    ) -> Partition:
        """The pair's deblanking partition, composed from the summaries.

        Equivalent (as a partition) to
        ``deblank_partition(union, interner)`` but assembled from the
        per-version artifacts: non-blank nodes get their label color and
        every blank gets its class's joint quotient color.
        """
        if union is None:
            union = self.union(source, target)
        return compose_deblank_partition(
            union,
            self.summary(source),
            self.summary(target),
            self.joint_colors(source, target),
            interner,
        )

    def cell_context(
        self, source: int, target: int, config: AlignConfig | None = None
    ) -> CellContext:
        """Union + snapshot + composed deblank + hybrid for one pair.

        Alignment settings arrive as one
        :class:`~repro.align.config.AlignConfig` (only its ``engine``
        matters here).  Memoized per ``(pair, engine)``; the context is
        deterministic (a fresh interner is seeded from the composed
        deblank partition), so a forked worker recomputing it produces
        the exact same colors as the serial run.
        """
        engine = (config or _DEFAULT_CONFIG).engine

        def build() -> CellContext:
            union = self.union(source, target)
            csr = self.union_csr(source, target) if engine == "dense" else None
            interner = ColorInterner()
            deblank = self.deblank_partition(source, target, interner, union)
            hybrid = hybrid_partition(
                union, interner, base=deblank, engine=engine, csr=csr
            )
            return CellContext(
                source=source,
                target=target,
                engine=engine,
                union=union,
                csr=csr,
                interner=interner,
                deblank=deblank,
                hybrid=hybrid,
            )

        return self._lru(
            self._contexts, (source, target, engine), build, "context",
            size=self.CONTEXT_CACHE_SIZE,
        )

    def overlap_result(
        self,
        source: int,
        target: int,
        config: AlignConfig | None = None,
        max_rounds: int = 100,
    ):
        """Memoized Algorithm 2 run over the pair's cell context.

        The run is parameterized entirely by *config* (theta, probe,
        engine, splitter).  Returns ``(weighted_partition, trace)``.  The
        run clones the context's interner, so results depend only on the
        pair and the config — never on which sibling theta/method ran
        first.
        """
        config = config or _DEFAULT_CONFIG

        def build() -> tuple:
            context = self.cell_context(source, target, config)
            trace = OverlapTrace()
            weighted = overlap_partition(
                context.union,
                theta=config.theta,
                interner=context.interner.clone(),
                base=context.hybrid,
                probe=config.probe,  # type: ignore[arg-type]
                max_rounds=max_rounds,
                trace=trace,
                splitter=self._store_splitter(config.splitter),
                engine=config.engine,
                csr=context.csr,
            )
            return (weighted, trace)

        if config.splitter is not split_words:
            # A bespoke splitter is not part of the memo key; run uncached.
            return build()
        key = (
            source, target, config.engine, float(config.theta), config.probe,
            max_rounds,
        )
        return self._lru(
            self._overlaps, key, build, "overlap",
            size=self.CONTEXT_CACHE_SIZE,
        )

    # ------------------------------------------------------------------
    def prepare(
        self,
        versions: Sequence[int] | None = None,
        *,
        summaries: bool = False,
        tokens: tuple[str, ...] = (),
        csr: bool = False,
    ) -> None:
        """Materialize per-version artifacts up front.

        Figures call this before sharding cells across workers so the
        expensive once-per-version work happens in the parent and reaches
        every forked worker copy-on-write instead of being redone
        ``jobs`` times.
        """
        selected = list(versions) if versions is not None else list(range(self.versions))
        for version in selected:
            self.graph(version)
            if summaries:
                self.summary(version)
            for method in tokens:
                self.edge_tokens(version, method)
            if csr:
                self.csr_block(version)

    def _store_splitter(self, base: Callable) -> Callable:
        """Memoize the default splitter in the store-wide literal cache.

        The cache is one of the published/persisted artifacts ("literal
        splits"), so pool workers and reloaded archives skip the
        re-splitting cost.  Bespoke splitters pass through untouched —
        caching across different splitters would conflate their outputs.
        """
        if base is not split_words:
            return base
        cache = self._split_cache

        def splitter(text: str) -> frozenset:
            result = cache.get(text)
            if result is None:
                result = split_words(text)
                cache[text] = result
            return result

        return splitter

    # ------------------------------------------------------------------
    # Shared-memory publication (the parallel pool's fork/spawn contract)
    # ------------------------------------------------------------------
    def publish_shared(self, registry) -> dict:
        """Publish this store's artifacts into *registry* segments once.

        Returns a small picklable manifest of segment names for
        :meth:`from_manifest`.  CSR index arrays go in raw (workers map
        them back as zero-copy numpy views); graphs and the derived
        Python-object artifacts travel as one pickle each.  Only what is
        already cached is published — a worker recomputes anything it
        misses from the shared graphs, deterministically, so results
        never depend on how warm the parent's caches were.
        """
        graphs = [self.graph(version) for version in range(self.versions)]
        return {
            "versions": self.versions,
            "identity": dict(self.identity) if self.identity else None,
            "graphs": registry.publish_pickle(graphs),
            "csr": {
                version: block.to_shared(registry)
                for version, block in sorted(self._csr_blocks.items())
            },
            "summaries": registry.publish_pickle(dict(self._summaries)),
            "edge_tokens": registry.publish_pickle(dict(self._edge_tokens)),
            "joints": registry.publish_pickle(dict(self._joints)),
            "trivial_sides": registry.publish_pickle(dict(self._trivial_sides)),
            "static_stats": registry.publish_pickle(dict(self._static_stats)),
            "truths": registry.publish_pickle(dict(self._truths)),
            "splits": registry.publish_pickle(dict(self._split_cache)),
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "VersionStore":
        """Attach a published store inside a pool worker (fork or spawn).

        CSR blocks become zero-copy views over the parent's segments;
        the segment handles are pinned on the store for the worker's
        lifetime (``_shm_keepalive``) — the owning registry, not the
        worker, unlinks them.
        """
        from .shm import attach_pickle

        keepalive: list = []
        graphs = attach_pickle(manifest["graphs"])
        store = cls(_PrebuiltHistory(graphs))
        store.identity = manifest.get("identity")
        for version, csr_manifest in manifest["csr"].items():
            store._csr_blocks[int(version)] = CSRGraph.from_shared(
                csr_manifest, keepalive
            )
        store._summaries.update(attach_pickle(manifest["summaries"]))
        store._edge_tokens.update(attach_pickle(manifest["edge_tokens"]))
        store._joints.update(attach_pickle(manifest["joints"]))
        store._trivial_sides.update(attach_pickle(manifest["trivial_sides"]))
        store._static_stats.update(attach_pickle(manifest["static_stats"]))
        store._truths.update(attach_pickle(manifest["truths"]))
        store._split_cache.update(attach_pickle(manifest["splits"]))
        store._shm_keepalive = keepalive
        return store

    # ------------------------------------------------------------------
    # Persistence (the pluggable MemoryBackend/DiskBackend layer)
    # ------------------------------------------------------------------
    def save(self, backend) -> object:
        """Persist the store's archive into *backend* (path or instance).

        Graphs are written as canonical sorted N-Triples (deterministic
        bytes), CSR blocks as flat int64 block files (the disk backend
        memory-maps them back), summaries / edge tokens / literal splits
        as pickles.  Everything a figure run needs is materialized
        before writing, so a reloaded store starts warm.
        """
        from ..io import ntriples
        from .persist import resolve_backend

        backend = resolve_backend(backend)
        backend.put_json(
            "store/identity", self.identity or {"versions": self.versions}
        )
        backend.put_json("store/versions", self.versions)
        for version in range(self.versions):
            graph = self.graph(version)
            backend.put_blob(
                f"graphs/{version}.nt",
                ntriples.dumps(graph, sort=True).encode("utf-8"),
            )
            block = self.csr_block(version)
            backend.put_blob(
                f"csr/{version}/nodes",
                pickle.dumps(block.nodes, protocol=pickle.HIGHEST_PROTOCOL),
            )
            backend.put_array(f"csr/{version}/offsets", block.out_offsets)
            backend.put_array(f"csr/{version}/predicates", block.out_predicates)
            backend.put_array(f"csr/{version}/objects", block.out_objects)
            self.summary(version)
            self.edge_tokens(version, "trivial")
            self.edge_tokens(version, "deblank")
        for key, payload in (
            ("artifacts/summaries", dict(self._summaries)),
            ("artifacts/edge_tokens", dict(self._edge_tokens)),
            ("artifacts/splits", dict(self._split_cache)),
        ):
            backend.put_blob(
                key, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            )
        backend.flush()
        return backend

    @classmethod
    def load(cls, backend, expect: dict | None = None, *,
             verify_checksums: bool = True) -> "VersionStore":
        """Reload a persisted store (fresh process, read-only backends OK).

        *expect* pins the archive identity (family/scale/seed/versions):
        a mismatch raises instead of silently aligning the wrong data.
        CSR blocks come back as read-only views over the backend's block
        storage (memory-mapped files for :class:`DiskBackend`).

        **Quarantine-and-rebuild:** derived artifacts (CSR blocks,
        summaries, edge tokens, literal splits) that fail checksum
        verification or unpickling are *skipped* — recorded on
        ``store.quarantined`` — and lazily rebuilt from the version
        graphs, which are the archive's source of truth.  A corrupt
        *graph* blob cannot be rebuilt and raises
        :class:`~repro.exceptions.CorruptStoreError`.
        """
        from ..io import ntriples
        from .persist import DiskBackend, resolve_backend

        if isinstance(backend, (str, os.PathLike)):
            backend = DiskBackend.open(backend, verify_checksums=verify_checksums)
        else:
            backend = resolve_backend(backend)
            if hasattr(backend, "verify_checksums"):
                backend.verify_checksums = verify_checksums
        identity = backend.get_json("store/identity") or {}
        versions = int(
            backend.get_json("store/versions") or identity.get("versions") or 0
        )
        if versions <= 0:
            raise ExperimentError(
                "the backend holds no persisted version store"
            )
        if expect is not None:
            mismatched = {
                key: (identity.get(key), value)
                for key, value in expect.items()
                if identity.get(key) != value
            }
            if mismatched:
                raise ExperimentError(
                    f"persisted store identity mismatch: {mismatched} "
                    "(archive value vs requested)"
                )
        graphs = []
        for version in range(versions):
            try:
                blob = backend.get_blob(f"graphs/{version}.nt")
            except CorruptStoreError as error:
                raise CorruptStoreError(
                    f"graphs/{version}.nt is corrupt and graphs are the "
                    f"archive's source of truth — nothing to rebuild from "
                    f"(re-save the store): {error}"
                ) from error
            if blob is None:
                raise ExperimentError(
                    f"persisted store is missing graphs/{version}.nt"
                )
            graphs.append(ntriples.loads(blob.decode("utf-8")))
        store = cls(_PrebuiltHistory(graphs))
        store.identity = identity or None
        store.backend = backend
        quarantined: list[dict] = []

        def salvage(description: str, rebuild_fn):
            # Derived artifacts are rebuildable from the graphs: corrupt
            # or unreadable entries are skipped (and recorded), never
            # fatal.  Unpickling hostile bytes can raise any of these.
            try:
                return rebuild_fn()
            except (CorruptStoreError, OSError, pickle.UnpicklingError,
                    EOFError, ValueError, TypeError, KeyError,
                    IndexError, AttributeError) as error:
                quarantined.append(
                    {"key": description, "reason": repr(error)}
                )
                return None

        for version in range(versions):
            def load_block(version=version):
                nodes_blob = backend.get_blob(f"csr/{version}/nodes")
                if nodes_blob is None:
                    return None
                return CSRGraph.from_parts(
                    pickle.loads(nodes_blob),
                    backend.get_array(f"csr/{version}/offsets"),
                    backend.get_array(f"csr/{version}/predicates"),
                    backend.get_array(f"csr/{version}/objects"),
                )

            block = salvage(f"csr/{version}", load_block)
            if block is not None:
                store._csr_blocks[version] = block
        for key, attribute in (
            ("artifacts/summaries", "_summaries"),
            ("artifacts/edge_tokens", "_edge_tokens"),
            ("artifacts/splits", "_split_cache"),
        ):
            def load_artifact(key=key):
                blob = backend.get_blob(key)
                return None if blob is None else pickle.loads(blob)

            payload = salvage(key, load_artifact)
            if payload is not None:
                getattr(store, attribute).update(payload)
        store.quarantined = quarantined
        return store

    # ------------------------------------------------------------------
    def put_report(self, key: str, report, backend=None) -> None:
        """Persist one serialized AlignmentReport under ``reports/<key>``.

        Stored as the report's canonical JSON bytes, so a reloaded
        report round-trips byte-identically.
        """
        from .persist import resolve_backend

        backend = resolve_backend(backend if backend is not None else self.backend)
        backend.put_blob(f"reports/{key}", report.to_json().encode("utf-8"))
        backend.flush()

    def get_report(self, key: str, backend=None):
        """Reload a persisted AlignmentReport (``None`` when absent)."""
        from ..align.report import AlignmentReport
        from .persist import resolve_backend

        backend = resolve_backend(backend if backend is not None else self.backend)
        blob = backend.get_blob(f"reports/{key}")
        if blob is None:
            return None
        return AlignmentReport.from_json(blob.decode("utf-8"))


class _PrebuiltHistory:
    """Generator stand-in for stores rebuilt from a manifest or archive.

    Wraps already-materialized version graphs with the surface the store
    uses (``graph``/``config.versions``).  Ground truth is deliberately
    absent: it must be prepared (and published) by the owning process.
    """

    def __init__(self, graphs: Sequence[TripleGraph]) -> None:
        self._graphs = list(graphs)
        self.config = SimpleNamespace(versions=len(self._graphs))

    def graph(self, index: int) -> TripleGraph:
        return self._graphs[index]

    def ground_truth(self, source: int, target: int):
        raise ExperimentError(
            "ground truth is not part of a published or persisted store; "
            "warm it via store.ground_truth(...) in the owning process "
            "before publishing"
        )


def _retag_blanks(
    triples: frozenset, tag: str, rewrite: Callable[[Hashable], Token]
) -> frozenset:
    """Rewrite every ``(tag, payload)`` token of a triple set via *rewrite*."""
    out = set()
    for triple in triples:
        out.add(
            tuple(
                rewrite(tok[1]) if tok[0] == tag else tok
                for tok in triple
            )
        )
    return frozenset(out)
