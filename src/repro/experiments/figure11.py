"""Figure 11 — additional aligned edges: Hybrid−Deblank and Overlap−Hybrid (EFO).

The paper highlights that Hybrid's and Overlap's improvements over
Deblank come mainly from URI-prefix migrations: the bulk rename between
versions 7 and 8, and the old-prefix URIs that disappear in version 3 and
reappear renamed in version 5.  The matrices therefore show the *absolute*
number of extra aligned edges, concentrated on version pairs that straddle
a rename event.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.matrices import VersionMatrix, difference_matrix
from ..evaluation.reporting import render_matrix
from .base import ExperimentResult
from .cells import method_counts_cell
from .parallel import run_store_cells
from .store import VersionStore

FIGURE = "Figure 11"
TITLE = "Hybrid vs Deblank and Overlap vs Hybrid (EFO): extra aligned edges"


def run(
    scale: float = 0.25,
    seed: int = 234,
    versions: int = 10,
    config: AlignConfig | None = None,
) -> ExperimentResult:
    config = config or AlignConfig()
    store = VersionStore.shared(
        "efo", scale=scale, seed=seed, versions=versions, backend=config.backend
    )
    store.prepare(
        summaries=True, tokens=("deblank",), csr=config.engine == "dense"
    )
    deblank_matrix = VersionMatrix(size=versions)
    hybrid_matrix = VersionMatrix(size=versions)
    overlap_matrix = VersionMatrix(size=versions)
    pairs = [
        (source, target)
        for source in range(versions)
        for target in range(source, versions)
    ]

    for (source, target), counts in zip(
        pairs,
        run_store_cells(
            store, method_counts_cell, pairs, jobs=config.jobs, config=config
        ),
    ):
        deblank_count, hybrid_count, overlap_count = counts
        for pair in ((source, target), (target, source)):
            deblank_matrix[pair] = deblank_count
            hybrid_matrix[pair] = hybrid_count
            overlap_matrix[pair] = overlap_count

    hybrid_gain = difference_matrix(hybrid_matrix, deblank_matrix)
    overlap_gain = difference_matrix(overlap_matrix, hybrid_matrix)
    rows = [
        {
            "source": source + 1,
            "target": target + 1,
            "deblank": deblank_matrix[(source, target)],
            "hybrid_gain": hybrid_gain[(source, target)],
            "overlap_gain": overlap_gain[(source, target)],
        }
        for source in range(versions)
        for target in range(versions)
    ]
    rendered = "\n".join(
        [
            "Hybrid − Deblank (extra aligned edges):",
            render_matrix(hybrid_gain, precision=0),
            "",
            "Overlap − Hybrid (extra aligned edges):",
            render_matrix(overlap_gain, precision=0),
        ]
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={
            "scale": scale, "seed": seed, "versions": versions,
            "theta": config.theta, "engine": config.engine,
        },
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: improvements concentrate on version pairs straddling a "
            "URI-prefix rename (v7↔v8 bulk rename; v1-2 ↔ v5+ vanish/reappear)",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    gains_ok = all(row["hybrid_gain"] >= 0 and row["overlap_gain"] >= 0 for row in result.rows)
    if not gains_ok:
        violations.append("a gain matrix has a negative cell (hierarchy violated)")

    def gain(row) -> float:
        return row["hybrid_gain"] + row["overlap_gain"]

    by_pair = {(row["source"], row["target"]): row for row in result.rows}
    versions = result.parameters["versions"]

    def straddles_rename(source: int, target: int) -> bool:
        lo, hi = min(source, target), max(source, target)
        bulk = lo <= 7 < hi          # the v7→v8 bulk rename
        vanish = lo <= 2 and hi >= 5  # old prefix v1-2 vs new prefix v5+
        return bulk or vanish

    straddling = [
        gain(row)
        for (source, target), row in by_pair.items()
        if source != target and straddles_rename(source, target)
    ]
    within = [
        gain(row)
        for (source, target), row in by_pair.items()
        if source != target and not straddles_rename(source, target)
    ]
    if straddling and within:
        mean_straddling = sum(straddling) / len(straddling)
        mean_within = sum(within) / len(within)
        if mean_straddling <= mean_within:
            violations.append(
                "rename-straddling pairs do not gain more than same-prefix pairs "
                f"({mean_straddling:.1f} ≤ {mean_within:.1f})"
            )
    return violations
