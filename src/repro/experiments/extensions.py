"""Extensions experiment — measurements beyond the paper's figures.

Quantifies the Section 5.1/6 extensions this reproduction implements:

* **predicate-aware refinement**: precision of predominantly-predicate
  URIs on a GtoPdb pair, before and after the refinement pass;
* **version archives**: compression and subject cohesion on the EFO-like
  and GtoPdb-like version sequences (the paper's closing question).
"""

from __future__ import annotations

from ..archive import VersionArchive
from ..core.hybrid import hybrid_partition
from ..datasets.efo import EFOGenerator
from ..datasets.gtopdb import GtoPdbGenerator
from ..evaluation.precision import classify_node
from ..evaluation.reporting import render_table
from ..partition.alignment import align
from ..partition.interner import ColorInterner
from ..partition.weighted import zero_weighted
from ..similarity.predicate_alignment import (
    predominantly_predicates,
    refine_predicates,
)
from .base import ExperimentResult

FIGURE = "Extensions"
TITLE = "Predicate-aware refinement and version archives (beyond the paper)"


def _predicate_precision(union, truth, partition) -> dict[str, int]:
    alignment = align(union, partition)
    counts = {"exact": 0, "inclusive": 0, "missing": 0, "false": 0}
    for node in predominantly_predicates(union):
        term = union.original(node)
        if union.side(node) == 1:
            partner_term = truth.partner_of_source(term)
            partner = (2, partner_term) if partner_term else None
        else:
            partner_term = truth.partner_of_target(term)
            partner = (1, partner_term) if partner_term else None
        counts[classify_node(alignment, node, partner)] += 1
    return counts


def run(scale: float = 0.4, seed: int = 2016, versions: int = 6) -> ExperimentResult:
    rows: list[dict] = []

    # ---- predicate-aware refinement on a GtoPdb pair --------------------
    generator = GtoPdbGenerator.shared(scale=scale, seed=seed, versions=versions)
    union, truth = generator.combined(0, 1)
    interner = ColorInterner()
    hybrid = hybrid_partition(union, interner)
    refined = refine_predicates(union, zero_weighted(hybrid), interner, theta=0.5)
    before = _predicate_precision(union, truth, hybrid)
    after = _predicate_precision(union, truth, refined.partition)
    rows.append({"experiment": "predicates", "stage": "hybrid", **before})
    rows.append({"experiment": "predicates", "stage": "predicate-aware", **after})

    # ---- version archives ------------------------------------------------
    for name, graphs in (
        ("efo", EFOGenerator.shared(scale=scale, versions=versions).graphs()),
        ("gtopdb", generator.graphs()),
    ):
        archive = VersionArchive.build(graphs)
        stats = archive.stats(graphs)
        rows.append(
            {
                "experiment": "archive",
                "dataset": name,
                "naive_triples": stats.naive_triples,
                "archived_triples": stats.archived_triples,
                "compression": round(stats.compression_ratio, 2),
                "subject_cohesion": round(stats.subject_cohesion, 3),
            }
        )

    predicate_rows = [r for r in rows if r["experiment"] == "predicates"]
    archive_rows = [r for r in rows if r["experiment"] == "archive"]
    rendered = "\n".join(
        [
            "Predicate precision (predominantly-predicate URIs):",
            render_table(
                ["stage", "exact", "inclusive", "missing", "false"],
                [
                    [r["stage"], r["exact"], r["inclusive"], r["missing"], r["false"]]
                    for r in predicate_rows
                ],
            ),
            "",
            "Version archives:",
            render_table(
                ["dataset", "naive", "archived", "compression", "subject cohesion"],
                [
                    [
                        r["dataset"],
                        r["naive_triples"],
                        r["archived_triples"],
                        r["compression"],
                        r["subject_cohesion"],
                    ]
                    for r in archive_rows
                ],
            ),
        ]
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={"scale": scale, "seed": seed, "versions": versions},
        rows=rows,
        rendered=rendered,
        notes=[
            "predicate-aware refinement implements the paper's §5.1 proposal",
            "archives implement the §6 closing question; subject cohesion "
            "confirms 'triples tend to enter and leave with their subject'",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    predicate_rows = {
        r["stage"]: r for r in result.rows if r["experiment"] == "predicates"
    }
    if predicate_rows["predicate-aware"]["exact"] <= predicate_rows["hybrid"]["exact"]:
        violations.append("predicate-aware pass does not improve exact matches")
    for row in (r for r in result.rows if r["experiment"] == "archive"):
        if row["compression"] <= 1.0:
            violations.append(f"archive of {row['dataset']} does not compress")
        if row["subject_cohesion"] <= 0.3:
            violations.append(
                f"subject cohesion of {row['dataset']} too low "
                f"({row['subject_cohesion']})"
            )
    return violations
