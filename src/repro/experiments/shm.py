"""Named shared-memory segments with guaranteed cleanup (POSIX shm).

The shared-memory parallel pool (:mod:`repro.experiments.parallel`)
publishes every per-version artifact of a
:class:`~repro.experiments.store.VersionStore` into named
``multiprocessing.shared_memory`` segments exactly once; workers attach
by *name*, so only a small picklable manifest ever crosses the process
boundary.  This module owns the two halves of that contract:

* :class:`ShmRegistry` — the **owner** side.  Every segment a registry
  creates is tracked until :meth:`ShmRegistry.unlink` destroys it; the
  registry is a context manager (unlink on success *and* exception) and
  doubles as an ``atexit`` safety net, so no run — not even one whose
  worker crashed mid-cell — leaks ``/dev/shm`` entries.
* :func:`attach_segment` / :func:`attach_bytes` — the **worker** side.
  Attaching deliberately bypasses Python's ``resource_tracker``
  (``track=False`` on 3.13+, the documented ``unregister`` workaround
  below): with tracking on, a worker that exits — cleanly or killed —
  would unlink segments the parent and its sibling workers still need
  (bpo-38119).  Workers only ever ``close()``; the owning registry is
  the single place segments are unlinked.

Segment names carry a recognizable prefix (:data:`SHM_PREFIX`) so tests
and CI can assert "no leaked segments" by listing ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import threading
from typing import Any, Iterable

try:  # pragma: no cover - platforms without POSIX shared memory
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: Every segment name starts with this marker (leak checks key on it).
SHM_PREFIX = "repro-shm"

#: Where POSIX named segments appear on Linux (the leak-check surface).
SHM_DIR = "/dev/shm"

_LOCK = threading.Lock()

#: Live registries; the atexit hook unlinks whatever they still own.
_LIVE_REGISTRIES: list["ShmRegistry"] = []


def shm_available() -> bool:
    """Can this platform create named shared-memory segments?"""
    return _shared_memory is not None


def _untracked_attach(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    The tracker's job is unlinking segments their *creator* leaked; an
    attaching process must never register the segment as its own, or the
    tracker unlinks it when that process exits (killing the views of
    every other attached process).  Python 3.13 exposes ``track=False``;
    older versions need the well-known ``unregister`` workaround.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Suppress the registration instead of unregistering afterwards:
        # fork workers share the parent's tracker process, so a child's
        # unregister would erase the *parent's* registration and a later
        # owner unlink would double-unregister (tracker KeyError noise).
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class ShmRegistry:
    """Owner of a set of named segments, with guaranteed unlink.

    Use as a context manager around anything that publishes segments::

        with ShmRegistry() as registry:
            manifest = store.publish_shared(registry)
            ...  # workers attach by the names in the manifest
        # segments are closed AND unlinked here, success or exception

    ``unlink()`` is idempotent and tolerant of segments the kernel has
    already dropped, so double cleanup (context exit + atexit) is safe.
    """

    def __init__(self, prefix: str = SHM_PREFIX) -> None:
        self.prefix = prefix
        self._segments: list = []
        self._counter = 0
        with _LOCK:
            _LIVE_REGISTRIES.append(self)

    # ------------------------------------------------------------------
    def _next_name(self) -> str:
        self._counter += 1
        return (
            f"{self.prefix}-{os.getpid()}-{self._counter}-"
            f"{secrets.token_hex(4)}"
        )

    def create(self, nbytes: int):
        """A fresh named segment of *nbytes* (> 0), tracked for unlink."""
        if _shared_memory is None:
            raise RuntimeError("shared memory is not available on this platform")
        # The registry IS the lifecycle guard the rule asks for: every
        # segment created here is tracked and unlinked by unlink().
        segment = _shared_memory.SharedMemory(  # reprolint: disable=unguarded-shm
            create=True, size=nbytes, name=self._next_name()
        )
        self._segments.append(segment)
        return segment

    def publish_bytes(self, payload: bytes) -> dict:
        """Copy *payload* into a named segment; returns its manifest.

        Zero-length payloads publish no segment (``name`` is ``None``) —
        ``SharedMemory`` refuses empty segments, and an empty buffer has
        nothing to share anyway.
        """
        if len(payload) == 0:
            return {"name": None, "nbytes": 0}
        segment = self.create(len(payload))
        segment.buf[: len(payload)] = payload
        return {"name": segment.name, "nbytes": len(payload)}

    def publish_pickle(self, value: Any) -> dict:
        """Pickle *value* into a named segment (one copy, N attachers)."""
        return self.publish_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def publish_array(self, buffer) -> dict:
        """Publish one flat int64 index array (``array``/ndarray/bytes).

        The manifest records the element count; attachers rebuild a
        zero-copy ``numpy`` view with :func:`attach_index_array`.
        """
        raw = bytes(memoryview(buffer).cast("B"))
        manifest = self.publish_bytes(raw)
        manifest["count"] = len(raw) // 8
        return manifest

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Drop this process's mappings (does not destroy the segments)."""
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - view pinned
                pass

    def unlink(self) -> None:
        """Close and destroy every owned segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already gone (e.g. a tracker beat us to it)
            except OSError:  # pragma: no cover - platform quirks
                pass
        with _LOCK:
            if self in _LIVE_REGISTRIES:
                _LIVE_REGISTRIES.remove(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


def cleanup_registries() -> int:
    """Unlink every segment still owned by a live registry; count them.

    The emergency path: the CLI's KeyboardInterrupt handler (and the
    ``atexit`` hook below) call this so an interrupted pooled run never
    leaves ``/dev/shm`` entries behind.  Unlinking is idempotent, so
    calling it while pools are also shutting down is safe.
    """
    with _LOCK:
        live = list(_LIVE_REGISTRIES)
    for registry in live:
        registry.unlink()
    return len(live)


@atexit.register
def _cleanup_registries() -> None:  # pragma: no cover - interpreter exit
    cleanup_registries()


# ----------------------------------------------------------------------
# Worker (attach) side
# ----------------------------------------------------------------------
def attach_segment(manifest: dict):
    """Attach to a published segment; ``None`` for empty manifests.

    The caller owns the returned handle's lifetime: keep it alive while
    any zero-copy view into its buffer exists, then ``close()`` it.
    """
    name = manifest.get("name")
    if name is None:
        return None
    if _shared_memory is None:
        raise RuntimeError("shared memory is not available on this platform")
    return _untracked_attach(name)


def attach_bytes(manifest: dict) -> bytes:
    """Copy a published payload out of its segment (and detach)."""
    segment = attach_segment(manifest)
    if segment is None:
        return b""
    try:
        return bytes(segment.buf[: manifest["nbytes"]])
    finally:
        segment.close()


def attach_pickle(manifest: dict) -> Any:
    """Unpickle a payload published with :meth:`ShmRegistry.publish_pickle`."""
    return pickle.loads(attach_bytes(manifest))


def attach_index_array(manifest: dict, keepalive: list):
    """A zero-copy read-only int64 view over a published index array.

    *keepalive* receives the segment handle — the view is only valid
    while that handle stays open, so the caller must retain the list
    for the view's lifetime.
    """
    import numpy

    segment = attach_segment(manifest)
    if segment is None:
        return numpy.empty(0, dtype=numpy.int64)
    keepalive.append(segment)
    view = numpy.frombuffer(
        segment.buf, dtype=numpy.int64, count=manifest["count"]
    )
    view.flags.writeable = False
    return view


# ----------------------------------------------------------------------
# Leak checking (tests / CI)
# ----------------------------------------------------------------------
def list_segments(prefix: str = SHM_PREFIX) -> list[str]:
    """Names of live named segments carrying *prefix* (Linux: /dev/shm)."""
    try:
        entries: Iterable[str] = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))
