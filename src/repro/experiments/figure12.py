"""Figure 12 — GtoPdb dataset versions: node and edge counts.

The relational exports have no blank nodes and slightly more literals than
URIs; edge counts grow roughly fourfold across the ten versions, with the
big insertion burst into version 4 (cf. Figure 13's discussion).
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.reporting import render_table
from .base import ExperimentResult
from .parallel import run_sharded
from .store import VersionStore

FIGURE = "Figure 12"
TITLE = "GtoPdb dataset versions (node/edge counts)"


def run(
    scale: float = 0.5, seed: int = 2016, versions: int = 10, config: AlignConfig | None = None
) -> ExperimentResult:
    store = VersionStore.shared("gtopdb", scale=scale, seed=seed, versions=versions)
    store.prepare()

    def version_row(index: int) -> dict:
        stats = store.graph(index).stats()
        return {
            "version": index + 1,
            "edges": stats.num_edges,
            "uris": stats.num_uris,
            "literals": stats.num_literals,
            "blanks": stats.num_blanks,
        }

    rows = run_sharded(version_row, range(versions), jobs=(config.jobs if config else 1))
    rendered = render_table(
        ["version", "edges", "uris", "literals", "blanks"],
        [
            [row["version"], row["edges"], row["uris"], row["literals"], row["blanks"]]
            for row in rows
        ],
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={"scale": scale, "seed": seed, "versions": versions},
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: no blank nodes; literals slightly outnumber URIs; edges grow ~4x",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    rows = result.rows
    for row in rows:
        if row["blanks"] != 0:
            violations.append(f"v{row['version']} has blank nodes in a relational export")
        if row["literals"] <= row["uris"]:
            violations.append(
                f"v{row['version']}: literals ({row['literals']}) do not outnumber "
                f"URIs ({row['uris']})"
            )
    if rows[-1]["edges"] < rows[0]["edges"] * 2:
        violations.append("edge counts do not grow substantially across versions")
    return violations
