"""One experiment module per paper figure (9-16) plus a CLI runner."""

from . import (
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from .base import ExperimentResult, assert_shape
from .parallel import run_sharded
from .runner import EXPERIMENTS, experiment_module, run_experiments
from .store import VersionStore

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "VersionStore",
    "assert_shape",
    "experiment_module",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "run_experiments",
    "run_sharded",
]
