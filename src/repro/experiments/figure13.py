"""Figure 13 — aligned node counts on consecutive GtoPdb pairs.

For every consecutive version pair the deduplicated aligned-node counts
of Hybrid and Overlap are compared with the ground truth (``GtoPdb``) and
the total node count.  The paper's observations: Overlap tracks the ground
truth much more closely than Hybrid; the Total−GtoPdb gap peaks between
versions 3 and 4 (the insertion burst) and nearly vanishes between 7 and 8
(the quiet release).
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.reporting import render_table
from .base import ExperimentResult
from .cells import entity_counts_cell
from .parallel import run_store_cells
from .store import VersionStore

FIGURE = "Figure 13"
TITLE = "Alignments (GtoPdb): aligned node counts on consecutive version pairs"


def run(
    scale: float = 0.5,
    seed: int = 2016,
    versions: int = 10,
    config: AlignConfig | None = None,
) -> ExperimentResult:
    config = config or AlignConfig()
    store = VersionStore.shared("gtopdb", scale=scale, seed=seed, versions=versions)
    store.prepare(summaries=True, csr=config.engine == "dense")
    # Ground truth is generator-derived, not part of a published store:
    # warm it here so pool workers find it in the shared manifest.
    for index in range(versions - 1):
        store.ground_truth(index, index + 1)

    rows = run_store_cells(
        store, entity_counts_cell, range(versions - 1),
        jobs=config.jobs, config=config,
    )
    rendered = render_table(
        ["pair", "Hybrid", "Overlap", "GtoPdb", "Total"],
        [
            [row["pair"], row["hybrid"], row["overlap"], row["gtopdb"], row["total"]]
            for row in rows
        ],
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={
            "scale": scale, "seed": seed, "versions": versions,
            "theta": config.theta, "engine": config.engine,
        },
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: Overlap is significantly closer to the ground truth than Hybrid",
            "paper: Total−GtoPdb gap peaks at 3->4 (insertions) and is minute at 7->8",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    rows = result.rows
    closer = sum(
        1
        for row in rows
        if abs(row["overlap"] - row["gtopdb"]) <= abs(row["hybrid"] - row["gtopdb"])
    )
    if closer < len(rows) * 0.75:
        violations.append(
            f"Overlap closer to ground truth on only {closer}/{len(rows)} pairs"
        )
    # Relative change between versions: the Total−GtoPdb gap normalized by
    # Total (absolute gaps grow with the dataset; the paper's v3→v4 burst is
    # the biggest *relative* change and v7→v8 the smallest).
    gaps = {
        row["pair"]: (row["total"] - row["gtopdb"]) / row["total"] for row in rows
    }
    burst_pair = "3->4"
    quiet_pair = "7->8"
    if burst_pair in gaps and gaps[burst_pair] != max(gaps.values()):
        violations.append("the relative change does not peak at the 3->4 burst")
    if quiet_pair in gaps and gaps[quiet_pair] != min(gaps.values()):
        violations.append("the relative change is not smallest at the quiet 7->8 pair")
    for row in rows:
        if row["gtopdb"] > row["total"]:
            violations.append(f"{row['pair']}: ground truth exceeds total nodes")
    return violations
