"""Run all (or selected) figure experiments and save their reports.

Usage from Python::

    from repro.experiments.runner import run_experiments
    results = run_experiments(["figure13"], scale=0.5, out_dir="results")

or from the command line: ``rdf-align experiment figure13 --scale 0.5``.
"""

from __future__ import annotations

from types import ModuleType
from typing import Any, Callable, Iterable

from ..align.config import AlignConfig
from ..exceptions import ExperimentError
from . import (
    extensions,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from .base import ExperimentResult

#: Registry: experiment name → module with run()/check_shape().
EXPERIMENTS: dict[str, ModuleType] = {
    "figure09": figure09,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
    "extensions": extensions,
}


def experiment_module(name: str) -> ModuleType:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None


#: Alignment settings that historically arrived as raw keyword arguments;
#: they are folded into the one :class:`AlignConfig` passed down.  The
#: probe rule is *not* here: it is part of a figure's identity (only
#: figure15 uses one, pinned to its recall-complete "safe" variant) and
#: keeps travelling as a per-figure parameter.
_CONFIG_KEYS = ("theta", "engine", "jobs", "backend")


def run_experiments(
    names: Iterable[str] | None = None,
    out_dir: str | None = None,
    check: bool = True,
    progress: Callable[[str], Any] | None = None,
    config: AlignConfig | None = None,
    **parameters: Any,
) -> dict[str, ExperimentResult]:
    """Run the named experiments (all by default).

    Alignment settings travel as one *config*
    (:class:`~repro.align.config.AlignConfig`): engine, theta, probe and
    ``jobs`` (``jobs=N`` shards each figure's independent cells over N
    worker processes, see :mod:`repro.experiments.parallel`; reports stay
    byte-identical to a serial run).  The historical raw keyword spellings
    (``theta=0.5``, ``engine="dense"``, ...) are still accepted and are
    folded into the config.  Remaining *parameters* — dataset settings
    like ``scale``/``seed`` — are forwarded to each experiment's ``run``
    (unknown keys filtered per experiment).  With ``check=True`` the
    shape checks run and their violations are appended to the result
    notes.
    """
    import inspect

    overrides = {
        key: parameters.pop(key) for key in _CONFIG_KEYS if key in parameters
    }
    if overrides:
        config = (config or AlignConfig()).evolve(**overrides)

    selected = list(names) if names else sorted(EXPERIMENTS)
    results: dict[str, ExperimentResult] = {}
    for name in selected:
        module = experiment_module(name)
        if progress is not None:
            progress(f"running {name} ...")
        signature = inspect.signature(module.run)
        accepted = {
            key: value
            for key, value in parameters.items()
            if key in signature.parameters
        }
        if config is not None and "config" in signature.parameters:
            accepted["config"] = config
        result = module.run(**accepted)
        if check:
            violations = module.check_shape(result)
            if violations:
                result.notes.append("SHAPE VIOLATIONS: " + "; ".join(violations))
            else:
                result.notes.append("shape check: OK")
        if out_dir is not None:
            result.save(out_dir)
        results[name] = result
    return results
