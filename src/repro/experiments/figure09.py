"""Figure 9 — EFO dataset versions: node and edge counts.

The paper reports, for ten EFO versions, the edge counts and the
literal/URI/blank node counts, observing that literals exceed 75 % of all
nodes, URIs sit near 10 % and blank nodes fluctuate between 7 % and 15 %
because of duplicated bisimilar blanks (normalized blank counts grow
steadily instead).
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..core.bisimulation import bisimulation_partition
from ..evaluation.reporting import render_table
from .base import ExperimentResult
from .parallel import run_sharded
from .store import VersionStore

FIGURE = "Figure 9"
TITLE = "EFO dataset versions (node/edge counts by kind)"


def run(
    scale: float = 0.5, seed: int = 234, versions: int = 10, config: AlignConfig | None = None
) -> ExperimentResult:
    store = VersionStore.shared("efo", scale=scale, seed=seed, versions=versions)
    store.prepare()

    def version_row(index: int) -> dict:
        graph = store.graph(index)
        stats = graph.stats()
        # Normalized blanks: distinct bisimulation classes of blank nodes
        # (the paper's de-duplicated count, which grows steadily).
        partition = bisimulation_partition(graph)
        normalized_blanks = len({partition[node] for node in graph.blanks()})
        return {
            "version": index + 1,
            "edges": stats.num_edges,
            "literals": stats.num_literals,
            "uris": stats.num_uris,
            "blanks": stats.num_blanks,
            "normalized_blanks": normalized_blanks,
            "literal_fraction": round(stats.num_literals / stats.num_nodes, 3),
            "blank_fraction": round(stats.num_blanks / stats.num_nodes, 3),
        }

    rows = run_sharded(version_row, range(versions), jobs=(config.jobs if config else 1))
    rendered = render_table(
        [
            "version",
            "edges",
            "literals",
            "uris",
            "blanks",
            "norm.blanks",
            "lit%",
            "blank%",
        ],
        [
            [
                row["version"],
                row["edges"],
                row["literals"],
                row["uris"],
                row["blanks"],
                row["normalized_blanks"],
                row["literal_fraction"],
                row["blank_fraction"],
            ]
            for row in rows
        ],
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={"scale": scale, "seed": seed, "versions": versions},
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: literals > 75% of nodes, URIs ~10%, blanks fluctuate 7-15%",
            "paper: normalized (bisimilar-deduplicated) blank counts grow steadily",
        ],
    )


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    rows = result.rows
    for row in rows:
        if row["literal_fraction"] <= 0.70:
            violations.append(
                f"v{row['version']}: literal fraction {row['literal_fraction']} ≤ 0.70"
            )
        if not 0.05 <= row["blank_fraction"] <= 0.20:
            violations.append(
                f"v{row['version']}: blank fraction {row['blank_fraction']} outside [0.05, 0.20]"
            )
    if rows[-1]["edges"] <= rows[0]["edges"]:
        violations.append("edge counts do not grow from v1 to v10")
    blank_fractions = [row["blank_fraction"] for row in rows]
    if max(blank_fractions) - min(blank_fractions) < 0.01:
        violations.append("blank fractions do not fluctuate")
    normalized = [row["normalized_blanks"] for row in rows]
    declines = sum(1 for a, b in zip(normalized, normalized[1:]) if b < a)
    if declines > len(normalized) // 3:
        violations.append("normalized blank counts do not grow steadily")
    return violations
