"""Figure 10 — Trivial and Deblank aligned-edge-ratio matrices (EFO).

For every pair of EFO versions the ratio of aligned edges to all distinct
edges is reported.  The paper's observations: the deblanking diagonal is
exactly 1 (self-alignment is complete) while the trivial diagonal is
"significantly worse because of the impact of blank nodes"; away from the
diagonal the ratio descends (older↔newer pairs share less), with an
exception around version 3 caused by blank-count fluctuations.
"""

from __future__ import annotations

from ..align.config import AlignConfig
from ..evaluation.matrices import VersionMatrix, gradient_violations
from ..evaluation.reporting import render_matrix
from .base import ExperimentResult
from .cells import edge_ratio_cell
from .parallel import run_store_cells
from .store import VersionStore

FIGURE = "Figure 10"
TITLE = "Trivial and Deblank alignments (EFO): aligned-edge ratios"


def run(
    scale: float = 0.35, seed: int = 234, versions: int = 10, config: AlignConfig | None = None
) -> ExperimentResult:
    store = VersionStore.shared(
        "efo", scale=scale, seed=seed, versions=versions,
        backend=config.backend if config else None,
    )
    # Once-per-version work up front: the cells below are pure set algebra
    # over these artifacts (no union graph, no node-level refinement).
    store.prepare(summaries=True, tokens=("trivial", "deblank"))
    pairs = [
        (source, target)
        for source in range(versions)
        for target in range(source, versions)
    ]

    trivial_matrix = VersionMatrix(size=versions)
    deblank_matrix = VersionMatrix(size=versions)
    for (source, target), (trivial_value, deblank_value) in zip(
        pairs,
        run_store_cells(
            store, edge_ratio_cell, pairs,
            jobs=(config.jobs if config else 1), config=config,
        ),
    ):
        for pair in ((source, target), (target, source)):
            trivial_matrix[pair] = trivial_value
            deblank_matrix[pair] = deblank_value
    rows = [
        {
            "source": source + 1,
            "target": target + 1,
            "trivial": round(trivial_matrix[(source, target)], 4),
            "deblank": round(deblank_matrix[(source, target)], 4),
        }
        for source in range(versions)
        for target in range(versions)
    ]
    rendered = "\n".join(
        [
            "Trivial aligned-edge ratio:",
            render_matrix(trivial_matrix),
            "",
            "Deblank aligned-edge ratio:",
            render_matrix(deblank_matrix),
        ]
    )
    return ExperimentResult(
        figure=FIGURE,
        title=TITLE,
        parameters={"scale": scale, "seed": seed, "versions": versions},
        rows=rows,
        rendered=rendered,
        notes=[
            "paper: Deblank diagonal = 1 (complete self-alignment);"
            " Trivial diagonal < 1 because blanks stay unaligned",
            "paper: ratios descend away from the diagonal",
        ],
    )


def _matrices_from_rows(result: ExperimentResult) -> tuple[VersionMatrix, VersionMatrix]:
    versions = result.parameters["versions"]
    trivial_matrix = VersionMatrix(size=versions)
    deblank_matrix = VersionMatrix(size=versions)
    for row in result.rows:
        pair = (row["source"] - 1, row["target"] - 1)
        trivial_matrix[pair] = row["trivial"]
        deblank_matrix[pair] = row["deblank"]
    return trivial_matrix, deblank_matrix


def check_shape(result: ExperimentResult) -> list[str]:
    violations: list[str] = []
    trivial_matrix, deblank_matrix = _matrices_from_rows(result)
    for index, value in enumerate(deblank_matrix.diagonal()):
        if value != 1.0:
            violations.append(f"deblank self-alignment of v{index + 1} is {value} ≠ 1")
    for index, value in enumerate(trivial_matrix.diagonal()):
        if value >= 1.0:
            violations.append(
                f"trivial self-alignment of v{index + 1} is complete; blanks should "
                "have kept it below 1"
            )
    for pair in deblank_matrix.values:
        if deblank_matrix[pair] + 1e-9 < trivial_matrix[pair]:
            violations.append(f"deblank below trivial at {pair}")
    # The descending gradient holds with few exceptions (paper allows
    # fluctuation-driven violations around version 3).
    total_off_diagonal = len(deblank_matrix.off_diagonal_pairs())
    bad = len(gradient_violations(deblank_matrix, tolerance=0.02))
    if bad > total_off_diagonal * 0.25:
        violations.append(
            f"descending gradient violated on {bad}/{total_off_diagonal} cells"
        )
    return violations
