"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """A structural problem with a triple graph (unknown node, bad edge...)."""


class RDFWellFormednessError(GraphError):
    """An operation would violate the RDF graph conventions of the paper.

    The conventions (paper Section 2.1): no two nodes of one RDF graph share
    a URI or literal label, literal labels occur only in object position and
    predicates are always URI-labeled.
    """


class ParseError(ReproError):
    """Raised by the N-Triples parser on malformed input."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class PartitionError(ReproError):
    """A partition is used with a graph it does not cover, or is malformed."""


class AlignmentError(ReproError):
    """An alignment query could not be answered (e.g. node on wrong side)."""


class SchemaError(ReproError):
    """A relational schema or instance violates its declared constraints."""


class ExperimentError(ReproError):
    """An experiment was configured with invalid parameters."""


# ----------------------------------------------------------------------
# Session API errors (repro.align)
# ----------------------------------------------------------------------
class AlignError(ReproError):
    """Base class for invalid input to the alignment session API.

    Everything a *caller* can get wrong when driving :mod:`repro.align` —
    a bad configuration value, an unregistered method, a malformed report
    payload — derives from this class, so ``except AlignError`` separates
    user mistakes from library bugs.
    """


class ConfigError(AlignError):
    """An :class:`repro.align.AlignConfig` field has an invalid value."""


class UnknownMethodError(ConfigError, ExperimentError):
    """The requested alignment method is not in the method registry.

    Also an :class:`ExperimentError`, because the legacy facade raised
    that type for unknown methods and callers may still catch it.
    """


class UnknownEngineError(ConfigError, ExperimentError):
    """The requested refinement engine does not exist.

    Also an :class:`ExperimentError` for backward compatibility with the
    pre-session error type of :func:`repro.core.dense.resolve_refine_engine`.
    """


class ThresholdError(ConfigError):
    """The similarity threshold ``theta`` is outside ``[0, 1]``."""


class ReportError(AlignError):
    """An alignment report payload does not match the declared schema."""
