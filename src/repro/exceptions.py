"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """A structural problem with a triple graph (unknown node, bad edge...)."""


class RDFWellFormednessError(GraphError):
    """An operation would violate the RDF graph conventions of the paper.

    The conventions (paper Section 2.1): no two nodes of one RDF graph share
    a URI or literal label, literal labels occur only in object position and
    predicates are always URI-labeled.
    """


class ParseError(ReproError):
    """Raised by the N-Triples parser on malformed input."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class PartitionError(ReproError):
    """A partition is used with a graph it does not cover, or is malformed."""


class SignatureCollisionError(PartitionError):
    """Two distinct refinement keys hashed to the same k-bisimulation signature.

    The hash-signature engine (:mod:`repro.core.ksignature`) replaces each
    round's structural recolor key by a 63-bit hash; a collision would
    silently merge unrelated classes, so every round cross-checks the
    signatures against full-width digests and raises this error instead of
    producing a corrupt partition.
    """


class AlignmentError(ReproError):
    """An alignment query could not be answered (e.g. node on wrong side)."""


class SchemaError(ReproError):
    """A relational schema or instance violates its declared constraints."""


class ExperimentError(ReproError):
    """An experiment was configured with invalid parameters."""


# ----------------------------------------------------------------------
# Session API errors (repro.align)
# ----------------------------------------------------------------------
class AlignError(ReproError):
    """Base class for invalid input to the alignment session API.

    Everything a *caller* can get wrong when driving :mod:`repro.align` —
    a bad configuration value, an unregistered method, a malformed report
    payload — derives from this class, so ``except AlignError`` separates
    user mistakes from library bugs.
    """


class ConfigError(AlignError):
    """An :class:`repro.align.AlignConfig` field has an invalid value."""


class UnknownMethodError(ConfigError, ExperimentError):
    """The requested alignment method is not in the method registry.

    Also an :class:`ExperimentError`, because the legacy facade raised
    that type for unknown methods and callers may still catch it.
    """


class UnknownEngineError(ConfigError, ExperimentError):
    """The requested refinement engine does not exist.

    Also an :class:`ExperimentError` for backward compatibility with the
    pre-session error type of :func:`repro.core.dense.resolve_refine_engine`.
    """


class ThresholdError(ConfigError):
    """The similarity threshold ``theta`` is outside ``[0, 1]``."""


class ReportError(AlignError):
    """An alignment report payload does not match the declared schema."""


# ----------------------------------------------------------------------
# Fault-tolerant execution (repro.robustness)
# ----------------------------------------------------------------------
class TransientError(AlignError):
    """A recoverable failure: retrying the operation may well succeed.

    Raised (or wrapped) by the execution layer for failures that are a
    property of the *run*, not the *input* — a transient I/O error from
    a persistence backend, a cell exceeding its timeout, a worker pool
    that failed to start.  The retry machinery in
    :mod:`repro.robustness.retry` catches exactly this class (plus raw
    ``OSError``), so anything that should be retried must derive from it.
    """


class WorkerCrashError(TransientError):
    """A pool worker died mid-cell (SIGKILL, OOM, hard crash).

    Transient by classification: the parent re-publishes the shared
    segments and re-runs only the lost cells (bounded by the retry
    budget), then degrades to serial in-process execution — the cell
    itself is deterministic, so the crash says nothing about the input.
    """


class CorruptStoreError(AlignError, ExperimentError):
    """Persisted store data failed verification (checksum/size mismatch).

    Raised by :class:`~repro.experiments.persist.DiskBackend` when a
    block's CRC32 or byte count disagrees with its manifest entry, and
    by :meth:`~repro.experiments.store.VersionStore.load` when a corrupt
    artifact cannot be rebuilt from source.  Also an
    :class:`ExperimentError` so pre-robustness callers that catch the
    store's legacy error type keep working.
    """
