"""Data model: labels, triple graphs, RDF graphs and disjoint unions."""

from .csr import CSRGraph, csr_snapshot
from .graph import Edge, GraphStats, NodeId, OutPair, TripleGraph
from .labels import (
    BLANK,
    BlankLabel,
    Label,
    Literal,
    NodeKind,
    URI,
    is_blank,
    is_literal,
    is_uri,
    label_sort_key,
)
from .namespaces import Namespace
from .rdf import BlankNode, RDFGraph, Term, blank, graph_from_triples, lit, uri
from .union import SOURCE, TARGET, CombinedGraph, combine, combine_many

__all__ = [
    "BLANK",
    "BlankLabel",
    "BlankNode",
    "CSRGraph",
    "CombinedGraph",
    "Edge",
    "GraphStats",
    "Label",
    "Literal",
    "Namespace",
    "NodeId",
    "NodeKind",
    "OutPair",
    "RDFGraph",
    "SOURCE",
    "TARGET",
    "Term",
    "TripleGraph",
    "URI",
    "blank",
    "combine",
    "combine_many",
    "csr_snapshot",
    "graph_from_triples",
    "is_blank",
    "is_literal",
    "is_uri",
    "label_sort_key",
    "lit",
    "uri",
]
