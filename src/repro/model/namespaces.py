"""Well-known RDF namespaces and a tiny namespace helper.

The generators and the direct-mapping exporter mint URIs inside namespaces;
:class:`Namespace` keeps that readable (``RDF.term("type")``) and the
constants below cover the vocabularies the paper's datasets use (RDF, RDFS,
OWL for EFO-like ontologies; SKOS/DCT for the DBpedia category subset; XSD
for typed literals from the relational export).
"""

from __future__ import annotations

from .labels import URI


class Namespace:
    """A URI prefix that mints terms: ``Namespace("http://x#")["type"]``."""

    __slots__ = ("_prefix",)

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def term(self, local_name: str) -> URI:
        """The URI ``prefix + local_name``."""
        return URI(self._prefix + local_name)

    def __getitem__(self, local_name: str) -> URI:
        return self.term(local_name)

    def __contains__(self, candidate: URI) -> bool:
        """Does *candidate* live inside this namespace?"""
        return candidate.value.startswith(self._prefix)

    def local_name(self, candidate: URI) -> str:
        """Strip the prefix from a URI of this namespace."""
        if candidate not in self:
            raise ValueError(f"{candidate!r} is not in namespace {self._prefix!r}")
        return candidate.value[len(self._prefix):]

    def __repr__(self) -> str:
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
DCT = Namespace("http://purl.org/dc/terms/")
OBO_OLD = Namespace("http://purl.org/obo/owl/")
OBO_NEW = Namespace("http://purl.obolibrary.org/obo/")

RDF_TYPE = RDF["type"]
RDFS_LABEL = RDFS["label"]
RDFS_SUBCLASS_OF = RDFS["subClassOf"]
RDFS_COMMENT = RDFS["comment"]
OWL_CLASS = OWL["Class"]
SKOS_BROADER = SKOS["broader"]
SKOS_PREF_LABEL = SKOS["prefLabel"]
DCT_SUBJECT = DCT["subject"]
XSD_INTEGER = XSD["integer"].value
XSD_DECIMAL = XSD["decimal"].value
XSD_STRING = XSD["string"].value
