"""Disjoint union of two graph versions (paper Sections 2.1 and 3).

All alignment methods operate on a single *combined graph*
``G = G1 ⊎ G2``: the disjoint union of the source version ``G1`` and the
target version ``G2``.  Because node identifiers are independent of labels,
the union can keep two nodes carrying the same URI label (one per version)
distinct — alignment is then precisely the question of which source node
corresponds to which target node.

:class:`CombinedGraph` tags every node with its side: node identifiers of
the union are ``(1, n)`` for ``n ∈ N1`` and ``(2, m)`` for ``m ∈ N2``.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..exceptions import AlignmentError
from .graph import NodeId, TripleGraph

#: Side markers for the two versions.
SOURCE = 1
TARGET = 2


class CombinedGraph(TripleGraph):
    """The disjoint union ``G1 ⊎ G2`` with side bookkeeping.

    >>> from repro.model.rdf import RDFGraph, uri, lit
    >>> g1, g2 = RDFGraph(), RDFGraph()
    >>> g1.add(uri("a"), uri("p"), lit("x"))
    >>> g2.add(uri("a"), uri("p"), lit("y"))
    >>> union = CombinedGraph(g1, g2)
    >>> union.num_nodes            # 3 + 3, nothing is conflated
    6
    """

    __slots__ = ("_source", "_target", "_source_nodes", "_target_nodes")

    def __init__(self, source: TripleGraph, target: TripleGraph) -> None:
        super().__init__()
        self._source = source
        self._target = target
        for node in source.nodes():
            self.add_node((SOURCE, node), source.label(node))
        for node in target.nodes():
            self.add_node((TARGET, node), target.label(node))
        for subject, predicate, obj in source.edges():
            self.add_edge((SOURCE, subject), (SOURCE, predicate), (SOURCE, obj))
        for subject, predicate, obj in target.edges():
            self.add_edge((TARGET, subject), (TARGET, predicate), (TARGET, obj))
        self._source_nodes = frozenset((SOURCE, n) for n in source.nodes())
        self._target_nodes = frozenset((TARGET, n) for n in target.nodes())

    # ------------------------------------------------------------------
    # Sides
    # ------------------------------------------------------------------
    @property
    def source(self) -> TripleGraph:
        """The original source graph ``G1``."""
        return self._source

    @property
    def target(self) -> TripleGraph:
        """The original target graph ``G2``."""
        return self._target

    @property
    def source_nodes(self) -> frozenset[NodeId]:
        """``N1`` as combined-graph node identifiers."""
        return self._source_nodes

    @property
    def target_nodes(self) -> frozenset[NodeId]:
        """``N2`` as combined-graph node identifiers."""
        return self._target_nodes

    def side(self, node: NodeId) -> int:
        """Which version a combined node comes from (:data:`SOURCE`/:data:`TARGET`)."""
        if node in self._source_nodes:
            return SOURCE
        if node in self._target_nodes:
            return TARGET
        raise AlignmentError(f"{node!r} is not a node of the combined graph")

    def original(self, node: NodeId) -> Hashable:
        """The node's identifier in its own version."""
        self.side(node)  # validates membership
        return node[1]  # type: ignore[index]

    def from_source(self, node: Hashable) -> NodeId:
        """Lift a source-version node identifier into the combined graph."""
        combined = (SOURCE, node)
        if combined not in self._source_nodes:
            raise AlignmentError(f"{node!r} is not a node of the source graph")
        return combined

    def from_target(self, node: Hashable) -> NodeId:
        """Lift a target-version node identifier into the combined graph."""
        combined = (TARGET, node)
        if combined not in self._target_nodes:
            raise AlignmentError(f"{node!r} is not a node of the target graph")
        return combined

    def side_nodes(self, side: int) -> frozenset[NodeId]:
        if side == SOURCE:
            return self._source_nodes
        if side == TARGET:
            return self._target_nodes
        raise AlignmentError(f"unknown side {side!r} (expected 1 or 2)")


def combine(source: TripleGraph, target: TripleGraph) -> CombinedGraph:
    """Build the disjoint union ``source ⊎ target``."""
    return CombinedGraph(source, target)


def combine_many(graphs: Iterable[TripleGraph]) -> list[CombinedGraph]:
    """Combine consecutive versions pairwise: ``[G1⊎G2, G2⊎G3, ...]``."""
    versions = list(graphs)
    return [CombinedGraph(a, b) for a, b in zip(versions, versions[1:])]
