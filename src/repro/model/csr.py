"""Compressed-sparse-row view of a triple graph (dense-engine substrate).

The reference refinement engine walks ``TripleGraph``'s per-node hash sets;
every recolor step pays Python dict/set overhead per out-pair.  Following
the flat-array representations of the large-graph bisimulation literature
(Schätzle et al. [16]; Rau et al., *Computing k-Bisimulations for Large
Graphs*; the I/O-efficient line of Hellings et al.), :class:`CSRGraph`
compacts a graph once into integer node ids with contiguous adjacency
arrays:

* ``nodes[i]`` — the original node identifier of dense id ``i``,
* ``out_offsets[i] : out_offsets[i+1]`` — the slice of ``out_predicates``
  / ``out_objects`` holding node ``i``'s outbound ``(p, o)`` pairs, both
  stored as dense node ids.

The per-round work of the dense engine (:mod:`repro.core.dense`) then
reduces to array indexing over these buffers — no hashing of node
identifiers, no per-node set objects.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Collection, Iterable, Mapping, Sequence

from ..exceptions import GraphError, PartitionError
from .graph import NodeId, TripleGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.shm import ShmRegistry

#: Typecode of the adjacency index arrays (signed 64-bit).
INDEX_TYPECODE = "q"


class CSRGraph:
    """An immutable CSR snapshot of a :class:`~repro.model.graph.TripleGraph`.

    Construction is O(|N| + |E|); the snapshot does not follow later
    mutations of the source graph.
    """

    __slots__ = ("nodes", "index", "out_offsets", "out_predicates", "out_objects")

    def __init__(self, graph: TripleGraph) -> None:
        #: Dense id -> original node identifier (graph iteration order).
        self.nodes: list[NodeId] = list(graph.nodes())
        #: Original node identifier -> dense id.
        self.index: dict[NodeId, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        index = self.index
        offsets = array(INDEX_TYPECODE, [0])
        predicates = array(INDEX_TYPECODE)
        objects = array(INDEX_TYPECODE)
        out_map = graph.out_index()
        empty: set = set()
        total = 0
        for node in self.nodes:
            pairs = out_map.get(node, empty)
            if pairs:
                predicates.extend([index[p] for p, _ in pairs])
                objects.extend([index[o] for _, o in pairs])
                total += len(pairs)
            offsets.append(total)
        #: ``out_offsets[i]:out_offsets[i+1]`` slices the pair arrays.
        self.out_offsets: array = offsets
        #: Dense predicate ids of every out-pair, grouped by subject.
        self.out_predicates: array = predicates
        #: Dense object ids of every out-pair, grouped by subject.
        self.out_objects: array = objects

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_pairs(self) -> int:
        """Total number of stored (subject, predicate, object) pairs."""
        return len(self.out_predicates)

    def dense_id(self, node: NodeId) -> int:
        """The dense id of *node* (raises :class:`GraphError` if unknown)."""
        try:
            return self.index[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not in the CSR snapshot") from None

    def dense_ids(self, nodes: Iterable[NodeId]) -> list[int]:
        """Dense ids of *nodes*, in iteration order."""
        index = self.index
        try:
            return [index[node] for node in nodes]
        except KeyError as exc:
            raise GraphError(
                f"node {exc.args[0]!r} is not in the CSR snapshot"
            ) from None

    def out_slice(self, dense: int) -> tuple[int, int]:
        """The ``[start, end)`` slice of the pair arrays for dense id *dense*."""
        return self.out_offsets[dense], self.out_offsets[dense + 1]

    def out_degree(self, dense: int) -> int:
        return self.out_offsets[dense + 1] - self.out_offsets[dense]

    # ------------------------------------------------------------------
    def gather_colors(
        self, colors: Mapping[NodeId, int], default: int | None = None
    ) -> list[int]:
        """Colors of every node in dense-id order.

        *colors* may be any mapping from original node id to int.  When a
        node is missing, *default* is used if given, otherwise a
        :class:`GraphError` is raised.
        """
        out: list[int] = []
        # A plain dict misses with KeyError, a Partition with PartitionError.
        for node in self.nodes:
            try:
                out.append(colors[node])
            except (LookupError, PartitionError):
                if default is None:
                    raise GraphError(
                        f"coloring does not cover node {node!r}"
                    ) from None
                out.append(default)
        return out

    def subgraph_pairs(
        self, dense_subset: Sequence[int]
    ) -> tuple[array, array, array]:
        """Restrict the pair arrays to the given subjects.

        Returns ``(offsets, predicates, objects)`` where ``offsets`` has
        ``len(dense_subset) + 1`` entries and ``offsets[k]:offsets[k+1]``
        slices the pairs of ``dense_subset[k]``.  Used by the dense engine
        to touch only the refined subset's edges each round.
        """
        if len(dense_subset) == self.num_nodes:
            # A sorted full subset is the identity restriction.
            return self.out_offsets, self.out_predicates, self.out_objects
        offsets = array(INDEX_TYPECODE, [0])
        predicates = array(INDEX_TYPECODE)
        objects = array(INDEX_TYPECODE)
        all_offsets = self.out_offsets
        total = 0
        for dense in dense_subset:
            start, end = all_offsets[dense], all_offsets[dense + 1]
            predicates.extend(self.out_predicates[start:end])
            objects.extend(self.out_objects[start:end])
            total += end - start
            offsets.append(total)
        return offsets, predicates, objects

    def __repr__(self) -> str:
        return f"<CSRGraph nodes={self.num_nodes} pairs={self.num_pairs}>"

    # ------------------------------------------------------------------
    # Assembly from pre-built parts (shared memory, disk persistence)
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        nodes: Sequence[NodeId],
        out_offsets: Sequence[int],
        out_predicates: Sequence[int],
        out_objects: Sequence[int],
    ) -> "CSRGraph":
        """Assemble a snapshot from its four buffers without re-walking.

        The index buffers may be ``array('q')`` instances or any int64
        sequence supporting the buffer protocol (NumPy views over shared
        memory, read-only memmaps); the engines consume them through
        ``frombuffer``/indexing either way.  ``index`` is rebuilt — it is
        derived state, never serialized.
        """
        snapshot = cls.__new__(cls)
        snapshot.nodes = list(nodes)
        snapshot.index = {node: i for i, node in enumerate(snapshot.nodes)}
        snapshot.out_offsets = out_offsets
        snapshot.out_predicates = out_predicates
        snapshot.out_objects = out_objects
        return snapshot

    def to_shared(self, registry: "ShmRegistry") -> dict:
        """Publish this snapshot into named shared-memory segments.

        The three index arrays go in raw (attachers map them back as
        zero-copy int64 views); the node table is pickled (Python
        objects cannot be shared structurally).  Returns a picklable
        manifest for :meth:`from_shared`; the *registry*
        (:class:`~repro.experiments.shm.ShmRegistry`) owns the segments
        and is responsible for unlinking them.
        """
        return {
            "nodes": registry.publish_pickle(self.nodes),
            "offsets": registry.publish_array(self.out_offsets),
            "predicates": registry.publish_array(self.out_predicates),
            "objects": registry.publish_array(self.out_objects),
        }

    @classmethod
    def from_shared(cls, manifest: dict, keepalive: list) -> "CSRGraph":
        """Attach a published snapshot as zero-copy read-only views.

        Bit-identical to the publishing snapshot (``to_shared`` /
        ``from_shared`` round-trips byte-for-byte, empty graphs and
        zero-length pair arrays included).  *keepalive* receives the
        segment handles; the snapshot is only valid while they stay
        open — the worker pool retains them for the worker's lifetime.
        """
        from ..experiments.shm import attach_index_array, attach_pickle

        return cls.from_parts(
            attach_pickle(manifest["nodes"]),
            attach_index_array(manifest["offsets"], keepalive),
            attach_index_array(manifest["predicates"], keepalive),
            attach_index_array(manifest["objects"], keepalive),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(cls, source: "CSRGraph", target: "CSRGraph") -> "CSRGraph":
        """Assemble the union snapshot from two per-version blocks.

        Given CSR snapshots of the two *plain* version graphs, build the
        snapshot of their disjoint union ``CombinedGraph(source, target)``
        without re-walking either graph: the union's node order is exactly
        "all source nodes, then all target nodes" (side-tagged), so the
        adjacency arrays are the source block followed by the target block
        with every dense id offset by ``source.num_nodes``.

        This is the batch-execution fast path (see
        :class:`repro.experiments.store.VersionStore`): each version's
        block is built once and shared by every matrix cell touching it.
        """
        from .union import SOURCE, TARGET  # late import: union is a sibling

        snapshot = cls.__new__(cls)
        offset = source.num_nodes
        nodes: list[NodeId] = [(SOURCE, node) for node in source.nodes]
        nodes.extend((TARGET, node) for node in target.nodes)
        snapshot.nodes = nodes
        snapshot.index = {node: i for i, node in enumerate(nodes)}
        offsets = array(INDEX_TYPECODE, source.out_offsets)
        base = source.out_offsets[-1]
        offsets.extend(base + v for v in target.out_offsets[1:])
        snapshot.out_offsets = offsets
        snapshot.out_predicates = _concat_shifted(
            source.out_predicates, target.out_predicates, offset
        )
        snapshot.out_objects = _concat_shifted(
            source.out_objects, target.out_objects, offset
        )
        return snapshot


def _concat_shifted(first: array, second: array, offset: int) -> array:
    """``first + (second + offset)`` on index arrays (NumPy when available)."""
    out = array(INDEX_TYPECODE, first)
    try:
        import numpy

        out.extend(
            array(
                INDEX_TYPECODE,
                (numpy.frombuffer(second, dtype=numpy.int64) + offset).tobytes(),
            )
        )
    except ImportError:
        out.extend(v + offset for v in second)
    return out


def csr_snapshot(graph: TripleGraph) -> CSRGraph:
    """Build a :class:`CSRGraph` snapshot of *graph*."""
    return CSRGraph(graph)


def subset_mask(csr: CSRGraph, subset: Collection[NodeId] | None) -> list[int]:
    """Dense ids of *subset* (all nodes when ``None``), in dense order.

    Dense order makes the engine's per-round iteration cache-friendly and
    its output independent of the caller's subset iteration order.
    """
    if subset is None:
        return list(range(csr.num_nodes))
    members = set(csr.dense_ids(subset))
    return sorted(members)
