"""Node labels for triple graphs.

The paper (Section 2.1) assumes a set of labels ``I = U ∪ L ∪ {⊥}``
consisting of URI labels ``U``, literal values ``L`` and one special *blank*
value used to label every blank node.  ``U`` and ``L`` are disjoint and
neither contains the blank value; this module encodes that structure in the
type system:

* :class:`URI` — a URI reference label,
* :class:`Literal` — a literal value (with optional language tag or
  datatype, mirroring real RDF literals),
* :data:`BLANK` — the unique blank label (an instance of
  :class:`BlankLabel`).

Labels are immutable value objects: two labels are equal iff they have the
same kind and the same content, regardless of identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union


class NodeKind(Enum):
    """The three kinds of nodes an RDF graph distinguishes."""

    URI = "uri"
    LITERAL = "literal"
    BLANK = "blank"


@dataclass(frozen=True, slots=True)
class URI:
    """A URI label.

    >>> URI("http://example.org/a") == URI("http://example.org/a")
    True
    """

    value: str

    @property
    def kind(self) -> NodeKind:
        return NodeKind.URI

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def sort_key(self) -> tuple[int, str, str, str]:
        """A total order over labels (URIs < literals < blank)."""
        return (0, self.value, "", "")


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal label: a string value plus optional language/datatype.

    The paper treats literals as opaque unique strings; we additionally keep
    the RDF language tag and datatype IRI so that N-Triples files round-trip
    faithfully.  Two literals are equal only if value, language and datatype
    all coincide, which preserves the paper's "no two nodes have the same
    literal label" invariant for real-world data.
    """

    value: str
    language: str | None = field(default=None)
    datatype: str | None = field(default=None)

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")

    @property
    def kind(self) -> NodeKind:
        return NodeKind.LITERAL

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        extras = ""
        if self.language is not None:
            extras = f", language={self.language!r}"
        elif self.datatype is not None:
            extras = f", datatype={self.datatype!r}"
        return f"Literal({self.value!r}{extras})"

    def sort_key(self) -> tuple[int, str, str, str]:
        return (1, self.value, self.language or "", self.datatype or "")


class BlankLabel:
    """The unique blank label ``⊥``.

    All blank nodes carry this same label; their identity is *not* given by
    the label (blank node identifiers are local to one graph version).  Use
    the module-level singleton :data:`BLANK`.
    """

    _instance: "BlankLabel | None" = None

    def __new__(cls) -> "BlankLabel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def kind(self) -> NodeKind:
        return NodeKind.BLANK

    def __str__(self) -> str:
        return "⊥"

    def __repr__(self) -> str:
        return "BLANK"

    def __hash__(self) -> int:
        return hash("repro.model.labels.BLANK")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankLabel)

    def sort_key(self) -> tuple[int, str, str, str]:
        return (2, "", "", "")


#: The singleton blank label shared by every blank node.
BLANK = BlankLabel()

#: Any node label.
Label = Union[URI, Literal, BlankLabel]


def is_uri(label: Label) -> bool:
    """Return ``True`` iff *label* is a URI label."""
    return isinstance(label, URI)


def is_literal(label: Label) -> bool:
    """Return ``True`` iff *label* is a literal label."""
    return isinstance(label, Literal)


def is_blank(label: Label) -> bool:
    """Return ``True`` iff *label* is the blank label."""
    return isinstance(label, BlankLabel)


def label_sort_key(label: Label) -> tuple[int, str, str, str]:
    """Deterministic total order on labels, for reproducible output."""
    return label.sort_key()
