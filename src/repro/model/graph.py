"""Triple graphs: the paper's core data model (Definition 1).

A *triple graph* is ``G = (N_G, E_G, ℓ_G)`` where ``N_G`` is a finite set of
node identifiers, ``E_G ⊆ N_G × N_G × N_G`` is a set of node triples
(subject, predicate, object) and ``ℓ_G`` labels every node with a URI, a
literal or the blank label.  Crucially, node identifiers are *independent of
labels*: two versions of an RDF graph may use the same URI label on
different node identifiers, which is what makes a disjoint union of the two
versions well defined (see :mod:`repro.model.union`).

The bisimulation machinery views a triple ``(s, p, o)`` as an unlabeled edge
from ``s`` to the pair ``(p, o)``; therefore the central accessor is
:meth:`TripleGraph.out`, the outbound neighborhood
``out_G(n) = {(p, o) | (n, p, o) ∈ E_G}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..exceptions import GraphError
from .labels import BLANK, Label, NodeKind, is_blank, is_literal, is_uri

#: Node identifiers may be any hashable value (ints for generated data,
#: strings or label objects for hand-built graphs).
NodeId = Hashable

#: An edge is a (subject, predicate, object) triple of node identifiers.
Edge = tuple[NodeId, NodeId, NodeId]

#: An outbound pair (predicate, object).
OutPair = tuple[NodeId, NodeId]

_EMPTY_OUT: frozenset[OutPair] = frozenset()


@dataclass(frozen=True, slots=True)
class GraphStats:
    """Node/edge counts of a triple graph, split by node kind."""

    num_nodes: int
    num_edges: int
    num_uris: int
    num_literals: int
    num_blanks: int

    def as_dict(self) -> dict[str, int]:
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "uris": self.num_uris,
            "literals": self.num_literals,
            "blanks": self.num_blanks,
        }


class TripleGraph:
    """A mutable triple graph ``G = (N_G, E_G, ℓ_G)``.

    The graph maintains the outbound-neighborhood index incrementally so
    that :meth:`out` is O(1), which the partition-refinement algorithms rely
    on.  A reverse *occurrence index* (node → nodes whose out-pairs mention
    it) is built lazily for the incremental refinement variant.
    """

    __slots__ = ("_labels", "_edges", "_out", "_occurrences")

    def __init__(self) -> None:
        self._labels: dict[NodeId, Label] = {}
        self._edges: set[Edge] = set()
        self._out: dict[NodeId, set[OutPair]] = {}
        self._occurrences: dict[NodeId, set[NodeId]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: Label) -> NodeId:
        """Add *node* with *label*; re-adding with the same label is a no-op.

        Raises :class:`GraphError` if the node exists with a different label
        (a node's label never changes).
        """
        existing = self._labels.get(node)
        if existing is None:
            self._labels[node] = label
        elif existing != label:
            raise GraphError(
                f"node {node!r} already has label {existing!r}; cannot relabel to {label!r}"
            )
        return node

    def add_edge(self, subject: NodeId, predicate: NodeId, obj: NodeId) -> None:
        """Add the triple ``(subject, predicate, obj)``.

        All three nodes must already exist.  Adding a duplicate edge is a
        no-op (``E_G`` is a set).
        """
        for role, node in (("subject", subject), ("predicate", predicate), ("object", obj)):
            if node not in self._labels:
                raise GraphError(f"{role} {node!r} of edge is not a node of the graph")
        edge = (subject, predicate, obj)
        if edge not in self._edges:
            self._edges.add(edge)
            self._out.setdefault(subject, set()).add((predicate, obj))
            self._occurrences = None  # invalidate the lazy reverse index

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add many triples at once."""
        for subject, predicate, obj in edges:
            self.add_edge(subject, predicate, obj)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node identifiers."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all (subject, predicate, object) triples."""
        return iter(self._edges)

    def has_edge(self, subject: NodeId, predicate: NodeId, obj: NodeId) -> bool:
        return (subject, predicate, obj) in self._edges

    def label(self, node: NodeId) -> Label:
        """Return ``ℓ_G(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def labels(self) -> Mapping[NodeId, Label]:
        """A read-only view of the labeling function ``ℓ_G``."""
        return self._labels

    def out(self, node: NodeId) -> frozenset[OutPair] | set[OutPair]:
        """The outbound neighborhood ``out_G(node)`` as a set of pairs."""
        if node not in self._labels:
            raise GraphError(f"unknown node {node!r}")
        return self._out.get(node, _EMPTY_OUT)

    def out_degree(self, node: NodeId) -> int:
        """``|out_G(node)|`` — the number of distinct (predicate, object) pairs."""
        return len(self.out(node))

    def out_index(self) -> Mapping[NodeId, set[OutPair]]:
        """The whole outbound index at once (treat as read-only).

        Bulk consumers (CSR compaction, inbound-index construction) use
        this to avoid a per-node :meth:`out` call; sinks may be absent.
        """
        return self._out

    # ------------------------------------------------------------------
    # Node subsets by kind (paper Section 2.1)
    # ------------------------------------------------------------------
    def kind(self, node: NodeId) -> NodeKind:
        return self.label(node).kind

    def uris(self) -> set[NodeId]:
        """``URIs(G)`` — nodes with a URI label."""
        return {n for n, lbl in self._labels.items() if is_uri(lbl)}

    def literals(self) -> set[NodeId]:
        """``Literals(G)`` — nodes with a literal label."""
        return {n for n, lbl in self._labels.items() if is_literal(lbl)}

    def blanks(self) -> set[NodeId]:
        """``Blanks(G)`` — nodes labeled with the blank label."""
        return {n for n, lbl in self._labels.items() if is_blank(lbl)}

    def is_literal_node(self, node: NodeId) -> bool:
        return is_literal(self.label(node))

    def is_blank_node(self, node: NodeId) -> bool:
        return is_blank(self.label(node))

    def is_uri_node(self, node: NodeId) -> bool:
        return is_uri(self.label(node))

    def stats(self) -> GraphStats:
        """Count nodes by kind (used by the dataset-statistics experiments)."""
        uris = literals = blanks = 0
        for lbl in self._labels.values():
            node_kind = lbl.kind
            if node_kind is NodeKind.URI:
                uris += 1
            elif node_kind is NodeKind.LITERAL:
                literals += 1
            else:
                blanks += 1
        return GraphStats(
            num_nodes=len(self._labels),
            num_edges=len(self._edges),
            num_uris=uris,
            num_literals=literals,
            num_blanks=blanks,
        )

    # ------------------------------------------------------------------
    # Reverse occurrence index (for incremental refinement)
    # ------------------------------------------------------------------
    def occurrences(self, node: NodeId) -> frozenset[NodeId]:
        """Nodes ``n`` whose outbound neighborhood mentions *node*.

        A node ``v`` occurs in ``out_G(n)`` if there is an edge
        ``(n, v, o)`` or ``(n, p, v)``.  When ``v``'s color changes during
        partition refinement, exactly the nodes returned here may need to be
        recolored — this is the worklist of the incremental algorithm.
        """
        return frozenset(self.occurrence_index().get(node, ()))

    def occurrence_index(self) -> Mapping[NodeId, set[NodeId]]:
        """The whole reverse index at once (treat as read-only).

        Bulk consumers (the maintenance closure BFS, the worklist loop of
        the incremental refinement) call this once instead of paying a
        frozenset copy per :meth:`occurrences` query; nodes that occur in
        no neighborhood are absent.
        """
        if self._occurrences is None:
            index: dict[NodeId, set[NodeId]] = {}
            for subject, predicate, obj in self._edges:
                index.setdefault(predicate, set()).add(subject)
                index.setdefault(obj, set()).add(subject)
            self._occurrences = index
        return self._occurrences

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "TripleGraph":
        """An independent deep-enough copy (labels/edges are immutable)."""
        clone = TripleGraph()
        clone._labels = dict(self._labels)
        clone._edges = set(self._edges)
        clone._out = {n: set(pairs) for n, pairs in self._out.items()}
        return clone

    def __repr__(self) -> str:
        return f"<{type(self).__name__} nodes={self.num_nodes} edges={self.num_edges}>"


def isomorphic_by_labels(first: TripleGraph, second: TripleGraph) -> bool:
    """Cheap label-level equality of two graphs.

    Returns ``True`` iff the multisets of node labels coincide and the edge
    sets coincide *after replacing non-blank nodes by their labels*.  Blank
    nodes are compared only by count, so this is a necessary (not
    sufficient) condition for isomorphism — sufficient whenever each graph
    is blank-free.  Used by I/O round-trip tests.
    """
    from collections import Counter

    if Counter(map(repr, first.labels().values())) != Counter(
        map(repr, second.labels().values())
    ):
        return False

    def edge_signature(graph: TripleGraph) -> Counter:
        def name(node: NodeId) -> str:
            lbl = graph.label(node)
            return "⊥" if is_blank(lbl) else repr(lbl)

        return Counter((name(s), name(p), name(o)) for s, p, o in graph.edges())

    return edge_signature(first) == edge_signature(second)
