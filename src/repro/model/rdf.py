"""RDF graphs: triple graphs obeying the RDF conventions.

The paper defines an RDF graph (one *version* of the evolving database) as a
triple graph in which

* no two nodes have the same URI label,
* no two nodes have the same literal label,
* literal labels occur only in object position, and
* predicates are URI-labeled (never blank, never literal).

:class:`RDFGraph` enforces these invariants *by construction*: URI and
literal nodes are keyed by their label (so the same URI can never create two
nodes), blank nodes are explicit :class:`BlankNode` handles with local
names, and :meth:`RDFGraph.add` validates positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from ..exceptions import RDFWellFormednessError
from .graph import NodeId, TripleGraph
from .labels import BLANK, Label, Literal, URI, is_blank


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node handle with a graph-local name.

    The *name* exists purely to distinguish blank nodes within a single
    version (like ``_:b1`` in N-Triples); it is **not** persistent across
    versions — which is exactly the problem the deblanking alignment solves.
    """

    name: str

    def __repr__(self) -> str:
        return f"_:{self.name}"


#: A term accepted by :meth:`RDFGraph.add`.
Term = Union[URI, Literal, BlankNode]


def uri(value: str) -> URI:
    """Convenience factory for a URI term."""
    return URI(value)


def lit(value: str, language: str | None = None, datatype: str | None = None) -> Literal:
    """Convenience factory for a literal term."""
    return Literal(value, language=language, datatype=datatype)


def blank(name: str) -> BlankNode:
    """Convenience factory for a blank node with local *name*."""
    return BlankNode(name)


class RDFGraph(TripleGraph):
    """A single version of an RDF database.

    Node identifiers are the terms themselves: a URI node's identifier is
    its :class:`~repro.model.labels.URI` label, a literal node's identifier
    is its :class:`~repro.model.labels.Literal` label and a blank node's
    identifier is its :class:`BlankNode` handle (labeled :data:`BLANK`).
    This gives label-uniqueness for free and keeps hand-written graphs
    readable.

    >>> g = RDFGraph()
    >>> g.add(uri("ss"), uri("address"), blank("b1"))
    >>> g.add(blank("b1"), uri("zip"), lit("EH8"))
    >>> sorted(g.triples())[0][0]
    _:b1
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def term(self, term: Term) -> NodeId:
        """Ensure *term* has a node in the graph and return its identifier."""
        if isinstance(term, BlankNode):
            return self.add_node(term, BLANK)
        if isinstance(term, (URI, Literal)):
            return self.add_node(term, term)
        raise RDFWellFormednessError(
            f"{term!r} is not an RDF term (expected URI, Literal or BlankNode)"
        )

    def add(self, subject: Term, predicate: Term, obj: Term) -> None:
        """Add the triple ``(subject, predicate, obj)``, validating positions.

        Raises :class:`RDFWellFormednessError` when a literal is used as
        subject or predicate, or a blank node as predicate.
        """
        if isinstance(subject, Literal):
            raise RDFWellFormednessError(f"literal {subject!r} cannot be a subject")
        if not isinstance(predicate, URI):
            raise RDFWellFormednessError(
                f"predicate must be a URI, got {predicate!r}"
            )
        self.add_edge(self.term(subject), self.term(predicate), self.term(obj))

    def add_all(self, triples: Iterable[tuple[Term, Term, Term]]) -> None:
        """Add many triples at once."""
        for subject, predicate, obj in triples:
            self.add(subject, predicate, obj)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def triples(self) -> Iterator[tuple[Term, Term, Term]]:
        """Iterate over triples as terms (node ids *are* terms here)."""
        return self.edges()  # type: ignore[return-value]

    def has_uri(self, value: str) -> bool:
        """Does the graph contain a node labeled with this URI?"""
        return URI(value) in self

    def validate(self) -> None:
        """Check all RDF well-formedness conditions, raising on violation.

        Construction via :meth:`add` already guarantees them; this is a
        belt-and-braces check for graphs built through the lower-level
        :class:`TripleGraph` API (e.g. by the N-Triples parser).
        """
        seen_labels: set[Label] = set()
        for node in self.nodes():
            label = self.label(node)
            if is_blank(label):
                continue
            if label in seen_labels:
                raise RDFWellFormednessError(f"duplicate non-blank label {label!r}")
            seen_labels.add(label)
        for subject, predicate, obj in self.edges():
            if isinstance(self.label(subject), Literal):
                raise RDFWellFormednessError(
                    f"literal {subject!r} used in subject position"
                )
            if not isinstance(self.label(predicate), URI):
                raise RDFWellFormednessError(
                    f"predicate {predicate!r} is not URI-labeled"
                )

    def copy(self) -> "RDFGraph":
        clone = RDFGraph()
        clone._labels = dict(self._labels)
        clone._edges = set(self._edges)
        clone._out = {n: set(pairs) for n, pairs in self._out.items()}
        return clone


def graph_from_triples(triples: Iterable[tuple[Term, Term, Term]]) -> RDFGraph:
    """Build an :class:`RDFGraph` from an iterable of term triples."""
    graph = RDFGraph()
    graph.add_all(triples)
    return graph
