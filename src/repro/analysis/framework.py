"""`reprolint` core: findings, checkers, suppressions, and the runner.

The dynamic verification layers built up by PRs 3-8 — the differential
oracle, the chaos job, the byte-identity benches — all catch invariant
violations *after* the code has run, minutes into a CI matrix.  This
package is the static half of that contract: a small framework over
Python's :mod:`ast` that encodes the same invariants as syntactic rules
and checks the whole tree in well under a second, so a diff that breaks
determinism or leaks a shared-memory segment fails before any oracle is
scheduled.

Architecture (mirrors the method registry of :mod:`repro.align`):

* :class:`Finding` — one rule violation at one source location, with a
  line-content fingerprint that survives unrelated line drift (the unit
  of the committed baseline, see :mod:`repro.analysis.baseline`).
* :class:`Checker` — one rule.  Subclasses declare ``rule`` and
  ``description``, implement :meth:`Checker.check` over a parsed
  :class:`ModuleInfo`, and register themselves with
  :func:`register_checker`; the CLI and the test suite discover rules
  only through the registry.
* suppressions — ``# reprolint: disable=<rule>[,<rule>...]`` on the
  offending line silences that line; ``# reprolint:
  disable-file=<rule>`` anywhere in a module silences the whole file.
  ``all`` is accepted as a rule name in both forms.  Suppressions are
  for *deliberate* exceptions (an oracle that must catch everything, the
  one module allowed to own raw segments); accidental violations are
  fixed, grandfathered ones go in the baseline.

Checkers are pure functions of the parsed module: no imports are
executed, so linting hostile or broken code is safe, and the whole run
is deterministic (files and findings are sorted).
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

#: Rule name accepted by suppressions to mean "every rule".
ALL_RULES = "all"

_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line the finding points at; the
    baseline keys on ``(rule, path, snippet, occurrence)`` rather than
    the line *number*, so unrelated edits above a grandfathered finding
    do not invalidate the baseline entry.  ``occurrence`` disambiguates
    identical snippets within one file (0-based, in line order).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str = ""
    occurrence: int = 0

    def fingerprint(self) -> str:
        """Stable identity of this finding for baseline matching."""
        payload = f"{self.rule}|{self.path}|{self.snippet}|{self.occurrence}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """The human one-liner: ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module, as seen by every checker.

    ``path`` is repository-relative with forward slashes (the stable
    spelling used in findings, baselines and suppress policies);
    ``tree`` is the parsed AST; ``lines`` the raw source lines (1-based
    access via :meth:`line`).
    """

    path: str
    text: str
    tree: ast.Module
    lines: tuple[str, ...]
    line_suppressions: dict[int, frozenset[str]]
    file_suppressions: frozenset[str]

    def line(self, number: int) -> str:
        """The stripped source text of 1-based line *number*."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1].strip()
        return ""

    def suppressed(self, rule: str, line: int) -> bool:
        """Is *rule* silenced at *line* (line or file scope)?"""
        for scope in (self.file_suppressions, self.line_suppressions.get(line, frozenset())):
            if rule in scope or ALL_RULES in scope:
                return True
        return False


def _parse_suppressions(
    lines: Sequence[str],
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    per_line: dict[int, frozenset[str]] = {}
    per_file: set[str] = set()
    for number, text in enumerate(lines, start=1):
        if "reprolint" not in text:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        if match.group("scope") == "disable-file":
            per_file |= rules
        else:
            per_line[number] = per_line.get(number, frozenset()) | rules
    return per_line, frozenset(per_file)


def parse_module(path: str, text: str) -> ModuleInfo:
    """Parse *text* into the :class:`ModuleInfo` every checker consumes.

    Raises :class:`SyntaxError` on unparseable source — the runner
    converts that into a ``syntax-error`` finding so a broken file fails
    the lint rather than silently skipping every rule.
    """
    tree = ast.parse(text, filename=path)
    lines = tuple(text.splitlines())
    line_suppressions, file_suppressions = _parse_suppressions(lines)
    return ModuleInfo(
        path=path,
        text=text,
        tree=tree,
        lines=lines,
        line_suppressions=line_suppressions,
        file_suppressions=file_suppressions,
    )


class Checker:
    """Base class of one `reprolint` rule.

    Subclasses set ``rule`` (the kebab-case identifier used by the CLI,
    suppressions and the baseline), ``description`` (one line for
    ``--list-rules`` and the docs), and implement :meth:`check`.
    ``applies_to`` scopes a rule to part of the tree (e.g. the strict
    typing gate only covers the strict module list).
    """

    rule: str = ""
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` for *node*, snippeted from its source line."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule,
            path=module.path,
            line=line,
            column=column,
            message=message,
            snippet=module.line(line),
        )


_REGISTRY: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: add a :class:`Checker` subclass to the registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} does not declare a rule name")
    if cls.rule in _REGISTRY and _REGISTRY[cls.rule] is not cls:
        raise ValueError(f"rule {cls.rule!r} is already registered")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_rules() -> dict[str, type[Checker]]:
    """``rule name -> checker class``, sorted by rule name."""
    _ensure_builtin_checkers()
    return dict(sorted(_REGISTRY.items()))


def _ensure_builtin_checkers() -> None:
    # Importing the checkers package registers every built-in rule; done
    # lazily so framework-level tests can run against a bare registry.
    from . import checkers  # noqa: F401


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class AnalysisResult:
    """Everything one lint run produced.

    ``findings`` are post-suppression; baseline bookkeeping happens one
    layer up (:func:`repro.analysis.baseline.apply_baseline`) so the
    result object stays a pure function of the tree.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rules: tuple[str, ...] = ()

    def by_rule(self) -> dict[str, list[Finding]]:
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule, []).append(finding)
        return grouped


def iter_python_files(root: str, targets: Sequence[str]) -> Iterator[str]:
    """Repo-relative paths of every ``.py`` file under *targets*, sorted."""
    seen: set[str] = set()
    for target in targets:
        absolute = os.path.join(root, target)
        if os.path.isfile(absolute):
            seen.add(os.path.relpath(absolute, root).replace(os.sep, "/"))
            continue
        for directory, _subdirs, files in os.walk(absolute):
            for name in files:
                if name.endswith(".py"):
                    path = os.path.join(directory, name)
                    seen.add(os.path.relpath(path, root).replace(os.sep, "/"))
    return iter(sorted(seen))


def _assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings that share (rule, path, snippet), in line order."""
    counters: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule)):
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        numbered.append(replace(finding, occurrence=occurrence))
    return numbered


def run_analysis(
    root: str,
    targets: Sequence[str],
    rules: Sequence[str] | None = None,
    reader: Callable[[str], str] | None = None,
) -> AnalysisResult:
    """Run the selected *rules* over every Python file under *targets*.

    *root* anchors the repo-relative paths findings are reported with;
    *reader* exists for tests (maps absolute path to source text).
    Unparseable files produce a ``syntax-error`` finding instead of
    aborting the run.
    """
    registry = registered_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        registry = {rule: registry[rule] for rule in rules}
    checkers = [cls() for cls in registry.values()]
    read = reader or _read_text
    result = AnalysisResult(rules=tuple(registry))
    raw: list[Finding] = []
    for path in iter_python_files(root, targets):
        result.files_checked += 1
        try:
            module = parse_module(path, read(os.path.join(root, path)))
        except SyntaxError as error:
            raw.append(Finding(
                rule="syntax-error",
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            ))
            continue
        for checker in checkers:
            if not checker.applies_to(path):
                continue
            for finding in checker.check(module):
                if module.suppressed(finding.rule, finding.line):
                    result.suppressed += 1
                else:
                    raw.append(finding)
    result.findings = _assign_occurrences(raw)
    return result


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
