"""`reprolint`: static analysis for the repro tree's hard-won invariants.

A pluggable checker framework over Python's :mod:`ast` (no imports of
the checked code are executed) with a rule registry, per-line and
per-file suppressions, a committed shrinking baseline, JSON and human
output, and two entry points — ``rdf-align lint`` and ``python -m
repro.analysis``.  The built-in rules encode what PRs 3-8 enforce
dynamically (determinism, pool-boundary picklability, shm lifecycle,
exception taxonomy, atomic writes, the strict-typing gate) so a
violating diff fails in milliseconds instead of minutes into the
oracle matrix.  Catalog and policy: ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .framework import (
    AnalysisResult,
    Checker,
    Finding,
    ModuleInfo,
    parse_module,
    register_checker,
    registered_rules,
    run_analysis,
)

__all__ = [
    "AnalysisResult",
    "Checker",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleInfo",
    "apply_baseline",
    "load_baseline",
    "parse_module",
    "register_checker",
    "registered_rules",
    "run_analysis",
    "save_baseline",
]
