"""``python -m repro.analysis`` — the standalone `reprolint` entry."""

from __future__ import annotations

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
