"""Committed baseline of grandfathered `reprolint` findings.

The baseline is the ratchet that lets a new rule land while old
violations still exist: findings whose fingerprint appears in the
committed baseline file do not fail the run, *new* findings always do,
and entries whose violation has been fixed are reported as **stale** so
the file only ever shrinks (``--update-baseline`` rewrites it to the
current state; CI fails if it could shrink but was not shrunk — see
``docs/static_analysis.md`` for the policy).

Fingerprints hash ``(rule, path, source line content, occurrence)``
rather than line numbers (see :meth:`Finding.fingerprint`), so editing
unrelated parts of a file neither masks a grandfathered finding nor
spuriously invalidates it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..exceptions import ReproError
from .framework import Finding

BASELINE_SCHEMA = "repro/reprolint-baseline"
BASELINE_VERSION = 1

#: Repo-relative path of the committed baseline file.
DEFAULT_BASELINE = "reprolint-baseline.json"


@dataclass
class BaselineDecision:
    """How one run's findings split against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[dict[str, object]] = field(default_factory=list)


def load_baseline(path: str | os.PathLike[str]) -> dict[str, dict[str, object]]:
    """``fingerprint -> entry`` from the committed baseline file.

    A missing file is an empty baseline; a malformed one is an error
    (a corrupt baseline must never silently admit findings).
    """
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ReproError(f"baseline {os.fspath(path)!r} is not JSON: {error}") from None
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"baseline {os.fspath(path)!r} does not carry schema {BASELINE_SCHEMA!r}"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ReproError(
            f"baseline {os.fspath(path)!r} has version {version!r}; "
            f"this build reads version {BASELINE_VERSION}"
        )
    findings = payload.get("findings")
    if not isinstance(findings, dict):
        raise ReproError(f"baseline {os.fspath(path)!r} has no findings table")
    return dict(findings)


def save_baseline(
    path: str | os.PathLike[str], findings: list[Finding]
) -> None:
    """Write the baseline for *findings* (atomic, deterministic bytes)."""
    from ..io.atomic import atomic_write_text

    table = {
        finding.fingerprint(): {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in findings
    }
    payload = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_VERSION,
        "findings": dict(sorted(table.items())),
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: list[Finding], baseline: dict[str, dict[str, object]]
) -> BaselineDecision:
    """Split *findings* into new vs. grandfathered, and report stale entries."""
    decision = BaselineDecision()
    matched: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline:
            matched.add(fingerprint)
            decision.baselined.append(finding)
        else:
            decision.new.append(finding)
    for fingerprint, entry in sorted(baseline.items()):
        if fingerprint not in matched:
            stale = dict(entry)
            stale["fingerprint"] = fingerprint
            decision.stale.append(stale)
    return decision
