"""Exception-taxonomy rules: failures stay typed, I/O stays retried.

PR 8's recovery machinery dispatches on exception *type*: transient
failures (:class:`~repro.exceptions.TransientError` + ``OSError``) are
retried, :class:`~repro.exceptions.WorkerCrashError` re-runs lost
cells, :class:`~repro.exceptions.CorruptStoreError` quarantines.  A
``except:`` or ``except Exception`` anywhere in the library erases
exactly the type information that machinery keys on — and hides
``KeyboardInterrupt``-adjacent control flow besides.  Deliberate
catch-alls (the differential oracle must convert *any* crash into a
reportable divergence) carry a line suppression; everything else
narrows to the taxonomy.

``raw-io`` scopes tighter: inside the persistence backend, file reads
go through the retry/fault-injection helper (``_read_file`` →
``call_with_retry``) so transient I/O and seeded faults behave
identically — a direct ``open()`` on a store path silently opts out of
both.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker
from ._util import enclosing_function, walk_with_parents

_BROAD = ("Exception", "BaseException")


def _broad_names(node: ast.expr | None) -> list[str]:
    """Broad exception names mentioned by an ``except`` clause type."""
    if node is None:
        return []
    names: list[str] = []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name) and element.id in _BROAD:
            names.append(element.id)
    return names


@register_checker
class BareExceptChecker(Checker):
    rule = "bare-except"
    description = "no `except:` clauses — name the failure you expect"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` swallows KeyboardInterrupt and erases "
                    "the failure type the recovery machinery dispatches "
                    "on; catch the ReproError taxonomy instead",
                )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler unconditionally end in a bare ``raise``?"""
    return bool(handler.body) and (
        isinstance(handler.body[-1], ast.Raise)
        and handler.body[-1].exc is None
    )


@register_checker
class BroadExceptChecker(Checker):
    rule = "broad-except"
    description = (
        "no `except Exception`/`BaseException` in library code — narrow "
        "to the AlignError/TransientError taxonomy (deliberate oracle "
        "catch-alls carry a suppression)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node):
                # Cleanup-and-reraise (`except BaseException: undo();
                # raise`) swallows nothing — the type information
                # survives untouched.
                continue
            for name in _broad_names(node.type):
                yield self.finding(
                    module,
                    node,
                    f"`except {name}` erases the typed failure contract "
                    "(TransientError is retried, WorkerCrashError "
                    "re-runs cells, CorruptStoreError quarantines); "
                    "catch the specific types",
                )


#: Modules whose file reads must ride the retry/fault-injection path.
_PERSIST_MODULES = ("experiments/persist.py", "experiments/store.py")

#: Functions allowed to touch files directly inside those modules: the
#: retry-wrapped reader itself, the atomic writer, and the manifest
#: bootstrap (which runs before any retry policy exists).
_ALLOWED_IO_HELPERS = {"_read_file", "_atomic_write", "_load_manifest", "read"}


@register_checker
class RawIOChecker(Checker):
    rule = "raw-io"
    description = (
        "persistence-backend file access goes through the retrying "
        "fault-injectable helpers (_read_file/call_with_retry), not "
        "direct open()"
    )

    def applies_to(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in _PERSIST_MODULES)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in walk_with_parents(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                continue
            function = enclosing_function(node)
            name = getattr(function, "name", "")
            if name in _ALLOWED_IO_HELPERS:
                continue
            yield self.finding(
                module,
                node,
                "direct open() in the persistence backend bypasses the "
                "retry + fault-injection read path; go through "
                "_read_file/call_with_retry (or suppress where raw bytes "
                "are the point, e.g. corruption scans)",
            )
