"""Shared AST helpers for the built-in checkers."""

from __future__ import annotations

import ast
from typing import Iterator


def walk_with_parents(tree: ast.Module) -> Iterator[ast.AST]:
    """``ast.walk`` that first stamps every node with ``._reprolint_parent``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, "_reprolint_parent", node)
    return ast.walk(tree)


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_reprolint_parent", None)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    """The dotted name a call targets (``""`` if not a name chain)."""
    return dotted_name(call.func)


def is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def module_level_callables(tree: ast.Module) -> set[str]:
    """Names bound at module level to defs or imports (pool-safe targets)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The nearest enclosing function/async-function def, if any."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parent_of(current)
    return None
