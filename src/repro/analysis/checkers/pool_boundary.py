"""Pool-boundary picklability: what may cross into a worker process.

The shared-memory pool of PR 7 ships its cell callable to the workers
*by reference* (module + qualified name) — the property that lets the
pool run under the ``spawn`` start method.  A lambda, a closure, or a
locally-defined function pickles either not at all (spawn) or by value
capturing parent state (fork), and the failure only shows up minutes
into a pooled run on the one platform whose default start method
differs.  This rule pins the contract at the call site: anything
submitted to ``run_store_cells`` / ``run_sharded`` /
``SharedStorePool.map{,_partial}`` / executor ``submit`` must resolve
to a module-level callable (the :mod:`repro.experiments.cells` idiom),
and nothing in ``initargs=`` may be a lambda.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker
from ._util import call_name, module_level_callables, walk_with_parents

#: ``call name -> index of the callable argument``.  ``run_sharded`` is
#: deliberately absent: it is the legacy fork-only path, and closures
#: are picklable-by-value under fork — only the shm pool (which must
#: also run under spawn) carries the by-reference contract.
_POOL_ENTRYPOINTS = {
    "run_store_cells": 1,
}

#: Attribute calls whose first argument crosses the process boundary.
_POOL_METHODS = {"map", "map_partial", "submit"}


class _Scope(ast.NodeVisitor):
    """Names bound to lambdas or nested defs inside one function."""

    def __init__(self) -> None:
        self.closure_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.closure_names.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.closure_names.add(node.name)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.closure_names.add(target.id)
        self.generic_visit(node)


@register_checker
class PoolCallableChecker(Checker):
    rule = "pool-callable"
    description = (
        "callables submitted to the shm worker pool (run_store_cells, "
        "SharedStorePool.map/map_partial, executor submit) must be "
        "module-level functions picklable by reference — no lambdas or "
        "closures (they break under the spawn start method)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        top_level = module_level_callables(module.tree)
        # Names bound to lambdas / nested defs anywhere in the module:
        # submitting one of these is a closure crossing the boundary.
        scope = _Scope()
        for statement in ast.walk(module.tree):
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in statement.body:
                    scope.visit(inner)
        closure_names = scope.closure_names - top_level

        for node in walk_with_parents(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            basename = dotted.split(".")[-1] if dotted else ""
            index: int | None = None
            if basename in _POOL_ENTRYPOINTS:
                index = _POOL_ENTRYPOINTS[basename]
            elif "." in dotted and basename in _POOL_METHODS:
                index = 0
            if index is not None and len(node.args) > index:
                yield from self._check_callable(module, node.args[index], closure_names)
            for keyword in node.keywords:
                if keyword.arg == "cell":
                    yield from self._check_callable(module, keyword.value, closure_names)
                if keyword.arg == "initargs":
                    for element in ast.walk(keyword.value):
                        if isinstance(element, ast.Lambda):
                            yield self.finding(
                                module,
                                element,
                                "lambda in initargs= cannot cross the "
                                "spawn boundary (initializer arguments "
                                "are pickled)",
                            )

    def _check_callable(
        self, module: ModuleInfo, node: ast.expr, closure_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Lambda):
            yield self.finding(
                module,
                node,
                "lambda submitted to a worker pool; pools ship callables "
                "by reference — define a module-level cell function "
                "(see repro/experiments/cells.py)",
            )
        elif isinstance(node, ast.Call) and call_name(node).endswith("partial"):
            yield self.finding(
                module,
                node,
                "functools.partial submitted to a worker pool; bind "
                "arguments through the (store, config, item) cell "
                "signature instead",
            )
        elif isinstance(node, ast.Name) and node.id in closure_names:
            yield self.finding(
                module,
                node,
                f"`{node.id}` is a nested function or lambda binding; "
                "pool callables must be module-level (picklable by "
                "reference under spawn)",
            )
