"""Determinism rules: the bit-identity invariant, statically.

The paper's acceptance criterion — and the differential oracle's — is
*byte-identical* output across engines, job counts, backends and fault
plans.  Three syntactic habits silently break it:

* iterating a ``set`` in an order-sensitive position (iteration order
  depends on ``PYTHONHASHSEED`` for strings; float accumulation order
  then changes the bits of a weight sum — the exact bug class fixed in
  :mod:`repro.similarity.dense_overlap`);
* drawing from process-global, unseeded RNGs (``random.shuffle``,
  ``numpy.random.*``) instead of a seeded ``random.Random(seed)`` /
  ``numpy.random.default_rng(seed)`` stream;
* reading the wall clock (``time.time``, ``datetime.now``) anywhere a
  result artifact is produced (``time.perf_counter`` for *measuring*
  durations is fine — it never enters report bytes).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker
from ._util import call_name, parent_of, walk_with_parents

#: Set operators whose results iterate in hash order.
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Builtins that consume an iterable order-insensitively.
_ORDER_OK_CONSUMERS = {
    "sorted", "set", "frozenset", "min", "max", "any", "all", "len",
}


def _is_unordered(node: ast.expr) -> bool:
    """Is *node* statically recognizable as a set-valued expression?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        # `a.keys() & b.keys()`, `graph.literals() | graph.uris()`,
        # `predicates & nodes` — the set-algebra idioms of this codebase.
        # (A 3.9+ dict-union iterates in insertion order; spell it
        # `{**a, **b}` or suppress if that is really what you meant.)
        return True
    return False


def _consumed_unordered(node: ast.expr) -> bool:
    """True when iteration order of *node* can leak into results."""
    parent = parent_of(node)
    if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
        return True
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        owner = parent_of(parent)
        if isinstance(owner, ast.SetComp):
            return False  # set -> set: no order survives
        if isinstance(owner, ast.GeneratorExp):
            consumer = parent_of(owner)
            if (
                isinstance(consumer, ast.Call)
                and call_name(consumer) in _ORDER_OK_CONSUMERS
            ):
                return False
        return True
    if isinstance(parent, ast.Call) and node in parent.args:
        return call_name(parent) in ("list", "tuple", "enumerate")
    return False


@register_checker
class UnorderedIterationChecker(Checker):
    rule = "unordered-iteration"
    description = (
        "set-valued expressions (set literals, set()/frozenset(), "
        "`.keys() | .keys()`-style set algebra) must pass through "
        "sorted() before any order-sensitive iteration"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in walk_with_parents(module.tree):
            if not isinstance(node, ast.expr):
                continue
            if _is_unordered(node) and _consumed_unordered(node):
                yield self.finding(
                    module,
                    node,
                    "iteration over an unordered set expression; wrap it "
                    "in sorted() (hash-seed-dependent order leaks into "
                    "results)",
                )


def _import_aliases(tree: ast.Module, target: str) -> set[str]:
    """Module-level aliases of ``import <target>`` (including submodules)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target or alias.name.startswith(target + "."):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


@register_checker
class UnseededRandomChecker(Checker):
    rule = "unseeded-random"
    description = (
        "no process-global RNG draws: construct a seeded random.Random "
        "or numpy.random.default_rng(seed) stream instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        random_aliases = _import_aliases(module.tree, "random")
        numpy_aliases = _import_aliases(module.tree, "numpy")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"`from random import {alias.name}` binds a "
                            "module-global RNG draw; use a seeded "
                            "random.Random(seed) instance",
                        )
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] in random_aliases:
                if parts[1] not in ("Random",):
                    yield self.finding(
                        module,
                        node,
                        f"`{dotted}()` draws from the process-global RNG; "
                        "use a seeded random.Random(seed) stream",
                    )
            if len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random":
                if parts[2] == "default_rng" and (node.args or node.keywords):
                    continue  # seeded generator construction is the fix
                yield self.finding(
                    module,
                    node,
                    f"`{dotted}()` uses numpy's global (or unseeded) RNG; "
                    "use numpy.random.default_rng(seed)",
                )


#: Exact wall-clock reads (module-qualified).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime", "time.gmtime",
}


@register_checker
class WallClockChecker(Checker):
    rule = "wall-clock"
    description = (
        "no wall-clock reads (time.time, datetime.now) on result paths; "
        "time.perf_counter is fine for measuring durations"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            if not dotted:
                continue
            parts = dotted.split(".")
            if dotted in _WALL_CLOCK or (
                parts[-1] in ("now", "utcnow", "today")
                and any(part in ("datetime", "date") for part in parts[:-1])
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{dotted}()` reads the wall clock; results must not "
                    "depend on when they were computed (use "
                    "time.perf_counter for durations)",
                )
