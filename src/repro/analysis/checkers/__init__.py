"""Built-in `reprolint` rules (importing this package registers them).

One module per invariant family; see ``docs/static_analysis.md`` for
the catalog, the invariant each rule protects, and the PR that bled for
it.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for their registration side effect)
    atomic_write,
    determinism,
    exception_taxonomy,
    pool_boundary,
    shm_lifecycle,
    typing_gate,
)
