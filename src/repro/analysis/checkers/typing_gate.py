"""Strict-typing gate: full signature annotations on the strict set.

The mypy ratchet in ``pyproject.toml`` runs ``--strict`` over the
modules listed there — but mypy is a CI-side dependency, and a diff
should not need a network round-trip to learn it dropped an
annotation.  This rule enforces the *load-bearing prefix* of strict
mode locally and in milliseconds: every function in a strict-listed
module must annotate its return type and every parameter (``self``/
``cls`` excepted).  Fully-annotated signatures are exactly what makes
``disallow_untyped_defs``/``disallow_incomplete_defs`` pass and stops
mypy's implicit-``Any`` leak at module boundaries; the body-level
checks remain mypy's job in the CI ``static-analysis`` job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker

#: Path prefixes held to the strict gate (mirrors the mypy ratchet
#: table in pyproject.toml — keep the two lists in sync).
STRICT_PREFIXES = (
    "src/repro/core/",
    "src/repro/model/",
    "src/repro/align/",
    "src/repro/robustness/",
    "src/repro/analysis/",
    "src/repro/io/atomic.py",
    "src/repro/exceptions.py",
    "src/repro/benchlog.py",
)


@register_checker
class AnnotationsChecker(Checker):
    rule = "missing-annotations"
    description = (
        "strict-listed modules fully annotate every function signature "
        "(the local, instant prefix of the CI mypy --strict gate)"
    )

    def applies_to(self, path: str) -> bool:
        return any(
            path.startswith(prefix) or path.endswith(prefix)
            for prefix in STRICT_PREFIXES
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing: list[str] = []
            arguments = node.args
            positional = arguments.posonlyargs + arguments.args
            for offset, argument in enumerate(positional):
                if offset == 0 and argument.arg in ("self", "cls"):
                    continue
                if argument.annotation is None:
                    missing.append(argument.arg)
            for argument in arguments.kwonlyargs:
                if argument.annotation is None:
                    missing.append(argument.arg)
            for star in (arguments.vararg, arguments.kwarg):
                if star is not None and star.annotation is None:
                    missing.append(star.arg)
            needs_return = node.returns is None and node.name != "__init__"
            if not missing and not needs_return:
                continue
            parts: list[str] = []
            if missing:
                parts.append(f"unannotated parameter(s) {', '.join(missing)}")
            if needs_return:
                parts.append("no return annotation")
            yield self.finding(
                module,
                node,
                f"def {node.name}: " + " and ".join(parts) + " — strict "
                "modules must carry full signatures (mypy --strict "
                "ratchet)",
            )
