"""Shared-memory lifecycle: every named segment must have an owner.

A leaked ``/dev/shm`` segment survives the process that created it —
the failure the PR 7 pool design spent an entire registry
(:class:`repro.experiments.shm.ShmRegistry`) preventing, and the one
the CI leak checks grep ``/dev/shm`` for after the fact.  Statically:

* raw ``SharedMemory(create=True)`` allocations are forbidden outside
  the registry module — allocate through ``ShmRegistry.create`` so the
  unlink guarantee (context exit + atexit net) applies;
* a ``ShmRegistry()`` must be constructed as a ``with`` context, be
  stored on an object attribute (an owner whose ``close`` path unlinks
  it), or live in a function that visibly calls ``.unlink()`` in a
  ``finally``/handler — a registry bound to a local with no unwind
  path is a leak waiting for the first exception;
* ``publish_shared(...)`` / ``to_shared(...)`` must be handed a live
  registry — never called bare, never handed an inline
  ``ShmRegistry()`` nobody retains a handle to.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker
from ._util import call_name, enclosing_function, parent_of, walk_with_parents

_PUBLISHERS = ("publish_shared", "to_shared")


def _has_unwind(function: ast.AST | None, name: str) -> bool:
    """Does the enclosing function unlink *name* on an unwind path?"""
    if function is None:
        return False
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            handlers: list[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                handlers.extend(handler.body)
            for statement in handlers:
                for call in ast.walk(statement):
                    if isinstance(call, ast.Call):
                        dotted = call_name(call)
                        if dotted == f"{name}.unlink" or dotted.endswith(
                            "cleanup_registries"
                        ):
                            return True
    return False


@register_checker
class ShmLifecycleChecker(Checker):
    rule = "unguarded-shm"
    description = (
        "shared-memory allocations must be owned: ShmRegistry as a "
        "context manager / attribute / try-finally unlink; no raw "
        "SharedMemory(create=True) outside the registry module"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in walk_with_parents(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            basename = dotted.split(".")[-1] if dotted else ""
            if basename == "SharedMemory":
                if any(
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        "raw SharedMemory(create=True); allocate through "
                        "ShmRegistry.create so the segment is unlinked on "
                        "success, exception and interpreter exit alike",
                    )
            elif basename == "ShmRegistry":
                yield from self._check_registry(module, node)
            elif basename in _PUBLISHERS and "." in dotted:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{basename}() called without a registry; publish "
                        "into a ShmRegistry whose owner guarantees unlink",
                    )
                elif node.args and isinstance(node.args[0], ast.Call) and (
                    call_name(node.args[0]).split(".")[-1] == "ShmRegistry"
                ):
                    yield self.finding(
                        module,
                        node,
                        "inline ShmRegistry() handed to a publisher is "
                        "unowned — nothing can unlink its segments; bind "
                        "it in a with-statement first",
                    )

    def _check_registry(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        parent = parent_of(node)
        if isinstance(parent, ast.withitem):
            return  # `with ShmRegistry() as r:` — unlink on exit
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if any(isinstance(target, ast.Attribute) for target in targets):
                return  # owned by an object whose close path unlinks
            local = next(
                (t.id for t in targets if isinstance(t, ast.Name)), None
            )
            if local is not None and _has_unwind(enclosing_function(node), local):
                return
        elif isinstance(parent, ast.Call) and node in parent.args:
            # Inline argument: the publisher branch above reports it with
            # a sharper message; don't double-report here.
            basename = call_name(parent).split(".")[-1]
            if basename in _PUBLISHERS:
                return
        yield self.finding(
            module,
            node,
            "ShmRegistry() without a visible unlink path; use "
            "`with ShmRegistry() as registry:` (or store it on the "
            "owning object and unlink in its close path)",
        )
