"""Atomic-write discipline: no torn artifacts, anywhere.

PR 8's chaos job proved the failure mode: a process killed mid-write
leaves a truncated manifest/report behind a valid-looking path, and the
next reader fails (or worse, half-succeeds) far from the cause.  The
fix — temp file + fsync + ``os.replace`` + directory fsync — lives in
exactly one place, :mod:`repro.io.atomic`; this rule forbids every
other write-mode ``open()`` in ``src/repro`` so store blocks,
manifests, reports, figure renderings and bench logs all inherit the
crash-safety guarantee by construction.  Appends cannot be atomic:
read-modify-rewrite through the helper instead (see
:mod:`repro.benchlog`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Checker, Finding, ModuleInfo, register_checker

#: The one module allowed to open files for writing.
_BLESSED_MODULE = "io/atomic.py"

_WRITE_MODES = set("wax")


def _write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open`` call, if it writes."""
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if _WRITE_MODES & set(mode_node.value):
            return mode_node.value
    return None


@register_checker
class AtomicWriteChecker(Checker):
    rule = "non-atomic-write"
    description = (
        "all file writes go through repro.io.atomic (temp + fsync + "
        "rename); a crash mid-write must never leave a torn artifact"
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith(_BLESSED_MODULE)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                continue
            mode = _write_mode(node)
            if mode is None:
                continue
            yield self.finding(
                module,
                node,
                f"open(..., {mode!r}) writes in place; use "
                "repro.io.atomic (atomic_write_text/bytes or "
                "atomic_open) so a crash mid-write cannot leave a "
                "truncated artifact",
            )
