"""`reprolint` command line: ``rdf-align lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean (baselined findings allowed), 1 on any new finding
or stale baseline entry, 2 on usage errors.  ``--json`` emits the full
machine-readable result (the CI artifact); the human rendering groups
findings by rule with the grandfathered/stale bookkeeping at the end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .framework import AnalysisResult, Finding, registered_rules, run_analysis

#: What `rdf-align lint` checks when no paths are given.
DEFAULT_TARGETS = ("src/repro",)


def build_parser(prog: str = "reprolint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based invariant checks for the repro tree: determinism, "
            "pool-boundary picklability, shm lifecycle, exception "
            "taxonomy, atomic writes, strict-typing gate"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable result on stdout (CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their descriptions and exit",
    )
    return parser


def _render_human(
    result: AnalysisResult,
    new: list[Finding],
    baselined: list[Finding],
    stale: list[dict[str, object]],
) -> str:
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
    summary = (
        f"reprolint: {result.files_checked} files, "
        f"{len(result.rules)} rules, {len(new)} finding(s)"
    )
    extras: list[str] = []
    if baselined:
        extras.append(f"{len(baselined)} grandfathered (baseline)")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.get('fingerprint')}: "
            f"{entry.get('rule')} at {entry.get('path')} is fixed — "
            "shrink the baseline (rerun with --update-baseline)"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, cls in registered_rules().items():
            print(f"{rule}: {cls.description}")
        return 0

    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
    targets = args.paths or list(DEFAULT_TARGETS)
    try:
        result = run_analysis(args.root, targets, rules=rules)
    except ValueError as error:
        parser.error(str(error))

    baseline_path = os.path.join(args.root, args.baseline)
    if args.update_baseline:
        save_baseline(baseline_path, result.findings)
        print(
            f"baseline updated: {len(result.findings)} grandfathered "
            f"finding(s) in {args.baseline}"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    decision = apply_baseline(result.findings, baseline)

    if args.as_json:
        payload = {
            "schema": "repro/reprolint-report",
            "version": 1,
            "files_checked": result.files_checked,
            "rules": list(result.rules),
            "suppressed": result.suppressed,
            "findings": [finding.to_dict() for finding in decision.new],
            "baselined": [finding.to_dict() for finding in decision.baselined],
            "stale_baseline": decision.stale,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            _render_human(result, decision.new, decision.baselined, decision.stale)
        )
    return 1 if decision.new or decision.stale else 0
