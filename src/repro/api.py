"""Legacy facade: align two RDF graph versions in one call.

.. deprecated::
    This module is a thin backward-compatible wrapper over the session
    API in :mod:`repro.align` — prefer::

        from repro.align import AlignConfig, Aligner

        aligner = Aligner(AlignConfig(method="overlap"))
        result = aligner.align(old_graph, new_graph)

    :func:`align_versions` and :func:`align_many` keep their exact
    historical signatures and outputs (the parity suite in
    ``tests/test_aligner.py`` pins byte-identical reports), and emit one
    :class:`DeprecationWarning` per process on first use.

Each method corresponds to one of the paper's alignment families and they
form the hierarchy ``trivial ⊆ deblank ⊆ hybrid`` (Section 3.4), with
``overlap`` further refining ``hybrid`` with similarity matches
(Section 4.7).
"""

from __future__ import annotations

import warnings
from typing import Literal as TypingLiteral, Sequence

from .align.config import AlignConfig
from .align.registry import method_order
from .align.results import AlignmentResult
from .align.session import Aligner
from .core.dense import RefinementEngine
from .model.graph import TripleGraph
from .similarity.string_distance import split_words

#: The alignment methods exposed by :func:`align_versions`.
AlignmentMethod = TypingLiteral["trivial", "deblank", "hybrid", "overlap"]

#: Methods ordered from coarsest to finest alignment — derived from the
#: method registry's ``finer_than`` chain, no longer hardcoded.
METHOD_ORDER: tuple[str, ...] = method_order()

__all__ = [
    "AlignmentMethod",
    "AlignmentResult",
    "METHOD_ORDER",
    "align_many",
    "align_versions",
]

_DEPRECATION_WARNED = False


def _warn_once() -> None:
    """Emit the facade's DeprecationWarning exactly once per process."""
    global _DEPRECATION_WARNED
    if not _DEPRECATION_WARNED:
        _DEPRECATION_WARNED = True
        warnings.warn(
            "repro.align_versions/align_many are a legacy facade; "
            "use repro.align.Aligner (see docs/api.md)",
            DeprecationWarning,
            stacklevel=3,
        )


def align_versions(
    source: TripleGraph,
    target: TripleGraph,
    method: AlignmentMethod = "hybrid",
    theta: float = 0.65,
    splitter=split_words,
    probe: str = "paper",
    engine: RefinementEngine = "reference",
) -> AlignmentResult:
    """Align two versions of an RDF graph (legacy one-shot form).

    Equivalent to ``Aligner(AlignConfig(...)).align(source, target)``;
    see :class:`repro.align.AlignConfig` for the parameter semantics.
    Invalid parameters raise the :class:`~repro.exceptions.AlignError`
    hierarchy (still catchable as the historical
    :class:`~repro.exceptions.ExperimentError` for unknown methods and
    engines).
    """
    _warn_once()
    config = AlignConfig(
        method=method, theta=theta, engine=engine, probe=probe, splitter=splitter
    )
    return Aligner(config).align(source, target)


def align_many(
    source: TripleGraph,
    targets: Sequence[TripleGraph],
    method: AlignmentMethod = "hybrid",
    theta: float = 0.65,
    splitter=split_words,
    probe: str = "paper",
    engine: RefinementEngine = "reference",
) -> list[AlignmentResult]:
    """Align one source version against many target versions.

    Equivalent to ``Aligner(AlignConfig(...)).align_many(source,
    targets)`` — the session builds the source side's artifacts once
    (CSR block, memoized literal characterization) and reuses them
    across the batch, exactly as this function always did.
    """
    _warn_once()
    config = AlignConfig(
        method=method, theta=theta, engine=engine, probe=probe, splitter=splitter
    )
    return Aligner(config).align_many(source, list(targets))
