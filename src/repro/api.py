"""High-level facade: align two RDF graph versions in one call.

This is the entry point most users want::

    from repro import align_versions

    result = align_versions(old_graph, new_graph, method="overlap")
    for source, target in result.alignment.pairs():
        ...

Each method corresponds to one of the paper's alignment families and they
form the hierarchy ``trivial ⊆ deblank ⊆ hybrid`` (Section 3.4), with
``overlap`` further refining ``hybrid`` with similarity matches
(Section 4.7) and ``edit`` computing the expensive reference metric
`σEdit` (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal as TypingLiteral, Sequence

from .core.deblank import deblank_partition
from .core.dense import RefinementEngine, resolve_refine_engine
from .core.hybrid import hybrid_partition
from .core.trivial import trivial_partition
from .exceptions import ExperimentError
from .model.csr import CSRGraph
from .model.graph import TripleGraph
from .model.union import CombinedGraph
from .partition.alignment import PartitionAlignment
from .partition.coloring import Partition
from .partition.interner import ColorInterner
from .partition.weighted import WeightedPartition
from .similarity.overlap_alignment import OverlapTrace, overlap_partition
from .similarity.string_distance import split_words

#: The alignment methods exposed by :func:`align_versions`.
AlignmentMethod = TypingLiteral["trivial", "deblank", "hybrid", "overlap"]

#: Methods ordered from coarsest to finest alignment.
METHOD_ORDER: tuple[str, ...] = ("trivial", "deblank", "hybrid", "overlap")


@dataclass(frozen=True)
class AlignmentResult:
    """Everything produced by one alignment run.

    ``weighted`` is populated by the overlap method only; ``alignment``
    always reflects the final partition.
    """

    method: str
    graph: CombinedGraph
    partition: Partition
    alignment: PartitionAlignment
    interner: ColorInterner
    weighted: WeightedPartition | None = None
    trace: OverlapTrace | None = None
    engine: str = "reference"

    def matched_entities(self) -> int:
        """Deduplicated count of aligned entities (matched classes)."""
        return self.alignment.matched_class_count()

    def unaligned_counts(self) -> tuple[int, int]:
        """``(|Unaligned_1|, |Unaligned_2|)``."""
        return (
            len(self.alignment.unaligned_source()),
            len(self.alignment.unaligned_target()),
        )


def _run_alignment(
    graph: CombinedGraph,
    method: AlignmentMethod,
    theta: float,
    splitter,
    probe: str,
    engine: RefinementEngine,
    csr: CSRGraph | None,
) -> AlignmentResult:
    """Shared core of :func:`align_versions` and :func:`align_many`."""
    interner = ColorInterner()
    weighted = None
    trace = None
    if method == "trivial":
        partition = trivial_partition(graph, interner, engine=engine)
    elif method == "deblank":
        partition = deblank_partition(
            graph, interner, engine=engine,
            **({"csr": csr} if csr is not None else {}),
        )
    elif method == "hybrid":
        partition = hybrid_partition(graph, interner, engine=engine, csr=csr)
    elif method == "overlap":
        trace = OverlapTrace()
        weighted = overlap_partition(
            graph,
            theta=theta,
            interner=interner,
            base=hybrid_partition(graph, interner, engine=engine, csr=csr),
            probe=probe,  # type: ignore[arg-type]
            splitter=splitter,
            trace=trace,
            engine=engine,
            csr=csr,
        )
        partition = weighted.partition
    else:
        raise ExperimentError(
            f"unknown method {method!r}; expected one of {METHOD_ORDER}"
        )
    return AlignmentResult(
        method=method,
        graph=graph,
        partition=partition,
        alignment=PartitionAlignment(graph, partition),
        interner=interner,
        weighted=weighted,
        trace=trace,
        engine=engine,
    )


def align_versions(
    source: TripleGraph,
    target: TripleGraph,
    method: AlignmentMethod = "hybrid",
    theta: float = 0.65,
    splitter=split_words,
    probe: str = "paper",
    engine: RefinementEngine = "reference",
) -> AlignmentResult:
    """Align two versions of an RDF graph.

    Parameters
    ----------
    source, target:
        The two graph versions (``G1`` and ``G2``).
    method:
        ``"trivial"`` — label equality only; ``"deblank"`` — plus
        bisimulation on blank nodes; ``"hybrid"`` — plus bisimulation on
        renamed URIs; ``"overlap"`` — plus similarity matches robust under
        edits (paper default ``θ = 0.65``).
    theta:
        Similarity threshold of the overlap method.
    splitter:
        Literal characterizer for the overlap method (word split by
        default; see :mod:`repro.similarity.string_distance`).
    probe:
        Prefix-probe rule of the overlap heuristic (``"paper"``/``"safe"``).
    engine:
        Refinement implementation: ``"reference"`` (per-node dicts, the
        oracle) or ``"dense"`` (flat CSR arrays, see
        :mod:`repro.core.dense`).  For ``method="overlap"`` the dense
        engine additionally runs the whole Algorithm 2 loop — weight
        iteration, alignment tracking, candidate search — over one CSR
        snapshot (:mod:`repro.similarity.dense_overlap`).  Both engines
        produce equivalent alignments; the dense one is markedly faster
        on refinement- and overlap-heavy workloads (see
        ``docs/performance.md``).
    """
    resolve_refine_engine(engine)  # fail fast on typos
    graph = CombinedGraph(source, target)
    # The dense engine reuses one CSR snapshot for the hybrid base and
    # every round of the overlap loop (the graph never changes).
    csr = CSRGraph(graph) if engine == "dense" and method != "trivial" else None
    return _run_alignment(graph, method, theta, splitter, probe, engine, csr)


def _memoized_splitter(splitter):
    """Cache a literal characterizer by literal *value*.

    Version chains share most of their literal values, so across a batch
    of alignments every distinct string is split exactly once.
    """
    cache: dict[str, frozenset] = {}

    def cached(value: str) -> frozenset:
        objects = cache.get(value)
        if objects is None:
            objects = cache[value] = splitter(value)
        return objects

    return cached


def align_many(
    source: TripleGraph,
    targets: Sequence[TripleGraph],
    method: AlignmentMethod = "hybrid",
    theta: float = 0.65,
    splitter=split_words,
    probe: str = "paper",
    engine: RefinementEngine = "reference",
) -> list[AlignmentResult]:
    """Align one source version against many target versions.

    Produces the same results as calling :func:`align_versions` once per
    target, but materializes the source side's artifacts exactly once and
    reuses them across the batch:

    * with ``engine="dense"``, the source graph's CSR block is built once
      and every pair's union snapshot is assembled from it by
      :meth:`~repro.model.csr.CSRGraph.from_blocks` (only the target block
      is new per pair);
    * the overlap method's literal characterization is memoized by literal
      *value*, so the source side's literals — and every value shared
      between targets — are split once for the whole batch.

    This is the one-row slice of the evaluation's version matrices; the
    figure experiments cache even more aggressively via
    :class:`repro.experiments.store.VersionStore`.
    """
    resolve_refine_engine(engine)  # fail fast before building anything
    targets = list(targets)
    dense = engine == "dense" and method != "trivial"
    source_block = CSRGraph(source) if dense else None
    shared_splitter = (
        _memoized_splitter(splitter) if method == "overlap" else splitter
    )
    results = []
    for target in targets:
        graph = CombinedGraph(source, target)
        csr = (
            CSRGraph.from_blocks(source_block, CSRGraph(target))
            if dense
            else None
        )
        results.append(
            _run_alignment(
                graph, method, theta, shared_splitter, probe, engine, csr
            )
        )
    return results
