"""An EFO-like evolving ontology with blank-node records.

The Experimental Factor Ontology experiments (paper Figures 9–11) need an
evolving RDF dataset with EFO's characteristics:

* literals comprise over 75 % of nodes, URIs about 10 %, blank nodes
  7–15 % with *fluctuations caused by duplicated bisimilar blanks*,
* classes carry labels, definitions and synonyms plus a blank-node
  *definition-citation record* (the reified structure that makes blank
  alignment necessary),
* URI-prefix migrations: one group of classes uses the old OBO prefix in
  versions 1–2, disappears in versions 3–4 and reappears with the new
  prefix from version 5 on; another group is bulk-renamed between
  versions 7 and 8 — both anecdotes are reported in the paper's Section
  5.1 and drive the Hybrid/Overlap improvements of Figure 11,
* a steady stream of curation edits to literal values.

Ground truth is tracked by stable class entities so the EFO experiments
can also be scored (the paper could not — it lacked EFO ground truth; we
note this in EXPERIMENTS.md and use the ground truth only for sanity
checks, not for reproducing the published figures).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..model.labels import URI
from ..model.namespaces import (
    Namespace,
    OBO_NEW,
    OBO_OLD,
    OWL_CLASS,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASS_OF,
)
from ..model.rdf import BlankNode, RDFGraph, lit
from ..model.union import CombinedGraph, combine
from .ground_truth import GroundTruth
from .mutations import curation_edit, make_identifier, make_name, sample_fraction

EFO = Namespace("http://www.ebi.ac.uk/efo/")
EFO_DEFINITION = EFO["definition"]
EFO_SYNONYM = EFO["alternative_term"]
EFO_CITATION = EFO["definition_citation"]
EFO_SOURCE = EFO["citation_source"]
EFO_ACCESSION = EFO["citation_accession"]
EFO_NOTE = EFO["editor_note"]

BIO_WORDS = (
    "cell line tissue disease phenotype assay sample organism strain "
    "carcinoma lymphoma melanoma fibroblast epithelial neural hepatic "
    "cardiac renal pulmonary gastric colon breast prostate ovarian "
    "embryonic adult primary cultured immortalized derived treatment "
    "exposure compound dose response factor experimental variable "
    "measurement protocol antibody marker expression knockout mutant "
    "wildtype transgenic induced pluripotent stem differentiation stage "
    "anatomy development growth medium serum condition replicate batch"
).split()

#: Prefix-migration groups.
STABLE = "stable"
VANISH_AND_RENAME = "vanish"  # old prefix v1–2, absent v3–4, new prefix v5+
BULK_RENAME = "bulk"          # old prefix through v7, new prefix v8+


@dataclass
class OntologyClass:
    """One ontology class entity, persistent across versions."""

    entity: int
    accession: str
    label: str
    definition: str
    note: str
    synonyms: tuple[str, ...]
    parents: tuple[int, ...]
    group: str = STABLE
    citation: tuple[str, str] | None = ("PubMed", "PMID:0")
    born: int = 1  # first version containing the class


@dataclass(frozen=True)
class EFOConfig:
    """Generation parameters (counts are at ``scale = 1.0``)."""

    scale: float = 1.0
    versions: int = 10
    seed: int = 234
    initial_classes: int = 160
    growth: float = 0.09
    vanish_fraction: float = 0.08
    bulk_fraction: float = 0.12
    edit_fraction: float = 0.03
    rename_edit_probability: float = 0.5
    #: Per-version fraction of classes whose citation blank is duplicated —
    #: varied deliberately to reproduce Figure 9's blank-count fluctuation.
    duplication_schedule: tuple[float, ...] = (
        0.10, 0.35, 0.05, 0.25, 0.15, 0.40, 0.10, 0.30, 0.20, 0.45,
    )

    def scaled(self, count: int) -> int:
        return max(4, int(count * self.scale))


class EFOGenerator:
    """Generates the ten ontology versions and their ground truths."""

    def __init__(self, scale: float = 1.0, seed: int = 234, versions: int = 10,
                 config: EFOConfig | None = None) -> None:
        if config is None:
            config = EFOConfig(scale=scale, seed=seed, versions=versions)
        self.config = config
        self._rng = random.Random(config.seed)
        self._classes: list[OntologyClass] | None = None
        #: per-version label/definition overrides: version -> entity -> text
        self._label_edits: list[dict[int, str]] = []
        self._definition_edits: list[dict[int, str]] = []
        self._graphs: dict[int, RDFGraph] = {}
        self._entities: dict[int, dict[int, URI]] = {}

    @classmethod
    def shared(cls, scale: float = 1.0, seed: int = 234,
               versions: int = 10) -> "EFOGenerator":
        """The process-wide memoized generator for this configuration."""
        from .registry import shared_generator

        return shared_generator(cls, scale=scale, seed=seed, versions=versions)

    # ------------------------------------------------------------------
    # Entity population
    # ------------------------------------------------------------------
    def _new_class(self, entity: int, existing: list[OntologyClass], born: int) -> OntologyClass:
        rng = self._rng
        parents: tuple[int, ...] = ()
        if existing:
            count = rng.choice((1, 1, 1, 2))
            parents = tuple(
                sorted({rng.choice(existing).entity for _ in range(count)})
            )
        synonyms = tuple(
            make_name(rng, BIO_WORDS, rng.choice((2, 3)))
            for _ in range(rng.choice((1, 2, 2, 3)))
        )
        citation: tuple[str, str] | None = None
        if rng.random() < 0.6:
            citation = ("PubMed", f"PMID:{rng.randrange(10_000_000)}")
        return OntologyClass(
            entity=entity,
            accession=make_identifier(rng, "EFO_"),
            label=make_name(rng, BIO_WORDS, rng.choice((2, 3))),
            definition=make_name(rng, BIO_WORDS, 8),
            note=make_name(rng, BIO_WORDS, 6),
            synonyms=synonyms,
            parents=parents,
            citation=citation,
            born=born,
        )

    def _build_classes(self) -> list[OntologyClass]:
        cfg = self.config
        rng = self._rng
        classes: list[OntologyClass] = []
        for index in range(cfg.scaled(cfg.initial_classes)):
            classes.append(self._new_class(index, classes, born=1))
        # Assign migration groups among the initial classes.
        candidates = [cls for cls in classes if cls.parents]
        vanish = sample_fraction(rng, candidates, cfg.vanish_fraction)
        for cls in vanish:
            cls.group = VANISH_AND_RENAME
        remaining = [cls for cls in candidates if cls.group == STABLE]
        for cls in sample_fraction(rng, remaining, cfg.bulk_fraction):
            cls.group = BULK_RENAME
        # Growth: later versions add new (stable) classes.
        entity = len(classes)
        for version in range(2, cfg.versions + 1):
            additions = int(len(classes) * cfg.growth)
            for _ in range(additions):
                classes.append(self._new_class(entity, classes, born=version))
                entity += 1
        self._schedule_edits(classes)
        return classes

    def _schedule_edits(self, classes: list[OntologyClass]) -> None:
        """Pre-plan per-version literal edits (cumulative overrides)."""
        cfg = self.config
        rng = self._rng
        label_state = {cls.entity: cls.label for cls in classes}
        definition_state = {cls.entity: cls.definition for cls in classes}
        self._label_edits = [dict() for _ in range(cfg.versions + 1)]
        self._definition_edits = [dict() for _ in range(cfg.versions + 1)]
        for version in range(2, cfg.versions + 1):
            alive = [cls for cls in classes if cls.born <= version]
            for cls in sample_fraction(rng, alive, cfg.edit_fraction):
                label_state[cls.entity] = curation_edit(
                    rng, label_state[cls.entity], BIO_WORDS
                )
            for cls in sample_fraction(rng, alive, cfg.edit_fraction / 2):
                definition_state[cls.entity] = curation_edit(
                    rng, definition_state[cls.entity], BIO_WORDS
                )
            # Renames come with content changes (paper: "this change also
            # involves changes in the contents of the affected nodes").
            if version in (5, 8):
                group = VANISH_AND_RENAME if version == 5 else BULK_RENAME
                for cls in classes:
                    if cls.group == group and rng.random() < cfg.rename_edit_probability:
                        label_state[cls.entity] = curation_edit(
                            rng, label_state[cls.entity], BIO_WORDS
                        )
            self._label_edits[version] = dict(label_state)
            self._definition_edits[version] = dict(definition_state)
        self._label_edits[1] = {cls.entity: cls.label for cls in classes}
        self._definition_edits[1] = {cls.entity: cls.definition for cls in classes}

    def classes(self) -> list[OntologyClass]:
        if self._classes is None:
            self._classes = self._build_classes()
        return self._classes

    # ------------------------------------------------------------------
    # Per-version rendering
    # ------------------------------------------------------------------
    def class_uri(self, cls: OntologyClass, version: int) -> URI | None:
        """The class URI in *version*, or None when absent."""
        if cls.born > version:
            return None
        if cls.group == VANISH_AND_RENAME:
            if version <= 2:
                return OBO_OLD[cls.accession]
            if version <= 4:
                return None
            return OBO_NEW[cls.accession]
        if cls.group == BULK_RENAME:
            if version <= 7:
                return OBO_OLD[cls.accession]
            return OBO_NEW[cls.accession]
        return EFO[cls.accession]

    def graph(self, version_index: int) -> RDFGraph:
        """The RDF graph of one version (0-based index)."""
        version = version_index + 1
        if version_index in self._graphs:
            return self._graphs[version_index]
        cfg = self.config
        classes = self.classes()
        labels = self._label_edits[version]
        definitions = self._definition_edits[version]
        duplication = cfg.duplication_schedule[
            version_index % len(cfg.duplication_schedule)
        ]
        # Per-version RNG: duplication choices must not disturb the main
        # stream (graphs can be built in any order).
        rng = random.Random(cfg.seed * 1000 + version)

        graph = RDFGraph()
        entities: dict[int, URI] = {}
        uri_of = {
            cls.entity: self.class_uri(cls, version)
            for cls in classes
        }
        for cls in classes:
            subject = uri_of[cls.entity]
            if subject is None:
                continue
            entities[cls.entity] = subject
            graph.add(subject, RDF_TYPE, OWL_CLASS)
            graph.add(subject, RDFS_LABEL, lit(labels[cls.entity]))
            graph.add(subject, EFO_DEFINITION, lit(definitions[cls.entity]))
            graph.add(subject, EFO_NOTE, lit(cls.note))
            for synonym in cls.synonyms:
                graph.add(subject, EFO_SYNONYM, lit(synonym))
            for parent in cls.parents:
                parent_uri = uri_of.get(parent)
                if parent_uri is not None:
                    graph.add(subject, RDFS_SUBCLASS_OF, parent_uri)
            if cls.citation is not None:
                # The citation record: a blank node with two literal leaves.
                record = BlankNode(f"cite-{cls.entity}")
                graph.add(subject, EFO_CITATION, record)
                graph.add(record, EFO_SOURCE, lit(cls.citation[0]))
                graph.add(record, EFO_ACCESSION, lit(cls.citation[1]))
                if rng.random() < duplication:
                    # A bisimilar duplicate of the record (same contents,
                    # fresh blank identifier) — Figure 9's fluctuation.
                    duplicate = BlankNode(f"cite-{cls.entity}-dup")
                    graph.add(subject, EFO_CITATION, duplicate)
                    graph.add(duplicate, EFO_SOURCE, lit(cls.citation[0]))
                    graph.add(duplicate, EFO_ACCESSION, lit(cls.citation[1]))
        self._graphs[version_index] = graph
        self._entities[version_index] = entities
        return graph

    def graphs(self) -> list[RDFGraph]:
        return [self.graph(i) for i in range(self.config.versions)]

    def entities(self, version_index: int) -> dict[int, URI]:
        """Entity → class URI map of one version."""
        self.graph(version_index)
        return self._entities[version_index]

    def ground_truth(self, source_index: int, target_index: int) -> GroundTruth:
        """Class-level correspondence (used for sanity checks only)."""
        return GroundTruth.from_entity_maps(
            self.entities(source_index), self.entities(target_index)
        )

    def combined(self, source_index: int, target_index: int) -> tuple[CombinedGraph, GroundTruth]:
        return (
            combine(self.graph(source_index), self.graph(target_index)),
            self.ground_truth(source_index, target_index),
        )
