"""Random but realistic mutation operators for evolving datasets.

The paper's alignment challenges are driven by three kinds of change
(Section 1): blank-node reshuffling, URI renames and *small edits* to
literal values and structure.  The text mutators here produce the third
kind: curation-style edits (a fixed typo, an added word, a changed number)
that leave the value recognizably similar — exactly the regime `σEdit` and
the overlap alignment are designed for.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

_LETTERS = string.ascii_lowercase


def edit_typo(rng: random.Random, text: str) -> str:
    """One character-level edit: insert, delete or substitute."""
    if not text:
        return rng.choice(_LETTERS)
    operation = rng.choice(("insert", "delete", "substitute"))
    position = rng.randrange(len(text))
    if operation == "insert":
        return text[:position] + rng.choice(_LETTERS) + text[position:]
    if operation == "delete" and len(text) > 1:
        return text[:position] + text[position + 1:]
    return text[:position] + rng.choice(_LETTERS) + text[position + 1:]


def edit_word(rng: random.Random, text: str, vocabulary: Sequence[str]) -> str:
    """One word-level edit: append, drop or replace a word."""
    words = text.split()
    if not words:
        return rng.choice(vocabulary)
    operation = rng.choice(("append", "drop", "replace"))
    if operation == "append":
        words.insert(rng.randrange(len(words) + 1), rng.choice(vocabulary))
    elif operation == "drop" and len(words) > 1:
        words.pop(rng.randrange(len(words)))
    else:
        words[rng.randrange(len(words))] = rng.choice(vocabulary)
    return " ".join(words)


def curation_edit(
    rng: random.Random, text: str, vocabulary: Sequence[str], typo_bias: float = 0.5
) -> str:
    """A curation-style edit: mostly typos, sometimes a word change.

    Guaranteed to return a value different from *text* (retry up to a small
    bound, then append a marker) so that generators can rely on the edit
    being observable.
    """
    for _ in range(8):
        if rng.random() < typo_bias:
            edited = edit_typo(rng, text)
        else:
            edited = edit_word(rng, text, vocabulary)
        if edited != text:
            return edited
    return text + " rev"


def make_name(rng: random.Random, vocabulary: Sequence[str], words: int) -> str:
    """A fresh multi-word name drawn from a vocabulary."""
    return " ".join(rng.choice(vocabulary) for _ in range(words))


def make_identifier(rng: random.Random, prefix: str, width: int = 6) -> str:
    """A synthetic accession-style identifier, e.g. ``EFO_004217``."""
    return f"{prefix}{rng.randrange(10 ** width):0{width}d}"


def sample_fraction(
    rng: random.Random, items: Sequence, fraction: float
) -> list:
    """A deterministic random sample of ``⌊fraction · len(items)⌋`` items."""
    count = int(len(items) * fraction)
    if count <= 0:
        return []
    return rng.sample(list(items), min(count, len(items)))


# ----------------------------------------------------------------------
# Whole-graph mutation workloads
# ----------------------------------------------------------------------
# A "mutation workload" is a (version 1, version 2) pair exercising all
# three change drivers at once: blank identifiers reshuffled wholesale, a
# fraction of URIs renamed, a fraction of literals curation-edited, plus
# a few dropped and inserted triples.  The engine-parity tests and the
# overlap benchmarks share these builders so "the largest mutation
# workload" means the same thing everywhere.

def random_mutation_graph(
    rng: random.Random,
    num_uris: int = 10,
    num_literals: int = 8,
    num_blanks: int = 8,
    num_edges: int = 40,
    vocabulary: Sequence[str] = (),
    literal_words: int = 3,
    uri_prefix: str = "n",
):
    """A random RDF graph sized for mutation workloads.

    Literals are multi-word names drawn from *vocabulary* (single counter
    values when it is empty), so the overlap literal round has word sets
    to work with.
    """
    from ..model import RDFGraph, blank, lit, uri

    graph = RDFGraph()
    uris = [uri(f"{uri_prefix}{i}") for i in range(num_uris)]
    if vocabulary:
        literals = [
            lit(f"{make_name(rng, vocabulary, literal_words)} {i}")
            for i in range(num_literals)
        ]
    else:
        literals = [lit(f"value {i}") for i in range(num_literals)]
    blanks = [blank(f"{uri_prefix}b{i}") for i in range(num_blanks)]
    for term in uris + literals + blanks:
        graph.term(term)
    subjects = uris + blanks
    objects = uris + blanks + literals
    for _ in range(num_edges):
        graph.add(rng.choice(subjects), rng.choice(uris), rng.choice(objects))
    return graph


def mutated_version(
    rng: random.Random,
    graph,
    vocabulary: Sequence[str],
    literal_fraction: float = 0.4,
    rename_fraction: float = 0.25,
    drop_fraction: float = 0.08,
    new_facts: int = 2,
):
    """A curated second version: literal edits, URI renames, blank reshuffle.

    Mirrors the paper's three change drivers (Section 1): blank-node
    identifiers are reshuffled wholesale, *rename_fraction* of the URIs is
    renamed, *literal_fraction* of the literals receives a curation-style
    edit, *drop_fraction* of the triples is dropped and *new_facts* fresh
    triples referencing existing terms are inserted.
    """
    from ..model import BlankNode, RDFGraph, blank, lit, uri

    literal_nodes = sorted(
        (n for n in graph.nodes() if graph.is_literal_node(n)), key=repr
    )
    uri_nodes = sorted((n for n in graph.nodes() if graph.is_uri_node(n)), key=repr)
    edits: dict = {}
    for node in sample_fraction(rng, literal_nodes, literal_fraction):
        edits[node] = lit(curation_edit(rng, node.value, vocabulary))
    for node in sample_fraction(rng, uri_nodes, rename_fraction):
        edits[node] = uri(node.value + "-v2")

    def carry(term):
        if isinstance(term, BlankNode):
            # Reshuffled blank identifiers: same structure, fresh names.
            return blank("v2-" + term.name)
        return edits.get(term, term)

    edges = sorted(graph.edges(), key=repr)
    dropped = set(sample_fraction(rng, range(len(edges)), drop_fraction))
    version = RDFGraph()
    for position, (subject, predicate, obj) in enumerate(edges):
        if position in dropped:
            continue
        version.add(carry(subject), carry(predicate), carry(obj))
    # A few brand-new facts referencing existing terms.
    subjects = [n for n in version.nodes() if not version.is_literal_node(n)]
    predicates = [n for n in version.nodes() if version.is_uri_node(n)]
    for index in range(new_facts):
        if subjects and predicates:
            version.add(
                rng.choice(subjects),
                rng.choice(predicates),
                lit(f"new fact {index}"),
            )
    return version


#: Default word pool for mutation workloads: generic filler words plus the
#: domain terms the curation edits draw from (multi-word literals give the
#: overlap literal round realistic word sets).
MUTATION_VOCABULARY: tuple[str, ...] = tuple(f"word{i}" for i in range(60)) + (
    "graph", "node", "edge", "version", "aligned", "blank", "color",
    "weight", "overlap", "dense",
)


def mutation_workload(
    seed: int,
    scale: int = 1,
    vocabulary: Sequence[str] = MUTATION_VOCABULARY,
):
    """A ``(version 1, version 2)`` mutation pair at the given *scale*.

    The single source of truth for "mutation workload at scale N": the
    engine-parity tests and the overlap benchmarks both call this, so the
    workload the speedup gate measures is literally the workload the
    parity assertions exercise.
    """
    rng = random.Random(seed)
    source = random_mutation_graph(
        rng,
        num_uris=12 * scale,
        num_literals=10 * scale,
        num_blanks=8 * scale,
        num_edges=50 * scale,
        vocabulary=vocabulary,
    )
    return source, mutated_version(rng, source, vocabulary)
