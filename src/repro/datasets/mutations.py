"""Random but realistic mutation operators for evolving datasets.

The paper's alignment challenges are driven by three kinds of change
(Section 1): blank-node reshuffling, URI renames and *small edits* to
literal values and structure.  The text mutators here produce the third
kind: curation-style edits (a fixed typo, an added word, a changed number)
that leave the value recognizably similar — exactly the regime `σEdit` and
the overlap alignment are designed for.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

_LETTERS = string.ascii_lowercase


def edit_typo(rng: random.Random, text: str) -> str:
    """One character-level edit: insert, delete or substitute."""
    if not text:
        return rng.choice(_LETTERS)
    operation = rng.choice(("insert", "delete", "substitute"))
    position = rng.randrange(len(text))
    if operation == "insert":
        return text[:position] + rng.choice(_LETTERS) + text[position:]
    if operation == "delete" and len(text) > 1:
        return text[:position] + text[position + 1:]
    return text[:position] + rng.choice(_LETTERS) + text[position + 1:]


def edit_word(rng: random.Random, text: str, vocabulary: Sequence[str]) -> str:
    """One word-level edit: append, drop or replace a word."""
    words = text.split()
    if not words:
        return rng.choice(vocabulary)
    operation = rng.choice(("append", "drop", "replace"))
    if operation == "append":
        words.insert(rng.randrange(len(words) + 1), rng.choice(vocabulary))
    elif operation == "drop" and len(words) > 1:
        words.pop(rng.randrange(len(words)))
    else:
        words[rng.randrange(len(words))] = rng.choice(vocabulary)
    return " ".join(words)


def curation_edit(
    rng: random.Random, text: str, vocabulary: Sequence[str], typo_bias: float = 0.5
) -> str:
    """A curation-style edit: mostly typos, sometimes a word change.

    Guaranteed to return a value different from *text* (retry up to a small
    bound, then append a marker) so that generators can rely on the edit
    being observable.
    """
    for _ in range(8):
        if rng.random() < typo_bias:
            edited = edit_typo(rng, text)
        else:
            edited = edit_word(rng, text, vocabulary)
        if edited != text:
            return edited
    return text + " rev"


def make_name(rng: random.Random, vocabulary: Sequence[str], words: int) -> str:
    """A fresh multi-word name drawn from a vocabulary."""
    return " ".join(rng.choice(vocabulary) for _ in range(words))


def make_identifier(rng: random.Random, prefix: str, width: int = 6) -> str:
    """A synthetic accession-style identifier, e.g. ``EFO_004217``."""
    return f"{prefix}{rng.randrange(10 ** width):0{width}d}"


def sample_fraction(
    rng: random.Random, items: Sequence, fraction: float
) -> list:
    """A deterministic random sample of ``⌊fraction · len(items)⌋`` items."""
    count = int(len(items) * fraction)
    if count <= 0:
        return []
    return rng.sample(list(items), min(count, len(items)))
