"""Process-level memoization of the synthetic dataset generators.

Every figure experiment regenerates its dataset from ``(seed, scale,
versions)``; within one process (a figure-suite run, a benchmark session,
a parallel worker) the same configuration therefore used to be generated
several times — Figures 13, 14 and 15 alone build the GtoPdb version
chain three times.  :func:`shared_generator` keys generator instances by
their full configuration so each synthetic version chain is built exactly
once per process; the generators cache their versions internally, making
the shared instance a read-mostly object that later figures (and the
batch-execution :class:`~repro.experiments.store.VersionStore`) reuse.

Generators build their state lazily but *deterministically*: the entity
population is derived on first access from the seed alone, and per-version
graphs use per-version RNG streams, so the shared instance produces the
same graphs regardless of which figure touched it first.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

Generator = TypeVar("Generator")

_LOCK = threading.Lock()
_GENERATORS: dict[tuple, Any] = {}

#: Caches derived from shared generators (e.g. the experiment
#: VersionStore registry) register a clear callback here so
#: :func:`clear_shared_generators` actually releases their memory too.
_CLEAR_HOOKS: list[Callable[[], None]] = []


def register_clear_hook(hook: Callable[[], None]) -> None:
    """Run *hook* whenever the shared generators are cleared."""
    with _LOCK:
        _CLEAR_HOOKS.append(hook)


def shared_instance(key: tuple, factory: Callable[[], Generator]) -> Generator:
    """The process-wide instance memoized under *key*.

    The general entry point behind :func:`shared_generator`: generators
    whose identity is richer than ``(scale, seed, versions)`` — the
    synthetic workloads key on their entire
    :class:`~repro.datasets.synthetic.SyntheticConfig` — register here
    directly.  *key* must be hashable and must fully determine the
    generated history; *factory* is invoked (under the registry lock)
    only on the first request.
    """
    with _LOCK:
        generator = _GENERATORS.get(key)
        if generator is None:
            generator = factory()
            _GENERATORS[key] = generator
        return generator


def shared_generator(
    factory: Callable[..., Generator],
    scale: float,
    seed: int,
    versions: int,
) -> Generator:
    """The process-wide generator for ``factory(scale, seed, versions)``.

    *factory* is one of the generator classes; the instance is created on
    first request and returned for every later request with the same
    configuration.  Custom ``config=`` objects are deliberately not
    supported here — a bespoke configuration keys on its full config via
    :func:`shared_instance` (as the synthetic generators do) or owns its
    generator outright.
    """
    key = (factory.__qualname__, float(scale), int(seed), int(versions))
    return shared_instance(
        key, lambda: factory(scale=scale, seed=seed, versions=versions)
    )


def clear_shared_generators() -> None:
    """Drop all memoized generators and derived caches (tests, memory)."""
    with _LOCK:
        _GENERATORS.clear()
        hooks = list(_CLEAR_HOOKS)
    for hook in hooks:
        hook()


def shared_generator_count() -> int:
    """How many distinct generator configurations are currently cached."""
    with _LOCK:
        return len(_GENERATORS)
