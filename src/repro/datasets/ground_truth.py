"""Ground-truth correspondences between graph versions.

The GtoPdb experiments can be scored exactly because primary keys persist
across versions: the row URI ``…/ver1/ligand/685`` and ``…/ver2/ligand/685``
denote the same entity (paper Section 5.2).  :class:`GroundTruth` captures
such a correspondence as a partial 1-to-1 mapping between the *terms* of a
source and a target version, with helpers to lift it onto a combined
graph's node identifiers.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from ..exceptions import AlignmentError
from ..model.graph import NodeId
from ..model.rdf import Term
from ..model.union import CombinedGraph


class GroundTruth:
    """A partial 1-to-1 entity correspondence between two versions."""

    __slots__ = ("_source_to_target", "_target_to_source")

    def __init__(self, pairs: Mapping[Term, Term]) -> None:
        self._source_to_target: dict[Term, Term] = dict(pairs)
        self._target_to_source: dict[Term, Term] = {}
        for source, target in self._source_to_target.items():
            if target in self._target_to_source:
                raise AlignmentError(
                    f"ground truth maps two source terms to {target!r}"
                )
            self._target_to_source[target] = source

    # ------------------------------------------------------------------
    @classmethod
    def from_entity_maps(
        cls,
        source_entities: Mapping[Hashable, Term],
        target_entities: Mapping[Hashable, Term],
    ) -> "GroundTruth":
        """Join two ``entity key → term`` maps on their shared keys.

        This is how relational exports build their ground truth: the entity
        key (table, primary key) is prefix-independent, the terms are the
        version-specific URIs.
        """
        pairs = {
            source_entities[key]: target_entities[key]
            for key in sorted(source_entities.keys() & target_entities.keys())
        }
        return cls(pairs)

    # ------------------------------------------------------------------
    def partner_of_source(self, term: Term) -> Term | None:
        """The target term for a source term (None if retired)."""
        return self._source_to_target.get(term)

    def partner_of_target(self, term: Term) -> Term | None:
        """The source term for a target term (None if newly inserted)."""
        return self._target_to_source.get(term)

    def pairs(self) -> Iterator[tuple[Term, Term]]:
        return iter(self._source_to_target.items())

    def __len__(self) -> int:
        return len(self._source_to_target)

    def __contains__(self, pair: tuple[Term, Term]) -> bool:
        source, target = pair
        return self._source_to_target.get(source) == target

    # ------------------------------------------------------------------
    def combined_pairs(self, graph: CombinedGraph) -> set[tuple[NodeId, NodeId]]:
        """The pair set lifted onto combined-graph node identifiers.

        Terms absent from either version (e.g. a row without triples) are
        skipped.
        """
        lifted: set[tuple[NodeId, NodeId]] = set()
        for source, target in self._source_to_target.items():
            source_node = (1, source)
            target_node = (2, target)
            if source_node in graph.source_nodes and target_node in graph.target_nodes:
                lifted.add((source_node, target_node))
        return lifted

    def __repr__(self) -> str:
        return f"<GroundTruth pairs={len(self._source_to_target)}>"
