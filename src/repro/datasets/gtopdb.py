"""A GtoPdb-like evolving relational database exported to RDF.

The paper's ground-truth experiments (Figures 12–15) use ten versions of
the Guide to Pharmacology database, exported to RDF with the W3C Direct
Mapping and a *different URI prefix per version*, so that no URIs are
shared and only structure and literals can drive the alignment — while the
persistent primary keys provide an exact ground truth.

This generator reproduces that setup synthetically:

* a pharmacology-shaped schema (family / target / ligand / reference /
  interaction / interaction_reference) with the same FK topology,
* ten versions evolved with curation-style changes — steady growth, a
  large insertion burst into version 4 and an almost-quiet transition into
  version 8, mirroring the change profile the paper reports,
* per-version exports ``http://gtopdb.example.org/ver<i>/…`` and entity
  maps joining into :class:`~repro.datasets.ground_truth.GroundTruth`.

Scale: ``scale=1.0`` produces a few thousand edges per version (the paper's
millions shrunk ~500× for laptop-scale pure-Python runs); every count
scales linearly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from decimal import Decimal

from ..model.rdf import RDFGraph
from ..model.union import CombinedGraph, combine
from ..relational.database import KeyTuple, RelationalDatabase
from ..relational.direct_mapping import EntityKey, direct_mapping
from ..relational.evolution import delete_with_referents
from ..relational.schema import Column, ColumnType, ForeignKey, Schema, Table, make_schema
from .ground_truth import GroundTruth
from .mutations import curation_edit, make_name, sample_fraction

PHARMA_WORDS = (
    "receptor kinase channel transporter peptide amine histamine serotonin "
    "dopamine glutamate acetylcholine adrenergic opioid cannabinoid purine "
    "calcitonin insulin glucagon ghrelin melatonin orexin vasopressin "
    "oxytocin bradykinin endothelin neurotensin galanin somatostatin "
    "adenosine muscarinic nicotinic gamma beta alpha delta kappa agonist "
    "antagonist inhibitor blocker modulator selective potent partial "
    "inverse competitive allosteric ionotropic metabotropic voltage gated "
    "ligand chloride sodium potassium calcium zinc protein coupled binding "
    "factor growth nerve tumor necrosis interleukin interferon chemokine "
    "prostaglandin leukotriene thromboxane steroid nuclear hormone thyroid "
    "estrogen androgen cortisol retinoic lipid sphingosine fatty acid "
    "free bile melanocortin neuropeptide tachykinin trace urotensin relaxin "
    "apelin motilin bombesin cholecystokinin corticotropin gonadotropin"
).split()

JOURNALS = (
    "British Journal of Pharmacology",
    "Nucleic Acids Research",
    "Molecular Pharmacology",
    "Journal of Medicinal Chemistry",
    "Pharmacological Reviews",
    "Trends in Pharmacological Sciences",
)

UNITS = ("pKi", "pIC50", "pEC50", "pKd", "pA2")
ACTIONS = ("agonist", "antagonist", "inhibitor", "activator", "channel blocker")
LIGAND_TYPES = ("synthetic organic", "peptide", "metabolite", "antibody", "natural product")


def gtopdb_schema() -> Schema:
    """The pharmacology-shaped schema with GtoPdb's FK topology."""
    return make_schema(
        [
            Table(
                name="family",
                columns=(
                    Column("family_id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                ),
                primary_key=("family_id",),
            ),
            Table(
                name="target",
                columns=(
                    Column("target_id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                    Column("gene_symbol", ColumnType.TEXT),
                    Column("family_id", ColumnType.INTEGER),
                    Column("comment", ColumnType.TEXT, nullable=True),
                ),
                primary_key=("target_id",),
                foreign_keys=(ForeignKey(("family_id",), "family"),),
            ),
            Table(
                name="ligand",
                columns=(
                    Column("ligand_id", ColumnType.INTEGER),
                    Column("name", ColumnType.TEXT),
                    Column("type", ColumnType.TEXT),
                    Column("smiles", ColumnType.TEXT),
                    Column("comment", ColumnType.TEXT, nullable=True),
                ),
                primary_key=("ligand_id",),
            ),
            Table(
                name="reference",
                columns=(
                    Column("reference_id", ColumnType.INTEGER),
                    Column("title", ColumnType.TEXT),
                    Column("authors", ColumnType.TEXT),
                    Column("year", ColumnType.INTEGER),
                    Column("journal", ColumnType.TEXT),
                ),
                primary_key=("reference_id",),
            ),
            Table(
                name="interaction",
                columns=(
                    Column("interaction_id", ColumnType.INTEGER),
                    Column("ligand_id", ColumnType.INTEGER),
                    Column("target_id", ColumnType.INTEGER),
                    Column("affinity", ColumnType.DECIMAL),
                    Column("units", ColumnType.TEXT),
                    Column("action", ColumnType.TEXT),
                ),
                primary_key=("interaction_id",),
                foreign_keys=(
                    ForeignKey(("ligand_id",), "ligand"),
                    ForeignKey(("target_id",), "target"),
                ),
            ),
            Table(
                name="interaction_reference",
                columns=(
                    Column("pair_id", ColumnType.INTEGER),
                    Column("interaction_id", ColumnType.INTEGER),
                    Column("reference_id", ColumnType.INTEGER),
                ),
                primary_key=("pair_id",),
                foreign_keys=(
                    ForeignKey(("interaction_id",), "interaction"),
                    ForeignKey(("reference_id",), "reference"),
                ),
            ),
        ]
    )


@dataclass(frozen=True)
class GtoPdbConfig:
    """Generation parameters (counts are at ``scale = 1.0``)."""

    scale: float = 1.0
    versions: int = 10
    seed: int = 2016
    families: int = 12
    targets: int = 90
    ligands: int = 130
    references: int = 80
    interactions: int = 220
    interaction_references: int = 150
    growth: float = 0.15
    burst_growth: float = 0.30
    burst_version: int = 4
    quiet_version: int = 8
    quiet_growth: float = 0.01
    delete_fraction: float = 0.02
    #: The burst is churn, not just growth: retired entities are replaced
    #: by similar new ones, which is what produces the paper's spike of
    #: falsely aligned inserted nodes in Figure 14.
    burst_delete_multiplier: float = 4.0
    update_fraction: float = 0.05

    def scaled(self, count: int) -> int:
        return max(2, int(count * self.scale))


class GtoPdbGenerator:
    """Generates the versions, exports and ground truths lazily."""

    def __init__(self, scale: float = 1.0, seed: int = 2016, versions: int = 10,
                 config: GtoPdbConfig | None = None) -> None:
        if config is None:
            config = GtoPdbConfig(scale=scale, seed=seed, versions=versions)
        self.config = config
        self._rng = random.Random(config.seed)
        self._schema = gtopdb_schema()
        self._counters = {name: 0 for name in self._schema.table_names}
        self._databases: list[RelationalDatabase] | None = None
        self._exports: dict[int, tuple[RDFGraph, dict[EntityKey, object]]] = {}

    @classmethod
    def shared(cls, scale: float = 1.0, seed: int = 2016,
               versions: int = 10) -> "GtoPdbGenerator":
        """The process-wide memoized generator for this configuration."""
        from .registry import shared_generator

        return shared_generator(cls, scale=scale, seed=seed, versions=versions)

    # ------------------------------------------------------------------
    # Row factories (fresh persistent ids per table)
    # ------------------------------------------------------------------
    def _next_id(self, table: str) -> int:
        self._counters[table] += 1
        return self._counters[table]

    def _insert_family(self, db: RelationalDatabase) -> KeyTuple:
        return db.insert(
            "family",
            {
                "family_id": self._next_id("family"),
                "name": make_name(self._rng, PHARMA_WORDS, 3) + " family",
            },
        )

    def _insert_target(self, db: RelationalDatabase) -> KeyTuple:
        rng = self._rng
        family_keys = sorted(db.keys("family"))
        target_id = self._next_id("target")
        row = {
            "target_id": target_id,
            "name": make_name(rng, PHARMA_WORDS, 3),
            "gene_symbol": f"{rng.choice(PHARMA_WORDS)[:4].upper()}{target_id}",
            "family_id": rng.choice(family_keys)[0],
        }
        if rng.random() < 0.6:
            row["comment"] = make_name(rng, PHARMA_WORDS, 6)
        return db.insert("target", row)

    def _insert_ligand(self, db: RelationalDatabase) -> KeyTuple:
        rng = self._rng
        smiles = "".join(
            rng.choice(("C", "CC", "N", "O", "c1ccccc1", "C(=O)", "S", "Cl"))
            for _ in range(rng.randint(3, 8))
        )
        row = {
            "ligand_id": self._next_id("ligand"),
            "name": make_name(rng, PHARMA_WORDS, 2),
            "type": rng.choice(LIGAND_TYPES),
            "smiles": smiles,
        }
        if rng.random() < 0.5:
            row["comment"] = make_name(rng, PHARMA_WORDS, 5)
        return db.insert("ligand", row)

    def _insert_reference(self, db: RelationalDatabase) -> KeyTuple:
        rng = self._rng
        return db.insert(
            "reference",
            {
                "reference_id": self._next_id("reference"),
                "title": make_name(rng, PHARMA_WORDS, 7),
                "authors": make_name(rng, PHARMA_WORDS, 4).title(),
                "year": rng.randint(1995, 2016),
                "journal": rng.choice(JOURNALS),
            },
        )

    def _insert_interaction(self, db: RelationalDatabase) -> KeyTuple:
        ligand_keys = sorted(db.keys("ligand"))
        target_keys = sorted(db.keys("target"))
        return db.insert(
            "interaction",
            {
                "interaction_id": self._next_id("interaction"),
                "ligand_id": self._rng.choice(ligand_keys)[0],
                "target_id": self._rng.choice(target_keys)[0],
                "affinity": Decimal(f"{self._rng.uniform(4.0, 11.0):.2f}"),
                "units": self._rng.choice(UNITS),
                "action": self._rng.choice(ACTIONS),
            },
        )

    def _insert_interaction_reference(self, db: RelationalDatabase) -> KeyTuple:
        interaction_keys = sorted(db.keys("interaction"))
        reference_keys = sorted(db.keys("reference"))
        return db.insert(
            "interaction_reference",
            {
                "pair_id": self._next_id("interaction_reference"),
                "interaction_id": self._rng.choice(interaction_keys)[0],
                "reference_id": self._rng.choice(reference_keys)[0],
            },
        )

    _INSERTERS = {
        "family": _insert_family,
        "target": _insert_target,
        "ligand": _insert_ligand,
        "reference": _insert_reference,
        "interaction": _insert_interaction,
        "interaction_reference": _insert_interaction_reference,
    }

    def _replace_ligand(self, db: RelationalDatabase, key: KeyTuple) -> KeyTuple:
        """Retire a ligand and re-curate it under a fresh key.

        The successor keeps the ligand's profile with a lightly edited name
        and re-created interactions — the churn pattern behind the paper's
        falsely aligned inserted nodes (their neighborhoods consist almost
        entirely of previously existing nodes).
        """
        rng = self._rng
        old_row = db.get("ligand", key)
        assert old_row is not None
        old_interactions = [
            db.get("interaction", interaction_key)
            for table, interaction_key in db.referencing_keys("ligand", key)
            if table == "interaction"
        ]
        delete_with_referents(db, "ligand", key)
        successor = db.insert(
            "ligand",
            {
                "ligand_id": self._next_id("ligand"),
                "name": curation_edit(rng, old_row["name"], PHARMA_WORDS),
                "type": old_row["type"],
                "smiles": old_row["smiles"],
                **(
                    {"comment": old_row["comment"]}
                    if old_row.get("comment") is not None
                    else {}
                ),
            },
        )
        for old_interaction in old_interactions:
            if old_interaction is None:
                continue
            if db.get("target", (old_interaction["target_id"],)) is None:
                continue
            db.insert(
                "interaction",
                {
                    "interaction_id": self._next_id("interaction"),
                    "ligand_id": successor[0],
                    "target_id": old_interaction["target_id"],
                    "affinity": old_interaction["affinity"],
                    "units": old_interaction["units"],
                    "action": old_interaction["action"],
                },
            )
        return successor

    # ------------------------------------------------------------------
    # Version construction
    # ------------------------------------------------------------------
    def _initial_database(self) -> RelationalDatabase:
        cfg = self.config
        db = RelationalDatabase(self._schema)
        for _ in range(cfg.scaled(cfg.families)):
            self._insert_family(db)
        for _ in range(cfg.scaled(cfg.targets)):
            self._insert_target(db)
        for _ in range(cfg.scaled(cfg.ligands)):
            self._insert_ligand(db)
        for _ in range(cfg.scaled(cfg.references)):
            self._insert_reference(db)
        for _ in range(cfg.scaled(cfg.interactions)):
            self._insert_interaction(db)
        for _ in range(cfg.scaled(cfg.interaction_references)):
            self._insert_interaction_reference(db)
        return db

    def _growth_for(self, version: int) -> float:
        cfg = self.config
        if version == cfg.burst_version:
            return cfg.burst_growth
        if version == cfg.quiet_version:
            return cfg.quiet_growth
        return cfg.growth

    def _evolve(self, db: RelationalDatabase, version: int) -> RelationalDatabase:
        cfg = self.config
        rng = self._rng
        new = db.copy()
        quiet = version == cfg.quiet_version
        churn = cfg.delete_fraction * (0.1 if quiet else 1.0)
        update_fraction = cfg.update_fraction * (0.05 if quiet else 1.0)

        # Deletions: retire some ligands and targets with their interactions.
        for table in ("ligand", "target", "reference"):
            for key in sample_fraction(rng, sorted(new.keys(table)), churn):
                delete_with_referents(new, table, key)

        # Re-curation churn: the burst replaces ligands by successors under
        # fresh keys (see _replace_ligand).
        if version == cfg.burst_version:
            replace_fraction = cfg.delete_fraction * cfg.burst_delete_multiplier
            for key in sample_fraction(rng, sorted(new.keys("ligand")), replace_fraction):
                if new.get("ligand", key) is not None:
                    self._replace_ligand(new, key)

        # Updates: curation-style edits on text columns and affinities.
        for key in sample_fraction(rng, sorted(new.keys("ligand")), update_fraction):
            row = new.get("ligand", key)
            assert row is not None
            new.update("ligand", key, {"name": curation_edit(rng, row["name"], PHARMA_WORDS)})
        for key in sample_fraction(rng, sorted(new.keys("target")), update_fraction):
            row = new.get("target", key)
            assert row is not None
            new.update("target", key, {"name": curation_edit(rng, row["name"], PHARMA_WORDS)})
        for key in sample_fraction(rng, sorted(new.keys("interaction")), update_fraction / 2):
            new.update(
                "interaction",
                key,
                {"affinity": Decimal(f"{rng.uniform(4.0, 11.0):.2f}")},
            )

        # Insertions: grow every table proportionally.
        growth = self._growth_for(version)
        for table in self._schema.table_names:
            additions = int(new.count(table) * growth)
            inserter = self._INSERTERS[table]
            for _ in range(additions):
                inserter(self, new)
        return new

    def databases(self) -> list[RelationalDatabase]:
        """All versions of the relational database (computed once)."""
        if self._databases is None:
            versions = [self._initial_database()]
            for version in range(2, self.config.versions + 1):
                versions.append(self._evolve(versions[-1], version))
            self._databases = versions
        return self._databases

    # ------------------------------------------------------------------
    # RDF exports and ground truth
    # ------------------------------------------------------------------
    def base_prefix(self, version_index: int) -> str:
        """The per-version URI prefix (1-based version numbers)."""
        return f"http://gtopdb.example.org/ver{version_index + 1}/"

    def export(self, version_index: int) -> tuple[RDFGraph, dict[EntityKey, object]]:
        """The RDF export and entity map of one version (0-based index)."""
        if version_index not in self._exports:
            database = self.databases()[version_index]
            self._exports[version_index] = direct_mapping(
                database, self.base_prefix(version_index)
            )
        return self._exports[version_index]

    def graph(self, version_index: int) -> RDFGraph:
        return self.export(version_index)[0]

    def graphs(self) -> list[RDFGraph]:
        return [self.graph(i) for i in range(self.config.versions)]

    def ground_truth(self, source_index: int, target_index: int) -> GroundTruth:
        """Entity correspondence between two versions.

        Persistent keys pair the minted URIs (rows, tables, attributes,
        references); nodes carrying the *same label* in both versions —
        literal values and version-independent vocabulary like ``rdf:type``
        — are identical by definition and are paired with themselves.
        """
        source_graph, source_entities = self.export(source_index)
        target_graph, target_entities = self.export(target_index)
        pairs = {
            source_entities[key]: target_entities[key]
            for key in sorted(source_entities.keys() & target_entities.keys())
        }
        for node in sorted(
            source_graph.literals() | source_graph.uris(), key=repr
        ):
            if node in target_graph and node not in pairs:
                pairs[node] = node
        return GroundTruth(pairs)

    def combined(self, source_index: int, target_index: int) -> tuple[CombinedGraph, GroundTruth]:
        """The combined graph and ground truth of a version pair."""
        return (
            combine(self.graph(source_index), self.graph(target_index)),
            self.ground_truth(source_index, target_index),
        )
