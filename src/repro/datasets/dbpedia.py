"""A DBpedia-category-like growing graph family (paper Figure 16).

The scalability experiment runs the alignment methods on six versions of a
DBpedia subset with Wikipedia category information — a SKOS-style category
hierarchy (``skos:broader``) plus article categorization
(``dct:subject``) and labels.  Figure 16 only measures *running time
against input size*, so the substitute only needs the same growth profile
and node-type mix: categories ≈ a tree with cross-links, articles with 1–3
subjects, label literals on everything, versions growing by roughly 10 %
per step (the paper's graphs grow from 2.6M to 4.2M nodes; ``scale=1.0``
here produces thousands of nodes — pass a larger scale to stress it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..model.labels import URI
from ..model.namespaces import (
    DCT_SUBJECT,
    Namespace,
    RDFS_LABEL,
    SKOS_BROADER,
    SKOS_PREF_LABEL,
)
from ..model.rdf import RDFGraph, lit
from ..model.union import CombinedGraph, combine
from .ground_truth import GroundTruth
from .mutations import make_name, sample_fraction

CATEGORY = Namespace("http://dbpedia.example.org/category/")
RESOURCE = Namespace("http://dbpedia.example.org/resource/")

TOPIC_WORDS = (
    "history geography science physics chemistry biology mathematics "
    "music art literature film sport football politics economics law "
    "medicine engineering computing software language culture religion "
    "philosophy education military transport architecture astronomy "
    "geology ecology zoology botany people births deaths cities rivers "
    "mountains islands countries companies universities museums awards "
    "novels albums songs games elections treaties battles dynasties"
).split()


@dataclass(frozen=True)
class DBpediaConfig:
    """Generation parameters (counts are at ``scale = 1.0``)."""

    scale: float = 1.0
    versions: int = 6
    seed: int = 30
    initial_categories: int = 300
    initial_articles: int = 900
    growth: float = 0.10
    relabel_fraction: float = 0.01
    extra_broader_probability: float = 0.3

    def scaled(self, count: int) -> int:
        return max(5, int(count * self.scale))


@dataclass
class _Category:
    entity: int
    name: str
    parents: tuple[int, ...]
    born: int


@dataclass
class _Article:
    entity: int
    name: str
    subjects: tuple[int, ...]
    born: int


class DBpediaCategoryGenerator:
    """Generates the six growing category-graph versions."""

    def __init__(self, scale: float = 1.0, seed: int = 30, versions: int = 6,
                 config: DBpediaConfig | None = None) -> None:
        if config is None:
            config = DBpediaConfig(scale=scale, seed=seed, versions=versions)
        self.config = config
        self._rng = random.Random(config.seed)
        self._categories: list[_Category] = []
        self._articles: list[_Article] = []
        self._built = False
        self._graphs: dict[int, RDFGraph] = {}

    @classmethod
    def shared(cls, scale: float = 1.0, seed: int = 30,
               versions: int = 6) -> "DBpediaCategoryGenerator":
        """The process-wide memoized generator for this configuration."""
        from .registry import shared_generator

        return shared_generator(cls, scale=scale, seed=seed, versions=versions)

    # ------------------------------------------------------------------
    def _new_category(self, entity: int, born: int) -> _Category:
        rng = self._rng
        parents: tuple[int, ...] = ()
        if self._categories:
            count = 1 + (rng.random() < self.config.extra_broader_probability)
            parents = tuple(
                sorted({rng.choice(self._categories).entity for _ in range(count)})
            )
        return _Category(
            entity=entity,
            name=make_name(rng, TOPIC_WORDS, rng.choice((1, 2, 2, 3))).title(),
            parents=parents,
            born=born,
        )

    def _new_article(self, entity: int, born: int) -> _Article:
        rng = self._rng
        subjects = tuple(
            sorted({rng.choice(self._categories).entity for _ in range(rng.choice((1, 1, 2, 3)))})
        )
        return _Article(
            entity=entity,
            name=make_name(rng, TOPIC_WORDS, rng.choice((2, 3, 4))).title(),
            subjects=subjects,
            born=born,
        )

    def _build(self) -> None:
        if self._built:
            return
        cfg = self.config
        for index in range(cfg.scaled(cfg.initial_categories)):
            self._categories.append(self._new_category(index, born=1))
        for index in range(cfg.scaled(cfg.initial_articles)):
            self._articles.append(self._new_article(index, born=1))
        for version in range(2, cfg.versions + 1):
            new_categories = int(len(self._categories) * cfg.growth)
            for _ in range(new_categories):
                self._categories.append(
                    self._new_category(len(self._categories), born=version)
                )
            new_articles = int(len(self._articles) * cfg.growth)
            for _ in range(new_articles):
                self._articles.append(
                    self._new_article(len(self._articles), born=version)
                )
        self._built = True

    # ------------------------------------------------------------------
    def category_uri(self, category: _Category) -> URI:
        return CATEGORY[f"Cat{category.entity}"]

    def article_uri(self, article: _Article) -> URI:
        return RESOURCE[f"Page{article.entity}"]

    def graph(self, version_index: int) -> RDFGraph:
        """The category graph of one version (0-based index)."""
        if version_index in self._graphs:
            return self._graphs[version_index]
        self._build()
        version = version_index + 1
        graph = RDFGraph()
        alive_categories = {
            c.entity: c for c in self._categories if c.born <= version
        }
        for category in alive_categories.values():
            subject = self.category_uri(category)
            graph.add(subject, SKOS_PREF_LABEL, lit(category.name))
            for parent in category.parents:
                if parent in alive_categories:
                    graph.add(
                        subject,
                        SKOS_BROADER,
                        self.category_uri(alive_categories[parent]),
                    )
        for article in self._articles:
            if article.born > version:
                continue
            subject = self.article_uri(article)
            graph.add(subject, RDFS_LABEL, lit(article.name))
            for target in article.subjects:
                if target in alive_categories:
                    graph.add(
                        subject,
                        DCT_SUBJECT,
                        self.category_uri(alive_categories[target]),
                    )
        self._graphs[version_index] = graph
        return graph

    def graphs(self) -> list[RDFGraph]:
        return [self.graph(i) for i in range(self.config.versions)]

    def ground_truth(self, source_index: int, target_index: int) -> GroundTruth:
        """Identity correspondence — DBpedia URIs are stable here.

        Figure 16 measures time, not accuracy; the ground truth is provided
        for completeness (it is simply label equality on shared URIs).
        """
        self._build()
        source_graph = self.graph(source_index)
        target_graph = self.graph(target_index)
        pairs = {}
        for node in source_graph.uris():
            if node in target_graph:
                pairs[node] = node
        return GroundTruth(pairs)

    def combined(self, source_index: int, target_index: int) -> tuple[CombinedGraph, GroundTruth]:
        return (
            combine(self.graph(source_index), self.graph(target_index)),
            self.ground_truth(source_index, target_index),
        )
