"""Seeded synthetic evolution workloads: parameterized graphs + mutations.

The paper evaluates alignment on three curated dataset histories (EFO,
GtoPdb, DBpedia).  This module turns "scenario diversity" into a
generated, reproducible surface instead of a manual fixture chore:

* :class:`SyntheticConfig` describes a whole multi-version history —
  base-graph *shape* (Erdős–Rényi, preferential-attachment scale-free,
  star/chain/cycle/DAG motifs), blank-node density, a literal noise
  model, namespace skew — plus per-step rates for the composable
  mutation operators (rename, split/merge nodes, edge rewires, literal
  edits, subtree inserts/deletes);
* :class:`SyntheticGenerator` renders the history as :class:`~repro.
  model.rdf.RDFGraph` versions with a ground-truth alignment carried
  through every mutation step, exposing the same surface as the curated
  generators (``graph``/``entities``/``ground_truth``/``combined`` and a
  memoized ``shared()``), so the :class:`~repro.experiments.store.
  VersionStore` and the parallel runner work unchanged;
* :data:`SCENARIOS` names the pinned seed matrix the differential oracle
  (:mod:`repro.testing.differential`) runs in CI.

Everything is a pure function of the config: two generators built from
equal configs produce byte-identical N-Triples dumps, in any process,
with any hash seed — that is what makes a failing differential case
reproducible from its config JSON alone (see ``docs/synthetic.md``).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Sequence, Union

from ..exceptions import ConfigError
from ..model.labels import URI
from ..model.rdf import BlankNode, RDFGraph, Term, lit
from ..model.union import CombinedGraph, combine
from .ground_truth import GroundTruth
from .mutations import curation_edit, make_name, sample_fraction

#: Base-graph shapes (the Rau et al. efficiency study shows engine
#: behavior diverges across *shapes*, not just sizes).
SHAPES: tuple[str, ...] = (
    "erdos_renyi",
    "scale_free",
    "star",
    "chain",
    "cycle",
    "dag",
)

#: The composable mutation operators, in the order one evolution step
#: applies them.
MUTATIONS: tuple[str, ...] = (
    "rename",
    "split",
    "merge",
    "rewire",
    "literal_edit",
    "insert",
    "delete",
)

#: Word pool for generated literal values (multi-word names give the
#: overlap literal round realistic word sets).
SYNTH_WORDS: tuple[str, ...] = tuple(
    "alpha beta gamma delta epsilon zeta theta kappa lambda sigma "
    "node edge graph version record entry value label index shard "
    "north south east west upper lower inner outer primary shadow "
    "red green blue amber violet copper silver golden slate ivory".split()
)

_FIELD_NAMES: frozenset[str] | None = None


@dataclass(frozen=True)
class SyntheticConfig:
    """A validated, immutable description of one synthetic history.

    Counts are at ``scale = 1.0``; every parameter is part of the
    identity of the generated history (and of the ``shared()`` memo
    key).  Mutation parameters are per-step fractions of the applicable
    population; a config with every mutation rate at zero (see
    :meth:`identity`) evolves by blank-identifier reshuffling alone.
    """

    shape: str = "erdos_renyi"
    scale: float = 1.0
    seed: int = 7
    versions: int = 4

    # -- base graph -----------------------------------------------------
    entities: int = 40
    edge_factor: float = 2.0
    blank_density: float = 0.2
    literal_density: float = 0.8
    literal_words: int = 3
    namespace_count: int = 3
    namespace_skew: float = 1.0
    predicates: int = 8

    # -- literal noise model --------------------------------------------
    #: Fraction of literal values replaced wholesale each step (fresh
    #: unrelated text, not a curation edit) — the "noisy export" regime.
    literal_noise: float = 0.0

    # -- mutation operator rates (per evolution step) -------------------
    rename_fraction: float = 0.1
    split_fraction: float = 0.0
    merge_fraction: float = 0.0
    rewire_fraction: float = 0.05
    literal_edit_fraction: float = 0.1
    insert_fraction: float = 0.05
    delete_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ConfigError(
                f"unknown shape {self.shape!r}; expected one of {SHAPES}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.versions, int) or self.versions < 1:
            raise ConfigError(
                f"versions must be a positive integer, got {self.versions!r}"
            )
        for name in ("scale", "edge_factor"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigError(f"{name} must be positive, got {value!r}")
        if not isinstance(self.entities, int) or self.entities < 2:
            raise ConfigError(
                f"entities must be an integer >= 2, got {self.entities!r}"
            )
        for name in ("namespace_count", "predicates", "literal_words"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.namespace_skew, (int, float)) or self.namespace_skew < 0:
            raise ConfigError(
                f"namespace_skew must be >= 0, got {self.namespace_skew!r}"
            )
        for name in (
            "blank_density",
            "literal_density",
            "literal_noise",
            "rename_fraction",
            "split_fraction",
            "merge_fraction",
            "rewire_fraction",
            "literal_edit_fraction",
            "insert_fraction",
            "delete_fraction",
        ):
            value = getattr(self, name)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not 0.0 <= value <= 1.0
            ):
                raise ConfigError(
                    f"{name} must be a fraction in [0, 1], got {value!r}"
                )

    # ------------------------------------------------------------------
    def evolve(self, **changes) -> "SyntheticConfig":
        """A new config with *changes* applied (and re-validated)."""
        global _FIELD_NAMES
        if _FIELD_NAMES is None:
            _FIELD_NAMES = frozenset(
                f.name for f in dataclasses.fields(SyntheticConfig)
            )
        unknown = set(changes) - _FIELD_NAMES
        if unknown:
            raise ConfigError(
                f"unknown config field(s) {tuple(sorted(unknown))}; "
                f"expected a subset of {tuple(sorted(_FIELD_NAMES))}"
            )
        return dataclasses.replace(self, **changes)

    @classmethod
    def identity(cls, **overrides) -> "SyntheticConfig":
        """A config whose evolution steps change nothing but blank names.

        Every mutation rate and the literal noise are zero, so each
        version is the same graph with reshuffled blank identifiers —
        the metamorphic baseline: aligning consecutive versions must
        reproduce the identity alignment.
        """
        zeros = {
            "literal_noise": 0.0,
            "rename_fraction": 0.0,
            "split_fraction": 0.0,
            "merge_fraction": 0.0,
            "rewire_fraction": 0.0,
            "literal_edit_fraction": 0.0,
            "insert_fraction": 0.0,
            "delete_fraction": 0.0,
        }
        zeros.update(overrides)
        return cls(**zeros)

    def scaled(self, count: int) -> int:
        return max(2, int(count * self.scale))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-friendly rendering (all fields are primitives)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SyntheticConfig":
        """Rebuild a config from :meth:`to_dict` output (validated).

        This is the reproduction path for a failing differential case:
        the CI artifact carries the config JSON, ``from_dict`` + the
        seed rebuild the exact history.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"synthetic config payload must be an object, "
                f"got {type(payload).__name__}"
            )
        return cls().evolve(**payload)


#: Pinned seed matrix for the differential oracle (satellite scenarios:
#: small ER, scale-free, blank-heavy, cycle-heavy, literal-noise,
#: mutation-chain).  Sizes are deliberately small — the oracle's value
#: is the method × engine × jobs cross product, not graph scale.
SCENARIOS: dict[str, SyntheticConfig] = {
    "small_er": SyntheticConfig(
        shape="erdos_renyi", entities=20, versions=3, seed=101
    ),
    "scale_free": SyntheticConfig(
        shape="scale_free", entities=26, versions=3, seed=202,
        namespace_skew=1.5,
    ),
    "blank_heavy": SyntheticConfig(
        shape="erdos_renyi", entities=22, versions=3, seed=303,
        blank_density=0.6,
    ),
    "cycle_heavy": SyntheticConfig(
        shape="cycle", entities=24, versions=3, seed=404,
        rewire_fraction=0.08,
    ),
    "literal_noise": SyntheticConfig(
        shape="dag", entities=22, versions=3, seed=505,
        literal_noise=0.25, literal_edit_fraction=0.3,
    ),
    "mutation_chain": SyntheticConfig(
        shape="star", entities=24, versions=4, seed=606,
        rename_fraction=0.2, split_fraction=0.08, merge_fraction=0.08,
        rewire_fraction=0.1, insert_fraction=0.1, delete_fraction=0.06,
    ),
}


# ----------------------------------------------------------------------
# The evolving world model
# ----------------------------------------------------------------------
#: An edge object: another entity (by key) or a literal value.
_EntityRef = tuple[str, Union[int, str]]  # ("e", key) | ("l", value)


@dataclass
class _Entity:
    """One entity, persistent across versions under a stable key."""

    key: int
    blank: bool
    namespace: int
    local: str


@dataclass
class _State:
    """One version's world state (entities + edges over keys)."""

    entities: dict[int, _Entity]
    #: Deterministically ordered; a list (not a set) so that sampling
    #: draws are independent of hash seeds.
    edges: list[tuple[int, int, _EntityRef]]

    def clone(self) -> "_State":
        return _State(
            entities={
                key: dataclasses.replace(entity)
                for key, entity in self.entities.items()
            },
            edges=list(self.edges),
        )


def _skewed_weights(count: int, skew: float) -> list[float]:
    """Zipf-style weights: ``skew = 0`` is uniform, larger skews harder."""
    return [1.0 / (index + 1) ** skew for index in range(count)]


class SyntheticGenerator:
    """Renders one :class:`SyntheticConfig` as an evolving RDF history.

    The full history is built eagerly (and deterministically) on first
    access; every version's graph, entity map and pairwise ground truth
    derive from it.  The surface matches the curated generators
    (:class:`~repro.datasets.efo.EFOGenerator` et al.), so a
    ``SyntheticGenerator`` drops into the
    :class:`~repro.experiments.store.VersionStore`, the parallel
    experiment runner and the session API unchanged.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 7,
        versions: int = 4,
        config: SyntheticConfig | None = None,
        shape: str = "erdos_renyi",
    ) -> None:
        if config is None:
            config = SyntheticConfig(
                shape=shape, scale=scale, seed=seed, versions=versions
            )
        self.config = config
        self._states: list[_State] | None = None
        self._graphs: dict[int, RDFGraph] = {}
        self._entities: dict[int, dict[int, Term]] = {}
        self._next_key = 0

    @classmethod
    def shared(
        cls,
        config: SyntheticConfig | None = None,
        **kwargs,
    ) -> "SyntheticGenerator":
        """The process-wide memoized generator for this configuration.

        Accepts either a full :class:`SyntheticConfig` or its keyword
        fields; the memo key is the complete config, so every distinct
        scenario gets exactly one instance per process (which is what
        lets the ``VersionStore`` and forked parallel workers share it).
        """
        from .registry import shared_instance

        if config is None:
            config = SyntheticConfig(**kwargs)
        elif kwargs:
            config = config.evolve(**kwargs)
        key = (cls.__qualname__,) + dataclasses.astuple(config)
        return shared_instance(key, lambda: cls(config=config))

    # ------------------------------------------------------------------
    # History construction
    # ------------------------------------------------------------------
    def _namespace(self, index: int) -> str:
        return f"http://synth.example.org/ns{index}/"

    def _predicate(self, index: int) -> URI:
        return URI(f"http://synth.example.org/vocab/p{index}")

    def _fresh_entity(self, rng: random.Random, blank: bool) -> _Entity:
        cfg = self.config
        key = self._next_key
        self._next_key += 1
        namespace = rng.choices(
            range(cfg.namespace_count),
            weights=_skewed_weights(cfg.namespace_count, cfg.namespace_skew),
        )[0]
        # The key is embedded in the local name, so renames can never
        # collide two entities onto one URI label.
        local = f"e{key}-{rng.randrange(1_000_000):06d}"
        return _Entity(key=key, blank=blank, namespace=namespace, local=local)

    def _pick_predicate(self, rng: random.Random) -> int:
        cfg = self.config
        return rng.choices(
            range(cfg.predicates),
            weights=_skewed_weights(cfg.predicates, cfg.namespace_skew),
        )[0]

    def _literal_value(self, rng: random.Random) -> str:
        return make_name(rng, SYNTH_WORDS, self.config.literal_words)

    def _shape_edges(
        self, rng: random.Random, keys: Sequence[int]
    ) -> list[tuple[int, int]]:
        """``(subject_key, object_key)`` pairs of the base structure."""
        cfg = self.config
        count = len(keys)
        edges: list[tuple[int, int]] = []
        if cfg.shape == "erdos_renyi":
            target = int(cfg.edge_factor * count)
            for _ in range(target):
                edges.append((rng.choice(keys), rng.choice(keys)))
        elif cfg.shape == "scale_free":
            # Barabási–Albert preferential attachment: endpoints are drawn
            # from a degree-weighted urn (every edge re-deposits both ends).
            attach = max(1, int(cfg.edge_factor / 2))
            urn: list[int] = list(keys[:2])
            for key in keys[1:]:
                for _ in range(attach):
                    other = rng.choice(urn)
                    if other != key:
                        edges.append((key, other))
                    urn.extend((key, other))
        elif cfg.shape == "star":
            hubs = list(keys[: max(1, count // 8)])
            for key in keys:
                if key in hubs:
                    continue
                edges.append((rng.choice(hubs), key))
        elif cfg.shape == "chain":
            for first, second in zip(keys, keys[1:]):
                edges.append((first, second))
        elif cfg.shape == "cycle":
            ring = max(3, min(8, count))
            for start in range(0, count, ring):
                members = keys[start:start + ring]
                if len(members) < 2:
                    edges.append((members[0], keys[0]))
                    continue
                for first, second in zip(members, members[1:]):
                    edges.append((first, second))
                edges.append((members[-1], members[0]))
        elif cfg.shape == "dag":
            # Layered random DAG: edges only point forward in key order.
            for index, key in enumerate(keys[:-1]):
                fanout = max(1, int(cfg.edge_factor / 2))
                for _ in range(fanout):
                    target_index = rng.randrange(index + 1, count)
                    edges.append((key, keys[target_index]))
        else:  # pragma: no cover - SHAPES is validated at config time
            raise ConfigError(f"unknown shape {cfg.shape!r}")
        return edges

    def _base_state(self, rng: random.Random) -> _State:
        cfg = self.config
        count = cfg.scaled(cfg.entities)
        entities: dict[int, _Entity] = {}
        keys: list[int] = []
        for _ in range(count):
            entity = self._fresh_entity(rng, blank=rng.random() < cfg.blank_density)
            entities[entity.key] = entity
            keys.append(entity.key)
        edges: list[tuple[int, int, _EntityRef]] = []
        for subject, obj in self._shape_edges(rng, keys):
            edges.append((subject, self._pick_predicate(rng), ("e", obj)))
        # Literal properties: on average ``literal_density`` per entity.
        for key in keys:
            while rng.random() < cfg.literal_density:
                edges.append(
                    (key, self._pick_predicate(rng), ("l", self._literal_value(rng)))
                )
                if rng.random() < 0.6:
                    break
        return _State(entities=entities, edges=edges)

    # -- mutation operators ---------------------------------------------
    def _op_rename(self, state: _State, rng: random.Random) -> None:
        """Fresh local names (and sometimes namespaces) for some URIs."""
        cfg = self.config
        uris = [e for e in self._ordered_entities(state) if not e.blank]
        for entity in sample_fraction(rng, uris, cfg.rename_fraction):
            entity.local = f"e{entity.key}-{rng.randrange(1_000_000):06d}"
            if rng.random() < 0.3:
                entity.namespace = rng.randrange(cfg.namespace_count)

    def _op_split(self, state: _State, rng: random.Random) -> None:
        """Split a node: the original keeps part of its out-edges, a
        fresh entity takes the rest (plus a copy of each in-edge)."""
        cfg = self.config
        candidates = [
            e for e in self._ordered_entities(state)
            if len([edge for edge in state.edges if edge[0] == e.key]) >= 2
        ]
        for entity in sample_fraction(rng, candidates, cfg.split_fraction):
            twin = self._fresh_entity(rng, blank=entity.blank)
            state.entities[twin.key] = twin
            moved = 0
            edges: list[tuple[int, int, _EntityRef]] = []
            for subject, predicate, obj in state.edges:
                if subject == entity.key and rng.random() < 0.5:
                    edges.append((twin.key, predicate, obj))
                    moved += 1
                else:
                    edges.append((subject, predicate, obj))
                if obj == ("e", entity.key) and rng.random() < 0.5:
                    edges.append((subject, predicate, ("e", twin.key)))
            if not moved:  # keep the twin observable
                edges.append(
                    (twin.key, self._pick_predicate(rng),
                     ("l", self._literal_value(rng)))
                )
            state.edges = edges

    def _op_merge(self, state: _State, rng: random.Random) -> None:
        """Merge node pairs: the absorbed entity's edges re-point to the
        survivor and the absorbed key retires (no ground-truth partner)."""
        cfg = self.config
        ordered = self._ordered_entities(state)
        victims = sample_fraction(rng, ordered, cfg.merge_fraction)
        for victim in victims:
            if victim.key not in state.entities or len(state.entities) < 3:
                continue
            survivors = [
                e for e in self._ordered_entities(state)
                if e.key != victim.key and e.blank == victim.blank
            ]
            if not survivors:
                continue
            survivor = rng.choice(survivors)
            state.edges = [
                (
                    survivor.key if subject == victim.key else subject,
                    predicate,
                    ("e", survivor.key) if obj == ("e", victim.key) else obj,
                )
                for subject, predicate, obj in state.edges
            ]
            del state.entities[victim.key]

    def _op_rewire(self, state: _State, rng: random.Random) -> None:
        """Re-point some entity-to-entity edges at fresh random targets."""
        cfg = self.config
        keys = sorted(state.entities)
        indices = [
            index for index, edge in enumerate(state.edges) if edge[2][0] == "e"
        ]
        for index in sample_fraction(rng, indices, cfg.rewire_fraction):
            subject, predicate, _ = state.edges[index]
            state.edges[index] = (subject, predicate, ("e", rng.choice(keys)))

    def _op_literal_edit(self, state: _State, rng: random.Random) -> None:
        """Curation edits plus the wholesale-replacement noise model."""
        cfg = self.config
        indices = [
            index for index, edge in enumerate(state.edges) if edge[2][0] == "l"
        ]
        for index in sample_fraction(rng, indices, cfg.literal_edit_fraction):
            subject, predicate, (_, value) = state.edges[index]
            edited = curation_edit(rng, value, SYNTH_WORDS)
            state.edges[index] = (subject, predicate, ("l", edited))
        for index in sample_fraction(rng, indices, cfg.literal_noise):
            subject, predicate, _ = state.edges[index]
            state.edges[index] = (
                subject, predicate, ("l", self._literal_value(rng))
            )

    def _op_insert(self, state: _State, rng: random.Random) -> None:
        """Insert subtrees: a fresh entity wired to an existing one, with
        a blank record child (the EFO citation motif)."""
        cfg = self.config
        anchors = sorted(state.entities)
        count = int(len(anchors) * cfg.insert_fraction)
        for _ in range(count):
            entity = self._fresh_entity(rng, blank=False)
            state.entities[entity.key] = entity
            state.edges.append(
                (rng.choice(anchors), self._pick_predicate(rng), ("e", entity.key))
            )
            record = self._fresh_entity(rng, blank=True)
            state.entities[record.key] = record
            state.edges.append(
                (entity.key, self._pick_predicate(rng), ("e", record.key))
            )
            for _ in range(2):
                state.edges.append(
                    (record.key, self._pick_predicate(rng),
                     ("l", self._literal_value(rng)))
                )

    def _op_delete(self, state: _State, rng: random.Random) -> None:
        """Delete subtrees: an entity disappears with every touching edge."""
        cfg = self.config
        ordered = self._ordered_entities(state)
        for victim in sample_fraction(rng, ordered, cfg.delete_fraction):
            if len(state.entities) < 4:
                break
            del state.entities[victim.key]
            state.edges = [
                (subject, predicate, obj)
                for subject, predicate, obj in state.edges
                if subject != victim.key and obj != ("e", victim.key)
            ]

    def _ordered_entities(self, state: _State) -> list[_Entity]:
        return [state.entities[key] for key in sorted(state.entities)]

    def _evolve(self, state: _State, step: int) -> _State:
        """One evolution step: all operators at their configured rates.

        A per-step RNG stream keeps every step's draws independent of
        the others, so changing one rate perturbs only the operator it
        parameterizes.
        """
        rng = random.Random(self.config.seed * 9973 + step)
        state = state.clone()
        self._op_rename(state, rng)
        self._op_split(state, rng)
        self._op_merge(state, rng)
        self._op_rewire(state, rng)
        self._op_literal_edit(state, rng)
        self._op_insert(state, rng)
        self._op_delete(state, rng)
        return state

    def _build(self) -> list[_State]:
        if self._states is None:
            self._next_key = 0
            rng = random.Random(self.config.seed)
            states = [self._base_state(rng)]
            for step in range(1, self.config.versions):
                states.append(self._evolve(states[-1], step))
            self._states = states
        return self._states

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _term_of(self, entity: _Entity, version_index: int) -> Term:
        if entity.blank:
            # Per-version blank identifiers: reshuffled wholesale, the
            # paper's first change driver (and why deblanking exists).
            return BlankNode(f"v{version_index + 1}-b{entity.key}")
        return URI(self._namespace(entity.namespace) + entity.local)

    def graph(self, version_index: int) -> RDFGraph:
        """The RDF graph of one version (0-based index)."""
        cached = self._graphs.get(version_index)
        if cached is not None:
            return cached
        states = self._build()
        if not 0 <= version_index < len(states):
            raise ConfigError(
                f"version index {version_index} outside "
                f"[0, {self.config.versions})"
            )
        state = states[version_index]
        graph = RDFGraph()
        entities: dict[int, Term] = {}
        present: set[int] = set()
        for subject, _, obj in state.edges:
            present.add(subject)
            if obj[0] == "e":
                present.add(obj[1])
        for key in sorted(present):
            entity = state.entities.get(key)
            if entity is not None:
                entities[key] = self._term_of(entity, version_index)
        for subject, predicate, obj in state.edges:
            subject_term = entities.get(subject)
            if subject_term is None:
                continue
            if obj[0] == "l":
                object_term: Term = lit(obj[1])
            else:
                object_term = entities.get(obj[1])  # type: ignore[assignment]
                if object_term is None:
                    continue
            graph.add(subject_term, self._predicate(predicate), object_term)
        self._graphs[version_index] = graph
        self._entities[version_index] = entities
        return graph

    def graphs(self) -> list[RDFGraph]:
        return [self.graph(i) for i in range(self.config.versions)]

    def entities(self, version_index: int) -> dict[int, Term]:
        """Entity key → term map of one version (URIs and blanks)."""
        self.graph(version_index)
        return self._entities[version_index]

    def ground_truth(self, source_index: int, target_index: int) -> GroundTruth:
        """The carried alignment: keys present in both versions."""
        return GroundTruth.from_entity_maps(
            self.entities(source_index), self.entities(target_index)
        )

    def version_changes(self, index: int):
        """The identity-preserving delta from version *index* to the next.

        Renames come from the shared entity keys — blank identifiers
        reshuffle wholesale every version and URIs move under the rename
        operator, so a persistent entity appears as a rename instead of
        a removal plus an insertion.  This is what keeps incremental
        maintenance (:mod:`repro.core.maintain`) proportional to the
        real change: ``version_changes(i).apply(graph(i))`` reproduces
        ``graph(i + 1)`` exactly.
        """
        from ..delta.changes import diff

        before = self.graph(index)
        after = self.graph(index + 1)
        first = self.entities(index)
        second = self.entities(index + 1)
        renames = {
            first[key]: second[key]
            for key in sorted(first.keys() & second.keys())
            if first[key] != second[key]
        }
        return diff(before, after, renames=renames)

    def combined(
        self, source_index: int, target_index: int
    ) -> tuple[CombinedGraph, GroundTruth]:
        return (
            combine(self.graph(source_index), self.graph(target_index)),
            self.ground_truth(source_index, target_index),
        )

    def __repr__(self) -> str:
        return f"SyntheticGenerator({self.config!r})"


# ----------------------------------------------------------------------
# Dataset-family integration (VersionStore / parallel runner)
# ----------------------------------------------------------------------
class SyntheticFamily:
    """Adapter giving one shape the curated generators' family surface.

    :meth:`~repro.experiments.store.VersionStore.shared` resolves a
    family name to a factory and calls ``factory.shared(scale=, seed=,
    versions=)``; an instance of this class is that factory for one
    shape, so ``VersionStore.shared("synthetic_scale_free", ...)`` works
    exactly like the curated ``"efo"``/``"gtopdb"``/``"dbpedia"``.
    """

    def __init__(self, shape: str) -> None:
        if shape not in SHAPES:
            raise ConfigError(
                f"unknown shape {shape!r}; expected one of {SHAPES}"
            )
        self.shape = shape

    def shared(
        self, scale: float = 1.0, seed: int = 7, versions: int = 4
    ) -> SyntheticGenerator:
        return SyntheticGenerator.shared(
            SyntheticConfig(
                shape=self.shape,
                scale=float(scale),
                seed=int(seed),
                versions=int(versions),
            )
        )

    def __call__(
        self, scale: float = 1.0, seed: int = 7, versions: int = 4
    ) -> SyntheticGenerator:
        return SyntheticGenerator(
            config=SyntheticConfig(
                shape=self.shape,
                scale=float(scale),
                seed=int(seed),
                versions=int(versions),
            )
        )


#: ``family name -> factory`` for every shape, merged into
#: :data:`repro.experiments.store.GENERATOR_FAMILIES`.
SHAPE_FAMILIES: dict[str, SyntheticFamily] = {
    f"synthetic_{shape}": SyntheticFamily(shape) for shape in SHAPES
}


def relabel_uris(graph: RDFGraph, prefix: str = "http://relabel.invalid/r") -> RDFGraph:
    """A copy of *graph* with every URI mapped through a fresh bijection.

    URI values are replaced (in sorted order, so the bijection is
    deterministic) by fresh opaque names; blanks and literals are kept.
    The metamorphic tests use this: bisimulation partition block sizes
    are invariant under any label bijection.
    """
    uris = sorted(
        {
            term.value
            for triple in graph.triples()
            for term in triple
            if isinstance(term, URI)
        }
    )
    mapping = {value: URI(f"{prefix}{index}") for index, value in enumerate(uris)}

    def carry(term: Term) -> Term:
        if isinstance(term, URI):
            return mapping[term.value]
        return term

    relabeled = RDFGraph()
    for subject, predicate, obj in graph.triples():
        relabeled.add(carry(subject), carry(predicate), carry(obj))
    return relabeled


def history_stats(generator: SyntheticGenerator) -> list[dict]:
    """Per-version node/edge/blank counts (manifest + doc examples)."""
    rows = []
    for index in range(generator.config.versions):
        graph = generator.graph(index)
        stats = graph.stats()
        rows.append(
            {
                "version": index + 1,
                "nodes": stats.num_nodes,
                "edges": stats.num_edges,
                "blanks": len(graph.blanks()),
            }
        )
    return rows


__all__ = [
    "MUTATIONS",
    "SCENARIOS",
    "SHAPES",
    "SHAPE_FAMILIES",
    "SYNTH_WORDS",
    "SyntheticConfig",
    "SyntheticFamily",
    "SyntheticGenerator",
    "history_stats",
    "relabel_uris",
]
