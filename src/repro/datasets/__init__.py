"""Synthetic evolving-RDF dataset generators with ground truth."""

from .dbpedia import DBpediaCategoryGenerator, DBpediaConfig
from .efo import EFOConfig, EFOGenerator, OntologyClass
from .ground_truth import GroundTruth
from .gtopdb import GtoPdbConfig, GtoPdbGenerator, gtopdb_schema
from .mutations import (
    curation_edit,
    edit_typo,
    edit_word,
    make_identifier,
    make_name,
    sample_fraction,
)
from .registry import (
    clear_shared_generators,
    shared_generator,
    shared_generator_count,
    shared_instance,
)
from .synthetic import (
    MUTATIONS,
    SCENARIOS,
    SHAPE_FAMILIES,
    SHAPES,
    SyntheticConfig,
    SyntheticFamily,
    SyntheticGenerator,
    relabel_uris,
)

__all__ = [
    "DBpediaCategoryGenerator",
    "DBpediaConfig",
    "EFOConfig",
    "EFOGenerator",
    "GroundTruth",
    "GtoPdbConfig",
    "GtoPdbGenerator",
    "MUTATIONS",
    "OntologyClass",
    "SCENARIOS",
    "SHAPES",
    "SHAPE_FAMILIES",
    "SyntheticConfig",
    "SyntheticFamily",
    "SyntheticGenerator",
    "clear_shared_generators",
    "curation_edit",
    "edit_typo",
    "edit_word",
    "gtopdb_schema",
    "make_identifier",
    "make_name",
    "relabel_uris",
    "sample_fraction",
    "shared_generator",
    "shared_generator_count",
    "shared_instance",
]
