"""Compact multi-version archives built from alignments (paper Section 6).

The paper closes with: *"One way of approaching this would be to decorate
triples with intervals that represent versions where the triple was
present.  Our preliminary observations suggest that triples tend to enter
and leave with their subject."*  This module realizes the idea:

1. consecutive versions are aligned (hybrid by default);
2. exactly-aligned nodes are chained into persistent *archive entities*
   via union-find over (version, node) occurrences;
3. every triple becomes an entity-level triple decorated with a
   :class:`~repro.archive.intervals.VersionInterval`;
4. per-version labels are stored once per change, also interval-decorated.

The archive reconstructs any version exactly (label-level isomorphism,
checked by tests), reports its compression against storing every version
separately, and measures the paper's *subject cohesion* observation — the
fraction of triples whose lifetime interval coincides with their
subject's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core.hybrid import hybrid_partition
from ..exceptions import ExperimentError
from ..model.graph import NodeId, TripleGraph
from ..model.labels import Label
from ..model.rdf import RDFGraph
from ..model.union import combine
from ..partition.alignment import PartitionAlignment
from ..partition.interner import ColorInterner
from .intervals import VersionInterval

#: An archive entity identifier.
EntityId = int


class _UnionFind:
    """Union-find over (version, node) occurrences."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, first: Hashable, second: Hashable) -> None:
        root_first = self.find(first)
        root_second = self.find(second)
        if root_first != root_second:
            self._parent[root_second] = root_first


@dataclass
class ArchiveStats:
    """Size accounting for the archive vs. naive per-version storage."""

    versions: int
    naive_triples: int
    archived_triples: int
    entities: int
    contiguous_fraction: float
    subject_cohesion: float

    @property
    def compression_ratio(self) -> float:
        """Naive triple count over archived triple count (higher is better)."""
        if self.archived_triples == 0:
            return 1.0
        return self.naive_triples / self.archived_triples


@dataclass
class VersionArchive:
    """Entity-level triples with version intervals, plus label history."""

    versions: int
    #: (subject entity, predicate entity, object entity) → presence interval.
    triples: dict[tuple[EntityId, EntityId, EntityId], VersionInterval]
    #: entity → label → versions in which the entity carried that label.
    labels: dict[EntityId, dict[Label, VersionInterval]]
    #: entity → interval of versions in which the entity occurs at all.
    lifetimes: dict[EntityId, VersionInterval] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graphs: Sequence[TripleGraph],
        align_pair=None,
    ) -> "VersionArchive":
        """Archive *graphs* (version 1 is ``graphs[0]``).

        *align_pair* maps a combined graph to a partition; the default runs
        the hybrid alignment followed by the predicate-aware refinement
        pass — without it, renamed predicate URIs (e.g. per-version
        direct-mapping exports) stay conflated in the blank sink cluster,
        no triple chains across versions and the archive degenerates to
        per-version storage.  Only *exact* matches (nodes whose partner set
        is a single node, mutually) chain entities — ambiguous classes stay
        version-local so reconstruction is always faithful.
        """
        if not graphs:
            raise ExperimentError("cannot archive an empty version sequence")
        if align_pair is None:
            from ..partition.weighted import zero_weighted
            from ..similarity.predicate_alignment import refine_predicates

            def align_pair(union):
                interner = ColorInterner()
                hybrid = hybrid_partition(union, interner)
                refined = refine_predicates(
                    union, zero_weighted(hybrid), interner, theta=0.5
                )
                return refined.partition

        chains = _UnionFind()
        for index in range(len(graphs) - 1):
            union = combine(graphs[index], graphs[index + 1])
            partition = align_pair(union)
            alignment = PartitionAlignment(union, partition)
            for sides in alignment.class_sides().values():
                if len(sides.source) == 1 and len(sides.target) == 1:
                    (source_node,) = sides.source
                    (target_node,) = sides.target
                    chains.union(
                        (index, union.original(source_node)),
                        (index + 1, union.original(target_node)),
                    )

        entity_of: dict[Hashable, EntityId] = {}

        def entity(version: int, node: NodeId) -> EntityId:
            root = chains.find((version, node))
            if root not in entity_of:
                entity_of[root] = len(entity_of)
            return entity_of[root]

        triples: dict[tuple[EntityId, EntityId, EntityId], VersionInterval] = {}
        labels: dict[EntityId, dict[Label, VersionInterval]] = {}
        lifetimes: dict[EntityId, VersionInterval] = {}
        for index, graph in enumerate(graphs):
            version = index + 1
            for node in graph.nodes():
                node_entity = entity(index, node)
                label = graph.label(node)
                labels.setdefault(node_entity, {}).setdefault(
                    label, VersionInterval()
                ).add(version)
                lifetimes.setdefault(node_entity, VersionInterval()).add(version)
            for subject, predicate, obj in graph.edges():
                key = (
                    entity(index, subject),
                    entity(index, predicate),
                    entity(index, obj),
                )
                triples.setdefault(key, VersionInterval()).add(version)
        return cls(
            versions=len(graphs),
            triples=triples,
            labels=labels,
            lifetimes=lifetimes,
        )

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def label_at(self, entity: EntityId, version: int) -> Label | None:
        """The label an entity carried in *version* (None if absent)."""
        for label, interval in self.labels.get(entity, {}).items():
            if version in interval:
                return label
        return None

    def reconstruct(self, version: int) -> TripleGraph:
        """Rebuild one version as a triple graph over entity identifiers.

        The result is label-isomorphic to the archived original: node
        identifiers are archive entities, labels and edges are exact.
        """
        if not 1 <= version <= self.versions:
            raise ExperimentError(
                f"version {version} outside the archive (1..{self.versions})"
            )
        graph = TripleGraph()
        for entity, interval in self.lifetimes.items():
            if version in interval:
                label = self.label_at(entity, version)
                assert label is not None, "entity alive without a label"
                graph.add_node(entity, label)
        for (subject, predicate, obj), interval in self.triples.items():
            if version in interval:
                graph.add_edge(subject, predicate, obj)
        return graph

    def entity_count(self) -> int:
        return len(self.lifetimes)

    # ------------------------------------------------------------------
    # Analysis (the paper's closing observations)
    # ------------------------------------------------------------------
    def stats(self, graphs: Sequence[TripleGraph] | None = None) -> ArchiveStats:
        """Compression and cohesion statistics.

        *graphs* recomputes the naive size from the originals; when omitted
        it is derived from the archive itself (identical by construction).
        """
        if graphs is not None:
            naive = sum(graph.num_edges for graph in graphs)
        else:
            naive = sum(len(interval) for interval in self.triples.values())
        contiguous = sum(
            1 for interval in self.triples.values() if interval.is_contiguous()
        )
        return ArchiveStats(
            versions=self.versions,
            naive_triples=naive,
            archived_triples=len(self.triples),
            entities=self.entity_count(),
            contiguous_fraction=contiguous / len(self.triples) if self.triples else 1.0,
            subject_cohesion=self.subject_cohesion(),
        )

    def subject_cohesion(self) -> float:
        """Fraction of triples living exactly as long as their subject.

        The paper: "triples tend to enter and leave with their subject",
        which is what makes moving interval decorations from triples to
        subject nodes worthwhile.
        """
        if not self.triples:
            return 1.0
        cohesive = sum(
            1
            for (subject, __, __o), interval in self.triples.items()
            if interval == self.lifetimes[subject]
        )
        return cohesive / len(self.triples)

    def subject_grouped_size(self) -> int:
        """Storage units if intervals move to subjects where possible.

        Triples sharing their subject's lifetime need no own decoration;
        each one costs 1 unit, while a divergent triple costs 1 plus its
        range count (the paper's proposed optimization).
        """
        total = 0
        for (subject, __, __o), interval in self.triples.items():
            if interval == self.lifetimes[subject]:
                total += 1
            else:
                total += 1 + interval.range_count
        return total

    def __repr__(self) -> str:
        return (
            f"<VersionArchive versions={self.versions} "
            f"entities={self.entity_count()} triples={len(self.triples)}>"
        )
